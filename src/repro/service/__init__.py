"""Durable change-log + crash-recoverable profiling service.

One-shot profiling loses everything when the process dies: every batch
applied through :class:`~repro.core.swan.SwanProfiler` after the initial
discovery exists only in memory. This package turns the profiler into a
long-running, restartable service:

* :mod:`repro.service.changelog` -- a write-ahead log of insert/delete
  batches (append-only, fsync-on-commit, checksum-framed records).
* :mod:`repro.service.snapshots` -- periodic durable snapshots of the
  relation + profile, atomically renamed, with retention.
* :mod:`repro.service.recovery` -- re-attach a profiler from the newest
  valid snapshot and replay the changelog suffix.
* :mod:`repro.service.server` -- the service loop: pull batches from a
  source, commit log-then-apply-then-ack, snapshot on cadence.
* :mod:`repro.service.metrics` -- counters / gauges / latency
  histograms exposed via ``stats()`` and a JSON status file.

Usage::

    from repro.service import ProfilingService, ServiceConfig

    service = ProfilingService("state/", config=ServiceConfig())
    service.start(initial=relation)          # profile-or-recover
    service.apply_insert_batch(rows)         # logged, applied, durable
    service.stop()                           # snapshot + clean shutdown

    # after a crash, the same two lines recover instead of re-profiling:
    service = ProfilingService("state/")
    service.start()
"""

from repro.service.changelog import Changelog, ChangelogRecord, read_records
from repro.service.metrics import MetricsRegistry
from repro.service.recovery import RecoveryResult, recover
from repro.service.server import (
    Batch,
    ProfilingService,
    ServiceConfig,
    SpoolDirectorySource,
    StdinCSVSource,
)
from repro.service.snapshots import Snapshot, SnapshotManager

__all__ = [
    "Batch",
    "Changelog",
    "ChangelogRecord",
    "MetricsRegistry",
    "ProfilingService",
    "RecoveryResult",
    "ServiceConfig",
    "Snapshot",
    "SnapshotManager",
    "SpoolDirectorySource",
    "StdinCSVSource",
    "read_records",
    "recover",
]
