"""Durable snapshots of the live relation + profile.

A snapshot bounds recovery time: instead of replaying the whole
changelog over the initial dataset, recovery starts from the newest
snapshot and replays only the suffix. Each snapshot is a directory

    snapshot-<seq padded to 20 digits>/
        profile.json    -- the exact repro.profiling.persistence format
        rows.jsonl      -- one JSON array per live tuple: [id, cells...]
        meta.json       -- seq, next_tuple_id, row checksum, watches

written to a hidden temp directory first and published with a single
``os.rename`` -- a crash mid-write leaves a temp directory the manager
ignores (and sweeps), never a half-visible snapshot. Rows are JSON (not
CSV) so cell *types* survive the round-trip -- an ``int 1`` reloads as
``int 1``, not ``"1"``, keeping recovered distinctness identical to the
live run -- and embedded newlines are escaped, keeping the file safely
line-framed. ``meta.json`` carries a SHA-256 over ``rows.jsonl`` so bit
rot is detected at load time, and the changelog sequence number the
snapshot covers, so recovery knows where replay starts.

Retention keeps the newest K snapshots; older ones are deleted after a
new snapshot is durably published, so there is never a moment with
fewer than K fallbacks on disk.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
from dataclasses import dataclass, field
from typing import Hashable, Sequence

from repro.core.repository import Profile
from repro.errors import RecoveryError
from repro.faults import fsops
from repro.profiling.persistence import StoredProfile, dump_profile, load_profile
from repro.service.changelog import decode_cell
from repro.storage.relation import Relation
from repro.storage.schema import Schema

SITE_PROFILE_WRITE = fsops.register_site(
    "snapshot.profile.write", "serialize profile.json into the temp dir"
)
SITE_ROWS_WRITE = fsops.register_site(
    "snapshot.rows.write", "write one rows.jsonl line"
)
SITE_ROWS_FSYNC = fsops.register_site(
    "snapshot.rows.fsync", "fsync rows.jsonl before publishing"
)
SITE_META_WRITE = fsops.register_site(
    "snapshot.meta.write", "write meta.json into the temp dir"
)
SITE_META_FSYNC = fsops.register_site(
    "snapshot.meta.fsync", "fsync meta.json before publishing"
)
SITE_PUBLISH_RENAME = fsops.register_site(
    "snapshot.publish.rename", "atomically publish the temp dir"
)
SITE_DIR_FSYNC = fsops.register_site(
    "snapshot.dir.fsync", "fsync the snapshots directory after publish"
)
SITE_LOAD_OPEN = fsops.register_site(
    "snapshot.load.open", "open snapshot files while loading"
)

META_VERSION = 2  # v2: rows.jsonl (type-preserving) replaced rows.csv
_PREFIX = "snapshot-"
_TMP_PREFIX = ".tmp-snapshot-"
_ROWS_NAME = "rows.jsonl"

Row = tuple[Hashable, ...]


@dataclass(frozen=True)
class Snapshot:
    """One loaded (and checksum-validated) snapshot."""

    seq: int
    stored_profile: StoredProfile
    rows: tuple[tuple[int, Row], ...] = field(repr=False)
    next_tuple_id: int
    watches: tuple[tuple[str, ...], ...] = ()
    recent_tokens: tuple[str, ...] = ()

    def build_relation(self) -> Relation:
        """Rebuild a relation with the snapshot's exact tuple IDs.

        Tuple IDs are row positions, so gaps left by deleted tuples are
        re-created as tombstones: a placeholder row is inserted at each
        missing position and immediately deleted. Replayed delete
        batches then resolve against the same IDs the live run used,
        and ``next_tuple_id`` matches, so replayed inserts are assigned
        the same IDs too.
        """
        schema = Schema(list(self.stored_profile.columns))
        relation = Relation(schema)
        placeholder = ("",) * len(schema)
        live = dict(self.rows)
        tombstones = []
        for tuple_id in range(self.next_tuple_id):
            row = live.get(tuple_id)
            if row is None:
                relation.insert(placeholder)
                tombstones.append(tuple_id)
            else:
                relation.insert(row)
        for tuple_id in tombstones:
            relation.delete(tuple_id)
        return relation


class SnapshotManager:
    """Writes, lists, loads and prunes snapshots in one directory."""

    def __init__(self, directory: str, retain: int = 3) -> None:
        if retain < 1:
            raise ValueError(f"retain must be >= 1, got {retain}")
        self._directory = directory
        self._retain = retain
        os.makedirs(directory, exist_ok=True)
        self._sweep_temp()

    @property
    def directory(self) -> str:
        return self._directory

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def save(
        self,
        relation: Relation,
        profile: Profile,
        seq: int,
        watches: Sequence[Sequence[str]] = (),
        recent_tokens: Sequence[str] = (),
    ) -> str:
        """Durably publish a snapshot covering changelog sequence ``seq``."""
        final = os.path.join(self._directory, f"{_PREFIX}{seq:020d}")
        tmp = os.path.join(self._directory, f"{_TMP_PREFIX}{seq:020d}")
        if os.path.exists(tmp):
            shutil.rmtree(tmp)
        os.makedirs(tmp)
        fsops.check(SITE_PROFILE_WRITE)
        dump_profile(relation.schema, profile, os.path.join(tmp, "profile.json"))
        digest = self._write_rows(os.path.join(tmp, _ROWS_NAME), relation)
        meta = {
            "meta_version": META_VERSION,
            "seq": seq,
            "next_tuple_id": relation.next_tuple_id,
            "n_rows": len(relation),
            "rows_sha256": digest,
            "watches": [list(watch) for watch in watches],
            # Source-delivery tokens of the most recent committed
            # records: lets a recovered service recognise redelivered
            # batches even if the changelog was rotated away.
            "recent_tokens": list(recent_tokens),
        }
        with fsops.open_(
            SITE_META_WRITE, os.path.join(tmp, "meta.json"), "w"
        ) as handle:
            fsops.write(SITE_META_WRITE, handle, json.dumps(meta, indent=2))
            handle.flush()
            fsops.fsync(SITE_META_FSYNC, handle)
        if os.path.exists(final):
            shutil.rmtree(final)
        fsops.rename(SITE_PUBLISH_RENAME, tmp, final)
        self._fsync_dir(self._directory)
        self.prune()
        return final

    def _write_rows(self, path: str, relation: Relation) -> str:
        digest = hashlib.sha256()
        with fsops.open_(SITE_ROWS_WRITE, path, "wb") as handle:
            for tuple_id, row in relation.iter_items():
                line = (
                    json.dumps([tuple_id, *row], separators=(",", ":")).encode(
                        "utf-8"
                    )
                    + b"\n"
                )
                digest.update(line)
                fsops.write(SITE_ROWS_WRITE, handle, line)
            handle.flush()
            fsops.fsync(SITE_ROWS_FSYNC, handle)
        return digest.hexdigest()

    @staticmethod
    def _fsync_dir(path: str) -> None:
        try:
            fd = os.open(path, os.O_RDONLY)
        except OSError:  # pragma: no cover - platforms without dir fds
            return
        try:
            fsops.fsync(SITE_DIR_FSYNC, fd)
        finally:
            os.close(fd)

    # ------------------------------------------------------------------
    # Listing / loading
    # ------------------------------------------------------------------
    def list_seqs(self) -> list[int]:
        """Published snapshot sequence numbers, oldest first."""
        seqs = []
        for name in os.listdir(self._directory):
            if name.startswith(_PREFIX):
                try:
                    seqs.append(int(name[len(_PREFIX) :]))
                except ValueError:
                    continue
        return sorted(seqs)

    def latest_seq(self) -> int | None:
        seqs = self.list_seqs()
        return seqs[-1] if seqs else None

    def load(self, seq: int) -> Snapshot:
        """Load and validate one snapshot.

        Raises :class:`~repro.errors.RecoveryError` on any damage --
        missing files, checksum mismatch, undecodable content -- so the
        recovery path can fall back to an older snapshot.
        """
        root = os.path.join(self._directory, f"{_PREFIX}{seq:020d}")
        try:
            with fsops.open_(SITE_LOAD_OPEN, os.path.join(root, "meta.json")) as handle:
                meta = json.load(handle)
            if meta.get("meta_version") != META_VERSION:
                raise RecoveryError(
                    f"snapshot {seq}: unsupported meta version "
                    f"{meta.get('meta_version')!r}"
                )
            if meta.get("seq") != seq:
                raise RecoveryError(
                    f"snapshot {seq}: meta declares seq {meta.get('seq')!r}"
                )
            fsops.check(SITE_LOAD_OPEN)
            stored = load_profile(os.path.join(root, "profile.json"))
            rows, digest = self._read_rows(os.path.join(root, _ROWS_NAME))
        except RecoveryError:
            raise
        except Exception as exc:
            raise RecoveryError(f"snapshot {seq}: unreadable ({exc})") from exc
        if digest != meta.get("rows_sha256"):
            raise RecoveryError(
                f"snapshot {seq}: {_ROWS_NAME} checksum mismatch"
            )
        if len(rows) != meta.get("n_rows"):
            raise RecoveryError(
                f"snapshot {seq}: expected {meta.get('n_rows')} rows, "
                f"found {len(rows)}"
            )
        return Snapshot(
            seq=seq,
            stored_profile=stored,
            rows=tuple(rows),
            next_tuple_id=int(meta["next_tuple_id"]),
            watches=tuple(
                tuple(watch) for watch in meta.get("watches", [])
            ),
            recent_tokens=tuple(
                str(token) for token in meta.get("recent_tokens", [])
            ),
        )

    @staticmethod
    def _read_rows(path: str) -> tuple[list[tuple[int, Row]], str]:
        digest = hashlib.sha256()
        rows: list[tuple[int, Row]] = []
        with fsops.open_(SITE_LOAD_OPEN, path, "rb") as handle:
            for line in handle:
                digest.update(line)
                cells = json.loads(line)
                rows.append(
                    (
                        int(cells[0]),
                        tuple(decode_cell(cell) for cell in cells[1:]),
                    )
                )
        return rows, digest.hexdigest()

    # ------------------------------------------------------------------
    # Retention
    # ------------------------------------------------------------------
    def prune(self) -> list[int]:
        """Delete all but the newest ``retain`` snapshots."""
        seqs = self.list_seqs()
        doomed = seqs[: -self._retain] if len(seqs) > self._retain else []
        for seq in doomed:
            shutil.rmtree(
                os.path.join(self._directory, f"{_PREFIX}{seq:020d}"),
                ignore_errors=True,
            )
        return doomed

    def _sweep_temp(self) -> None:
        for name in os.listdir(self._directory):
            if name.startswith(_TMP_PREFIX):
                shutil.rmtree(
                    os.path.join(self._directory, name), ignore_errors=True
                )

    def __repr__(self) -> str:
        return (
            f"SnapshotManager({self._directory!r}, "
            f"snapshots={self.list_seqs()}, retain={self._retain})"
        )
