"""Observability for the profiling service.

Plain in-process metrics -- no external dependency -- in the three
classic shapes:

* :class:`Counter` -- monotonically increasing totals (batches applied,
  rows in/out, MUC churn).
* :class:`Gauge` -- point-in-time values (live rows, snapshot size,
  changelog sequence number).
* :class:`Histogram` -- latency / size distributions with count, sum,
  min/mean/max and p50/p95/p99 summaries (apply latency, fsync time,
  replay time).

A :class:`MetricsRegistry` owns them by name, renders everything as one
JSON-able dict via :meth:`MetricsRegistry.to_dict`, and can publish it
as a status file with an atomic write-then-rename so scrapers never see
a partial document.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from typing import Iterator

from repro.faults import fsops
from repro.sanitize import make_lock, register_fork_owner

SITE_STATUS_OPEN = fsops.register_site(
    "status.write.open", "open the status.json temp file"
)
SITE_STATUS_FSYNC = fsops.register_site(
    "status.write.fsync", "fsync status.json before publishing"
)
SITE_STATUS_REPLACE = fsops.register_site(
    "status.publish.replace", "atomically publish status.json"
)

_RESERVOIR_CAP = 4096


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only increase, got {amount}")
        self.value += amount


class Gauge:
    """A point-in-time value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """A distribution with percentile summaries.

    Observations are kept in a bounded reservoir: past the cap the
    reservoir is decimated (every other sample dropped) and subsequent
    samples recorded at the reduced rate, keeping memory constant while
    preserving the shape of the distribution. ``count`` and ``sum`` are
    always exact.
    """

    __slots__ = ("count", "sum", "min", "max", "_samples", "_stride", "_skip")

    def __init__(self) -> None:
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._samples: list[float] = []
        self._stride = 1
        self._skip = 0

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        self._skip += 1
        if self._skip >= self._stride:
            self._skip = 0
            self._samples.append(value)
            if len(self._samples) >= _RESERVOIR_CAP:
                self._samples = self._samples[::2]
                self._stride *= 2

    def percentile(self, q: float) -> float:
        """The q-th percentile (0..100) over the reservoir; 0 if empty."""
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        rank = min(len(ordered) - 1, max(0, round(q / 100 * (len(ordered) - 1))))
        return ordered[rank]

    def summary(self) -> dict[str, float]:
        if self.count == 0:
            return {"count": 0}
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "mean": self.sum / self.count,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "max": self.max,
        }


class MetricsRegistry:
    """Named counters / gauges / histograms plus status-file export.

    Each registry is an isolated namespace: two registries never share
    a counter, so N in-process services (one per tenant) cannot mix
    values. The optional ``namespace`` names the owning instance --
    typically the tenant id -- and is stamped into :meth:`to_dict` and
    every published status document, so scrapers and the fleet endpoint
    can attribute a document without guessing from file paths.
    """

    def __init__(self, namespace: str | None = None) -> None:
        self.namespace = namespace
        # Registrations come from worker threads and HTTP status
        # threads at once; the lock keeps the name->metric maps
        # consistent. Mutating a *returned* metric is lock-free by
        # design: each metric is written by the single writer thread
        # that owns its series.
        self._lock = make_lock("service.metrics")
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        register_fork_owner(self)

    def _reset_locks_after_fork(self) -> None:
        self._lock = make_lock("service.metrics")

    def counter(self, name: str) -> Counter:
        with self._lock:
            return self._counters.setdefault(name, Counter())

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            return self._gauges.setdefault(name, Gauge())

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            return self._histograms.setdefault(name, Histogram())

    @contextmanager
    def time(self, name: str) -> Iterator[None]:
        """Record a code block's wall time into histogram ``name``."""
        started = time.perf_counter()
        try:
            yield
        finally:
            self.histogram(name).observe(time.perf_counter() - started)

    def to_dict(self) -> dict[str, object]:
        document: dict[str, object] = {}
        if self.namespace is not None:
            document["namespace"] = self.namespace
        document.update(self._series_dict())
        return document

    def _series_dict(self) -> dict[str, object]:
        with self._lock:
            return {
                "counters": {
                    name: counter.value
                    for name, counter in sorted(self._counters.items())
                },
                "gauges": {
                    name: gauge.value
                    for name, gauge in sorted(self._gauges.items())
                },
                "histograms": {
                    name: histogram.summary()
                    for name, histogram in sorted(self._histograms.items())
                },
            }

    def write_status(self, path: str, extra: dict[str, object] | None = None) -> None:
        """Atomically publish the current metrics as a JSON status file."""
        document = {"updated_unix": time.time(), **(extra or {}), **self.to_dict()}
        tmp = path + ".tmp"
        with fsops.open_(SITE_STATUS_OPEN, tmp, "w") as handle:
            json.dump(document, handle, indent=2)
            handle.flush()
            fsops.fsync(SITE_STATUS_FSYNC, handle)
        fsops.replace(SITE_STATUS_REPLACE, tmp, path)
