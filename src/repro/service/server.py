"""The long-running profiling service loop.

:class:`ProfilingService` owns a state directory::

    <data_dir>/changelog.wal     -- write-ahead log (changelog.py)
    <data_dir>/snapshots/        -- durable snapshots (snapshots.py)
    <data_dir>/status.json       -- periodically published metrics

and runs the paper's deployment story end to end: profile the initial
dataset once (or recover from durable state after a crash), then keep
the MUCS/MNUCS exact while batches of inserts and deletes stream in.

Commit protocol, per batch: **log, then apply, then ack**. The batch is
framed + fsynced into the changelog first; only then does it go through
:class:`~repro.core.monitor.UniqueConstraintMonitor` (so watched-key
events fire), and only after the in-memory apply succeeds is the source
asked to acknowledge (delete/archive the spool file). A crash between
log and apply is harmless -- recovery replays the committed record; a
crash between apply and ack redelivers a batch whose record is already
committed, which the service detects and skips (acks without
re-applying are idempotent).

Batch sources are pluggable: anything iterable that yields
:class:`Batch` works. Two ship here:

* :class:`SpoolDirectorySource` -- a spool directory of JSON batch
  files, processed in name order and archived on ack (the restartable
  production shape).
* :class:`StdinCSVSource` -- CSV rows from a stream as insert batches,
  with ``!delete,<id>,...`` directive lines for deletes (the pipe-y
  demo shape the old ``--follow`` flag offered, now durable).

Small batches are coalesced before commit: consecutive same-kind
batches merge until ``coalesce_rows`` is reached or the source has
nothing ready, amortising fsync + analysis cost under trickle traffic.

Faults are routine, not exceptional, so the loop is self-healing:

* transient I/O errors on any durability path are retried with
  exponential backoff and full jitter (:mod:`repro.service.retry`);
* poison batches are moved to a dead-letter quarantine with a reason
  record (:mod:`repro.service.deadletter`) and the loop continues;
* an explicit health-state machine (:mod:`repro.service.health`)
  tracks SERVING → DEGRADED → READ_ONLY → FAILED and is published in
  ``status.json``;
* an invariant sentinel (:mod:`repro.service.sentinel`) periodically
  spot-verifies the profile against ground truth and, on divergence,
  quarantines the durable state and holistically re-profiles.
"""

from __future__ import annotations

import csv
import json
import os
import random
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Hashable, Iterator, Sequence, TextIO

from repro.core.monitor import MonitorEvent, UniqueConstraintMonitor
from repro.core.repository import Profile
from repro.core.swan import SwanProfiler
from repro.errors import (
    InconsistentProfileError,
    ProfileStateError,
    ServiceHealthError,
    WorkloadError,
)
from repro.faults import fsops
from repro.service.changelog import DELETE, INSERT, Changelog
from repro.service.deadletter import DeadLetterQueue
from repro.service.health import HealthMonitor, HealthState
from repro.service.metrics import MetricsRegistry
from repro.service.recovery import RecoveryResult, recover
from repro.service.retry import RetryPolicy, retry_io
from repro.service.sentinel import InvariantSentinel
from repro.service.snapshots import SnapshotManager
from repro.storage.plicache import DEFAULT_BUDGET_BYTES
from repro.storage.relation import Relation

SITE_ACK_REPLACE = fsops.register_site(
    "spool.ack.replace", "archive an acknowledged spool file to done/"
)
SITE_ACK_UNLINK = fsops.register_site(
    "spool.ack.unlink", "delete an acknowledged spool file"
)
SITE_SPOOL_READ_OPEN = fsops.register_site(
    "spool.read.open", "open a spool batch file for parsing"
)
SITE_SPOOL_WRITE_OPEN = fsops.register_site(
    "spool.write.open", "producer-side write of a spool batch (tmp file)"
)
SITE_SPOOL_WRITE_REPLACE = fsops.register_site(
    "spool.write.replace", "producer-side atomic publish into the spool"
)
SITE_LOCK_OPEN = fsops.register_site(
    "lock.open", "open the per-directory writer lock file"
)
SITE_LOCK_DIAG_OPEN = fsops.register_site(
    "lock.diag.open", "write the lock-holder diagnostic (best effort)"
)

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

Row = tuple[Hashable, ...]

CHANGELOG_NAME = "changelog.wal"
SNAPSHOT_DIR = "snapshots"
STATUS_NAME = "status.json"
LOCK_NAME = "lock"
LOCK_ERR_NAME = "lock.err"
DEADLETTER_DIR = "deadletter"


@dataclass(frozen=True)
class Batch:
    """One incoming unit of change, before coalescing."""

    kind: str  # changelog.INSERT or changelog.DELETE
    rows: tuple[Row, ...] = ()
    tuple_ids: tuple[int, ...] = ()
    token: object = None  # opaque ack handle for the source

    @property
    def n_rows(self) -> int:
        return len(self.rows) if self.kind == INSERT else len(self.tuple_ids)


class SpoolDirectorySource:
    """Reads batch files from a spool directory, in name order.

    Each file is JSON: ``{"kind": "insert", "rows": [[...], ...]}`` or
    ``{"kind": "delete", "ids": [...]}``. Acknowledged files move to a
    ``done/`` subdirectory (or are deleted with ``archive=False``), so
    a crashed service re-reads exactly the unacknowledged files on
    restart. Producers should write-then-rename into the spool so the
    service never reads a half-written file.

    A file that cannot be parsed is *poison*. With ``on_poison`` unset
    the iterator raises :class:`~repro.errors.WorkloadError` (the
    historical fail-stop shape); the service loop instead installs a
    handler that quarantines the file to the dead-letter directory and
    lets iteration continue.
    """

    def __init__(
        self,
        directory: str,
        archive: bool = True,
        poll_interval: float | None = None,
    ) -> None:
        self._directory = directory
        self._archive = archive
        self._poll_interval = poll_interval
        self._yielded: set[str] = set()
        self._stop = False
        self.on_poison: Callable[[str, str, WorkloadError], None] | None = None
        os.makedirs(directory, exist_ok=True)
        if archive:
            os.makedirs(os.path.join(directory, "done"), exist_ok=True)

    def path_for(self, token: str) -> str:
        """The spool path a delivery token refers to."""
        return os.path.join(self._directory, token)

    def _pending(self) -> list[str]:
        return sorted(
            name
            for name in os.listdir(self._directory)
            if name.endswith(".json")
            and not name.startswith(".")
            and os.path.isfile(os.path.join(self._directory, name))
        )

    def has_ready(self) -> bool:
        return any(name not in self._yielded for name in self._pending())

    def request_stop(self) -> None:
        """Make the iterator end after its current poll (e.g. SIGTERM)."""
        self._stop = True

    def __iter__(self) -> Iterator[Batch]:
        while not self._stop:
            pending = self._pending()
            # Acked files left the directory; forget them so the
            # yielded-set stays bounded by the spool size.
            self._yielded.intersection_update(pending)
            fresh = [name for name in pending if name not in self._yielded]
            if not fresh:
                if self._poll_interval is None:
                    return
                time.sleep(self._poll_interval)
                continue
            for name in fresh:
                # Marked as yielded only once parsed (or poisoned): a
                # transient read error propagates un-marked so the next
                # iteration of this same source retries the file.
                try:
                    batch = self._parse(name)
                except WorkloadError as exc:
                    self._yielded.add(name)
                    if self.on_poison is None:
                        raise
                    self.on_poison(
                        name, os.path.join(self._directory, name), exc
                    )
                    continue
                self._yielded.add(name)
                yield batch

    def _parse(self, name: str) -> Batch:
        path = os.path.join(self._directory, name)
        # An OSError here is *transient* (the file exists -- _pending()
        # just listed it) and deliberately propagates: wrapping it as
        # WorkloadError would quarantine a healthy batch as poison, and
        # quarantined tokens are never redelivered. Only undecodable
        # content is poison.
        with fsops.open_(SITE_SPOOL_READ_OPEN, path) as handle:
            try:
                body = json.load(handle)
            except (json.JSONDecodeError, UnicodeDecodeError) as exc:
                raise WorkloadError(
                    f"spool file {path} is not a valid batch: {exc}"
                ) from exc
        if not isinstance(body, dict):
            raise WorkloadError(
                f"spool file {path} is not a valid batch: expected a JSON "
                f"object, got {type(body).__name__}"
            )
        kind = body.get("kind")
        try:
            if kind == INSERT:
                return Batch(
                    INSERT,
                    rows=tuple(tuple(row) for row in body["rows"]),
                    token=name,
                )
            if kind == DELETE:
                return Batch(
                    DELETE,
                    tuple_ids=tuple(int(i) for i in body["ids"]),
                    token=name,
                )
        except (KeyError, TypeError, ValueError) as exc:
            raise WorkloadError(
                f"spool file {path} is not a valid batch: {exc}"
            ) from exc
        raise WorkloadError(f"spool file {path}: unknown batch kind {kind!r}")

    def ack(self, batch: Batch) -> None:
        if not isinstance(batch.token, str):
            return
        path = os.path.join(self._directory, batch.token)
        if not os.path.exists(path):
            return
        if self._archive:
            fsops.replace(
                SITE_ACK_REPLACE,
                path,
                os.path.join(self._directory, "done", batch.token),
            )
        else:
            fsops.remove(SITE_ACK_UNLINK, path)

    @staticmethod
    def write_batch(directory: str, name: str, batch_body: dict) -> str:
        """Producer helper: atomically drop one batch file in the spool."""
        os.makedirs(directory, exist_ok=True)
        final = os.path.join(directory, name)
        tmp = os.path.join(directory, f".{name}.tmp")
        with fsops.open_(SITE_SPOOL_WRITE_OPEN, tmp, "w") as handle:
            json.dump(batch_body, handle)
        fsops.replace(SITE_SPOOL_WRITE_REPLACE, tmp, final)
        return final


class StdinCSVSource:
    """CSV rows from a text stream, chunked into insert batches.

    A line starting with ``!delete,`` is a directive: the remaining
    cells are tuple IDs forming a delete batch (it also flushes any
    accumulated insert rows first, preserving order). Rows whose arity
    does not match ``n_columns`` are counted and skipped.
    """

    def __init__(
        self, stream: TextIO, n_columns: int, batch_size: int = 100
    ) -> None:
        if batch_size < 1:
            raise WorkloadError(f"batch_size must be >= 1, got {batch_size}")
        self._stream = stream
        self._n_columns = n_columns
        self._batch_size = batch_size
        self.skipped_rows = 0

    def has_ready(self) -> bool:
        return False  # a pipe has no cheap peek; coalescing is per-chunk

    def ack(self, batch: Batch) -> None:  # pipes cannot redeliver
        return

    def __iter__(self) -> Iterator[Batch]:
        pending: list[Row] = []
        for cells in csv.reader(self._stream):
            if not cells:
                continue
            if cells[0] == "!delete":
                if pending:
                    yield Batch(INSERT, rows=tuple(pending))
                    pending = []
                try:
                    tuple_ids = tuple(int(i) for i in cells[1:])
                except ValueError as exc:
                    raise WorkloadError(
                        f"bad !delete directive {','.join(cells)!r}: {exc}"
                    ) from exc
                yield Batch(DELETE, tuple_ids=tuple_ids)
                continue
            if len(cells) != self._n_columns:
                self.skipped_rows += 1
                continue
            pending.append(tuple(cells))
            if len(pending) >= self._batch_size:
                yield Batch(INSERT, rows=tuple(pending))
                pending = []
        if pending:
            yield Batch(INSERT, rows=tuple(pending))


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables for one :class:`ProfilingService`."""

    snapshot_every: int = 16  # batches between snapshots (0 = only at stop)
    retain_snapshots: int = 3
    status_every: int = 8  # batches between status-file writes
    coalesce_rows: int = 500  # merge ready same-kind batches up to this
    fsync: bool = True  # changelog durability (off only for tests/bench)
    index_quota: int | None = None
    algorithm: str = "ducc"
    watches: tuple[tuple[str, ...], ...] = ()
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    sentinel_every: int = 64  # batches between sentinel checks (0 = off)
    sentinel_masks: int = 12  # MUCs/MNUCs spot-verified per check
    sentinel_pairs: int = 24  # random row pairs sampled per check
    health_reset_batches: int = 16  # clean batches to heal DEGRADED
    parallelism: int = 0  # fan-out workers (0/1 = serial)
    execution_mode: str = "thread"  # fan-out shape: "thread" | "process"
    cache_budget_bytes: int | None = DEFAULT_BUDGET_BYTES  # 0 = cache off
    shards: int = 1  # K-way sharded profiling (1 = unsharded)
    shard_insert_only: bool = False  # shards drop PLIs + delete path
    compact_live_fraction: float = 0.5  # compact storage below this live share (0 = off)
    compact_min_rows: int = 1024  # storage rows before compaction is considered


class ProfilingService:
    """Crash-recoverable incremental profiling over a state directory."""

    def __init__(
        self,
        data_dir: str,
        config: ServiceConfig | None = None,
        sleep: Callable[[float], None] = time.sleep,
        tenant_id: str | None = None,
    ) -> None:
        self.config = config or ServiceConfig()
        self.data_dir = data_dir
        # Multi-tenant deployments run N services in one process; the
        # tenant id namespaces this instance's metrics and shows up in
        # operator-facing artifacts (lock diagnostics, quarantine
        # directory names) so they can be attributed without guessing
        # from paths.
        self.tenant_id = tenant_id
        os.makedirs(data_dir, exist_ok=True)
        self.metrics = MetricsRegistry(namespace=tenant_id)
        self.snapshots = SnapshotManager(
            os.path.join(data_dir, SNAPSHOT_DIR),
            retain=self.config.retain_snapshots,
        )
        self.health = HealthMonitor()
        self.dead_letters = DeadLetterQueue(
            os.path.join(data_dir, DEADLETTER_DIR)
        )
        self.sentinel = InvariantSentinel(
            sample_masks=self.config.sentinel_masks,
            sample_pairs=self.config.sentinel_pairs,
        )
        self._changelog_path = os.path.join(data_dir, CHANGELOG_NAME)
        self._status_path = os.path.join(data_dir, STATUS_NAME)
        self._changelog: Changelog | None = None
        self.monitor: UniqueConstraintMonitor | None = None
        self.last_recovery: RecoveryResult | None = None
        self._batches_since_snapshot = 0
        self._batches_since_status = 0
        self._batches_since_sentinel = 0
        self._event_sinks: list[Callable[[MonitorEvent], None]] = []
        self._committed_tokens: set[str] = set()
        self._quarantined_tokens: set[str] = set(self.dead_letters.tokens())
        self._recent_tokens: deque[str] = deque(maxlen=256)
        self._lock_path = os.path.join(data_dir, LOCK_NAME)
        self._lock_handle: TextIO | None = None
        self.started_unix: float | None = None
        self._sleep = sleep
        self._retry_rng = random.Random(0x5EED)
        self._holistic_fallback: (
            Callable[[], tuple[Relation, list[int], list[int]]] | None
        ) = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def started(self) -> bool:
        return self.monitor is not None

    @property
    def profiler(self) -> SwanProfiler:
        if self.monitor is None:
            raise ProfileStateError("service not started; call start() first")
        return self.monitor.profiler

    @property
    def last_seq(self) -> int | None:
        """The newest committed changelog sequence (None before start)."""
        return self._changelog.last_seq if self._changelog is not None else None

    def has_state(self) -> bool:
        """Is there durable state to recover from?"""
        return bool(self.snapshots.list_seqs()) or os.path.exists(
            self._changelog_path
        )

    def start(
        self,
        initial: Relation | None = None,
        holistic_fallback: Callable[[], tuple[Relation, list[int], list[int]]]
        | None = None,
    ) -> "ProfilingService":
        """Profile-or-recover: the only correct way to bring the service up.

        With durable state present, recovery wins and ``initial`` is
        ignored (the snapshot already contains those rows *plus* every
        committed batch). On first boot, ``initial`` is profiled with
        the configured algorithm and immediately snapshotted at
        sequence 0, so a crash one record later already has a base to
        replay against.
        """
        if self.started:
            raise ProfileStateError("service already started")
        self._holistic_fallback = holistic_fallback
        self._acquire_lock()
        try:
            return self._start_locked(initial, holistic_fallback)
        except BaseException:
            if self._changelog is not None:
                try:
                    self._changelog.close()
                except OSError:
                    pass
                self._changelog = None
            self.monitor = None
            self._release_lock()
            raise

    def _start_locked(
        self,
        initial: Relation | None,
        holistic_fallback: Callable[[], tuple[Relation, list[int], list[int]]]
        | None,
    ) -> "ProfilingService":
        if self.has_state():
            with self.metrics.time("recovery_seconds"):
                result = recover(
                    self.snapshots,
                    self._changelog_path,
                    holistic_fallback=holistic_fallback,
                    index_quota=self.config.index_quota,
                    parallelism=self.config.parallelism,
                    execution_mode=self.config.execution_mode,
                    cache_budget_bytes=self.config.cache_budget_bytes,
                    shards=self.config.shards,
                    shard_insert_only=self.config.shard_insert_only,
                    algorithm=self.config.algorithm,
                )
            self.last_recovery = result
            profiler = result.profiler
            watches = result.watches or self.config.watches
            self.metrics.counter("recoveries").inc()
            self.metrics.counter("replayed_records").inc(result.replayed_records)
            self.metrics.counter("replayed_rows").inc(result.replayed_rows)
            if result.torn_bytes_discarded:
                self.metrics.counter("torn_writes_discarded").inc()
        elif initial is not None:
            with self.metrics.time("bootstrap_profile_seconds"):
                profiler = SwanProfiler.profile(
                    initial,
                    algorithm=self.config.algorithm,
                    index_quota=self.config.index_quota,
                    parallelism=self.config.parallelism,
                    execution_mode=self.config.execution_mode,
                    cache_budget_bytes=self.config.cache_budget_bytes,
                    shards=self.config.shards,
                    shard_insert_only=self.config.shard_insert_only,
                )
            watches = self.config.watches
        else:
            raise ProfileStateError(
                f"no durable state under {self.data_dir!r} and no initial "
                "relation to profile"
            )
        state_seq = self.last_recovery.last_seq if self.last_recovery else 0
        self._changelog = Changelog.ensure_at(
            self._changelog_path, state_seq, fsync=self.config.fsync
        )
        if self.last_recovery is not None:
            self._committed_tokens.update(self.last_recovery.recent_tokens)
            self._recent_tokens.extend(self.last_recovery.recent_tokens)
        for record in self._changelog.records():
            self._committed_tokens.update(record.tokens)
            self._recent_tokens.extend(record.tokens)
        self.monitor = UniqueConstraintMonitor(profiler)
        for watch in watches:
            self.monitor.watch(list(watch))
        if not self.snapshots.list_seqs():
            # Sequence-0 base for the first recovery. Losing it is
            # survivable (recovery falls back to full-changelog replay
            # or the holistic fallback), so degrade rather than refuse
            # to boot.
            self._protected("snapshot", self._take_snapshot)
        self.started_unix = time.time()
        self._refresh_gauges()
        self.write_status()
        return self

    def stop(self) -> None:
        """Snapshot, publish status, release file handles.

        Lock release is unconditional: whatever the final snapshot or
        changelog close throws, the data directory must not stay locked
        against the restart that would heal it.
        """
        try:
            if (
                self.monitor is not None
                and self.health.state is not HealthState.FAILED
            ):
                self._take_snapshot()
                self.write_status()
        finally:
            try:
                if self._changelog is not None:
                    self._changelog.close()
                    self._changelog = None
            finally:
                self._changelog = None
                if self.monitor is not None:
                    self.monitor.profiler.close()
                self.monitor = None
                self._release_lock()

    def simulate_crash(self) -> None:
        """Drop everything without the orderly-shutdown work (tests/chaos).

        Mimics a ``kill -9`` as closely as one process can: no final
        snapshot, no status write, handles abandoned. The flock *is*
        released (the kernel would have done that for a real dead
        process); durable state is left exactly as the crash found it.
        """
        if self._changelog is not None:
            try:
                self._changelog.close()
            except OSError:
                pass
            self._changelog = None
        if self.monitor is not None:
            self.monitor.profiler.close()
        self.monitor = None
        self._release_lock()

    def _acquire_lock(self) -> None:
        """Take the exclusive per-directory writer lock.

        Two services appending to one changelog interleave frames (the
        scan detects and discards the damage, but committed batches
        could land after a stale tail). The advisory ``flock`` makes
        the second ``start()`` fail fast instead; the kernel drops it
        automatically on any exit, including ``kill -9``.
        """
        if fcntl is None:  # pragma: no cover - non-POSIX platforms
            return
        handle = fsops.open_(SITE_LOCK_OPEN, self._lock_path, "a+")
        try:
            fcntl.flock(handle, fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError:
            handle.seek(0)
            owner = handle.read().strip()
            handle.close()
            message = (
                (f"tenant {self.tenant_id!r}: " if self.tenant_id else "")
                + f"data directory {self.data_dir!r} is locked by another "
                "running service"
                + (f" (pid {owner})" if owner else "")
            )
            # Leave the lock-holder diagnostic *inside* the state dir
            # (it used to land in the process CWD, which is how a stray
            # lock.err once ended up committed to the repo root).
            try:
                with fsops.open_(
                    SITE_LOCK_DIAG_OPEN,
                    os.path.join(self.data_dir, LOCK_ERR_NAME),
                    "w",
                ) as diag:
                    diag.write(message + "\n")
            except OSError:
                pass
            raise ProfileStateError(message) from None
        handle.seek(0)
        handle.truncate()
        handle.write(f"{os.getpid()}\n")
        handle.flush()
        self._lock_handle = handle

    def _release_lock(self) -> None:
        if self._lock_handle is None or fcntl is None:
            return
        try:
            fcntl.flock(self._lock_handle, fcntl.LOCK_UN)
        finally:
            self._lock_handle.close()
            self._lock_handle = None

    def __enter__(self) -> "ProfilingService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Applying batches
    # ------------------------------------------------------------------
    def on_event(self, sink: Callable[[MonitorEvent], None]) -> None:
        """Register a callback for monitor events (key broken, ...)."""
        self._event_sinks.append(sink)

    def apply_insert_batch(self, rows: Sequence[Sequence[Hashable]]) -> Profile:
        return self.apply_batch(
            Batch(INSERT, rows=tuple(tuple(row) for row in rows))
        )

    def apply_delete_batch(self, tuple_ids: Sequence[int]) -> Profile:
        return self.apply_batch(Batch(DELETE, tuple_ids=tuple(tuple_ids)))

    def _retrying(self, op: str, fn: Callable[[], object]) -> object:
        """Run one I/O operation under the configured retry policy."""

        def on_retry(attempt: int, exc: BaseException, delay: float) -> None:
            self.metrics.counter("io_retries").inc()
            self.health.mark_degraded(f"{op}: {exc} (attempt {attempt})")

        return retry_io(
            fn,
            self.config.retry,
            sleep=self._sleep,
            rng=self._retry_rng,
            on_retry=on_retry,
        )

    def _protected(self, op: str, fn: Callable[[], object]) -> object | None:
        """Best-effort I/O: retry, then degrade-and-continue on failure.

        For operations the service can survive losing (a snapshot, a
        status write, a spool ack) -- unlike the changelog append,
        whose failure makes the service read-only.
        """
        try:
            return self._retrying(op, fn)
        except OSError as exc:
            self.metrics.counter("io_gave_up").inc()
            self.health.mark_degraded(f"{op} gave up: {exc}")
            return None

    def apply_batch(self, batch: Batch) -> Profile:
        """Commit one batch: log, apply, then bookkeeping (ack is the
        caller's -- :meth:`serve` acks after this returns)."""
        if self.monitor is None or self._changelog is None:
            raise ProfileStateError("service not started; call start() first")
        if not self.health.can_write:
            raise ServiceHealthError(
                f"service is {self.health.state.value}, refusing writes"
                + (f": {self.health.last_error}" if self.health.last_error else "")
            )
        if batch.kind not in (INSERT, DELETE):
            raise WorkloadError(f"unknown batch kind {batch.kind!r}")
        self._validate_batch(batch)
        before = self.monitor.profiler.snapshot()
        tokens = [t for t in _split_tokens(batch.token) if isinstance(t, str)]
        if batch.kind == INSERT:
            append = lambda: self._changelog.append_inserts(  # noqa: E731
                batch.rows, tokens=tokens
            )
        else:
            append = lambda: self._changelog.append_deletes(  # noqa: E731
                batch.tuple_ids, tokens=tokens
            )
        try:
            with self.metrics.time("fsync_seconds"):
                self._retrying("changelog.append", append)
        except OSError as exc:
            # The log could not be made durable; applying anyway would
            # break log-then-apply, so stop accepting writes entirely.
            self.metrics.counter("io_gave_up").inc()
            self.health.mark_read_only(f"changelog append failed: {exc}")
            self._refresh_gauges()
            raise ServiceHealthError(
                f"changelog append failed after "
                f"{self.config.retry.max_attempts} attempts: {exc}"
            ) from exc
        self._committed_tokens.update(tokens)
        self._recent_tokens.extend(tokens)
        with self.metrics.time("apply_seconds"):
            if batch.kind == INSERT:
                events = self.monitor.apply_inserts(batch.rows)
                self.metrics.counter("rows_inserted").inc(len(batch.rows))
            else:
                events = self.monitor.apply_deletes(batch.tuple_ids)
                self.metrics.counter("rows_deleted").inc(len(batch.tuple_ids))
        after = self.monitor.profiler.snapshot()
        churn = len(set(after.mucs) ^ set(before.mucs))
        self.metrics.counter("batches_applied").inc()
        self.metrics.counter("muc_churn").inc(churn)
        self.metrics.counter("monitor_events").inc(len(events))
        for event in events:
            for sink in self._event_sinks:
                sink(event)
        self.health.note_clean_batch(self.config.health_reset_batches)
        self._maybe_compact()
        self._refresh_gauges()
        self._batches_since_snapshot += 1
        self._batches_since_status += 1
        self._batches_since_sentinel += 1
        if (
            self.config.snapshot_every
            and self._batches_since_snapshot >= self.config.snapshot_every
        ):
            # Losing a snapshot costs replay time, not correctness.
            self._protected("snapshot", self._take_snapshot)
        if (
            self.config.status_every
            and self._batches_since_status >= self.config.status_every
        ):
            self._protected("status", self.write_status)
        if (
            self.config.sentinel_every
            and self._batches_since_sentinel >= self.config.sentinel_every
        ):
            self.run_sentinel()
        return after

    def _maybe_compact(self) -> None:
        """Reclaim tombstoned storage once the live fraction sinks.

        Tuple IDs survive :meth:`SwanProfiler.compact_storage`, so
        value indexes, PLIs, sparse-index offsets, the changelog and
        snapshots are all unaffected -- this is purely a
        storage-density operation and needs no durability step.
        """
        if self.monitor is None or self.config.compact_live_fraction <= 0:
            return
        relation = self.monitor.profiler.relation
        if relation.storage_rows < self.config.compact_min_rows:
            return
        if relation.live_fraction >= self.config.compact_live_fraction:
            return
        with self.metrics.time("compact_seconds"):
            reclaimed = self.monitor.profiler.compact_storage()
        self.metrics.counter("compactions").inc()
        self.metrics.counter("tombstones_reclaimed").inc(reclaimed)

    def _validate_batch(self, batch: Batch) -> None:
        """Reject a malformed batch *before* it reaches the changelog.

        A committed record is replayed verbatim by every future
        recovery, so a batch that cannot apply must never be logged --
        one durably committed poison record would otherwise fail every
        subsequent ``start()``. Row arity, cell types (JSON scalars or
        tuples of them, so the framed payload round-trips losslessly)
        and tuple-ID liveness are checked against the live profiler
        first; a failure raises with nothing committed.
        """
        assert self.monitor is not None
        relation = self.monitor.profiler.relation
        if batch.kind == INSERT:
            n_columns = relation.n_columns
            for row in batch.rows:
                if len(row) != n_columns:
                    raise WorkloadError(
                        f"insert row {row!r} has {len(row)} values, "
                        f"schema has {n_columns} columns"
                    )
                for value in row:
                    if not _is_loggable_cell(value):
                        raise WorkloadError(
                            f"insert row {row!r}: cell {value!r} "
                            f"({type(value).__name__}) would not survive "
                            "a changelog round-trip; use JSON scalars or "
                            "tuples of them"
                        )
        else:
            if self.config.shard_insert_only:
                # The insert-only fleet has no delete path at all; a
                # committed delete record would poison every future
                # recovery, so reject it before it reaches the log.
                raise WorkloadError(
                    "this service runs insert-only shards "
                    "(shard_insert_only): delete batches are not supported"
                )
            doomed: set[int] = set()
            for tuple_id in batch.tuple_ids:
                if isinstance(tuple_id, bool) or not isinstance(tuple_id, int):
                    raise WorkloadError(
                        f"delete batch: tuple ID {tuple_id!r} is not an integer"
                    )
                if tuple_id in doomed:
                    raise WorkloadError(
                        f"delete batch names tuple ID {tuple_id} twice"
                    )
                if not relation.is_live(tuple_id):
                    raise WorkloadError(
                        f"delete batch: tuple ID {tuple_id} does not exist "
                        "or was already deleted"
                    )
                doomed.add(tuple_id)

    def serve(
        self,
        source,
        max_batches: int | None = None,
    ) -> int:
        """Drain a batch source through the commit protocol.

        Returns the number of batches applied. ``max_batches`` bounds
        the loop for tests and drain-once runs; ``None`` runs until the
        source is exhausted.

        The loop is self-healing: a batch that fails validation is
        quarantined to the dead-letter directory (with a reason record)
        and the loop continues; a source that supports ``on_poison``
        gets unparseable files quarantined the same way. Only a health
        transition out of a writable state stops the loop early.
        """
        applied = 0
        installed_poison = False
        if getattr(source, "on_poison", False) is None:
            source.on_poison = self._spool_poison
            installed_poison = True
        try:
            for batch in self._coalesced(
                self._deduplicated(source), ready_source=source
            ):
                if not self.health.can_write:
                    break
                try:
                    self.apply_batch(batch)
                except WorkloadError as exc:
                    self._quarantine_batch(source, batch, exc)
                    continue
                except ServiceHealthError:
                    break
                self._protected("spool.ack", lambda: self._ack(source, batch))
                applied += 1
                if max_batches is not None and applied >= max_batches:
                    break
        finally:
            if installed_poison:
                source.on_poison = None
        return applied

    def _spool_poison(self, name: str, path: str, exc: WorkloadError) -> None:
        """Source hook: an unparseable spool file is poison; quarantine it."""
        self.dead_letters.quarantine_file(
            path, reason=str(exc), tokens=(name,), error=exc
        )
        self._note_quarantine((name,), str(exc))

    def _quarantine_batch(
        self, source, batch: Batch, exc: WorkloadError
    ) -> None:
        """A batch that failed validation must not stop the loop.

        If the source can map tokens back to spool files, the files
        themselves move to the dead-letter directory (ack then finds
        nothing to archive); otherwise the batch payload is serialized
        there so no evidence is lost.
        """
        tokens = [t for t in _split_tokens(batch.token) if isinstance(t, str)]
        path_for = getattr(source, "path_for", None)
        moved = False
        if path_for is not None:
            for token in tokens:
                self.dead_letters.quarantine_file(
                    path_for(token),
                    reason=str(exc),
                    tokens=(token,),
                    error=exc,
                )
                moved = True
        if not moved:
            payload: dict[str, object] = {"kind": batch.kind}
            if batch.kind == INSERT:
                payload["rows"] = [list(row) for row in batch.rows]
            else:
                payload["ids"] = list(batch.tuple_ids)
            self.dead_letters.quarantine_payload(
                payload, reason=str(exc), tokens=tokens, error=exc
            )
        self._note_quarantine(tokens, str(exc))
        # Sources whose files were moved ack into the void; others
        # (pipes) have nothing to redeliver anyway.
        self._protected("spool.ack", lambda: self._ack(source, batch))

    def quarantine_batch(self, batch: Batch, exc: WorkloadError) -> None:
        """Dead-letter an in-memory poison batch (no spool file to move).

        The queue-fed ingest path has no source to ack or map tokens
        back to files; the batch payload itself is serialized into the
        quarantine directory so the evidence survives.
        """
        self._quarantine_batch(None, batch, exc)

    def _note_quarantine(self, tokens: Sequence[str], reason: str) -> None:
        self.metrics.counter("batches_dead_lettered").inc()
        self._quarantined_tokens.update(tokens)
        self.health.mark_degraded(f"batch quarantined: {reason}")
        self._refresh_gauges()

    def _deduplicated(self, source) -> Iterator[Batch]:
        """Skip (and ack) batches whose record is already committed.

        A crash between apply and ack leaves the spool file in place;
        on restart the source redelivers it, but its token is in a
        committed changelog record, so re-applying would double-count.
        The same goes for quarantined tokens: a redelivered poison
        batch is acked as a no-op, never quarantined twice or applied.
        """
        for batch in source:
            tokens = [
                t for t in _split_tokens(batch.token) if isinstance(t, str)
            ]
            known = self._committed_tokens | self._quarantined_tokens
            if tokens and all(t in known for t in tokens):
                if any(t in self._quarantined_tokens for t in tokens):
                    self.metrics.counter("deadletter_redelivered").inc()
                else:
                    self.metrics.counter("batches_redelivered").inc()
                self._protected(
                    "spool.ack", lambda: self._ack(source, batch)
                )
                continue
            yield batch

    def _coalesced(self, source, ready_source=None) -> Iterator[Batch]:
        """Merge consecutive same-kind *ready* batches up to the cap."""
        origin = ready_source if ready_source is not None else source
        has_ready = getattr(origin, "has_ready", lambda: False)
        iterator = iter(source)
        for batch in iterator:
            while (
                batch.n_rows < self.config.coalesce_rows
                and has_ready()
            ):
                try:
                    peeked = next(iterator)
                except StopIteration:
                    break
                if peeked.kind != batch.kind:
                    yield batch
                    batch = peeked
                    continue
                # Validate the merge candidate on its own first: a
                # poison batch must be quarantined alone, not fold into
                # (and take down) its healthy neighbors.
                try:
                    if peeked.kind in (INSERT, DELETE):
                        self._validate_batch(peeked)
                    else:
                        raise WorkloadError(
                            f"unknown batch kind {peeked.kind!r}"
                        )
                except WorkloadError as exc:
                    self._quarantine_batch(origin, peeked, exc)
                    continue
                self.metrics.counter("batches_coalesced").inc()
                if batch.kind == INSERT:
                    batch = Batch(
                        INSERT,
                        rows=batch.rows + peeked.rows,
                        token=_merge_tokens(batch.token, peeked.token),
                    )
                else:
                    batch = Batch(
                        DELETE,
                        tuple_ids=batch.tuple_ids + peeked.tuple_ids,
                        token=_merge_tokens(batch.token, peeked.token),
                    )
            yield batch

    def _ack(self, source, batch: Batch) -> None:
        ack = getattr(source, "ack", None)
        if ack is None:
            return
        for token in _split_tokens(batch.token):
            ack(Batch(batch.kind, token=token))

    # ------------------------------------------------------------------
    # The invariant sentinel
    # ------------------------------------------------------------------
    def run_sentinel(self, full: bool = False) -> bool:
        """Spot-verify the served profile against ground truth.

        Returns ``True`` if the check passed. On divergence the durable
        state is quarantined and the relation is holistically
        re-profiled (see :meth:`_handle_sentinel_divergence`); the
        service then serves the rebuilt -- correct -- profile, so even
        the failure path never leaves a wrong MUCS/MNUCS answer live.
        """
        if self.monitor is None:
            raise ProfileStateError("service not started; call start() first")
        self._batches_since_sentinel = 0
        self.metrics.counter("sentinel_checks").inc()
        try:
            with self.metrics.time("sentinel_seconds"):
                self.sentinel.check(self.monitor.profiler, full=full)
        except InconsistentProfileError as exc:
            self._handle_sentinel_divergence(exc)
            return False
        return True

    def _handle_sentinel_divergence(self, exc: InconsistentProfileError) -> None:
        """The served profile is wrong: quarantine state, rebuild from truth.

        The relation rows in memory *are* ground truth (every committed
        batch went through them); it is the derived MUCS/MNUCS that
        diverged. So: move the changelog and snapshots -- any of which
        may embed the bad profile -- into the dead-letter directory for
        forensics, holistically re-profile the live relation with the
        configured algorithm, and restart the durable state at the same
        sequence number. FAILED is reached only if the rebuild itself
        fails; otherwise the service continues DEGRADED with a correct
        profile.
        """
        self.metrics.counter("sentinel_failures").inc()
        assert self.monitor is not None
        seq = self._changelog.last_seq if self._changelog is not None else 0
        watches = self.monitor.watched_columns()
        relation = self.monitor.profiler.relation
        if self._changelog is not None:
            try:
                self._changelog.close()
            except OSError:
                pass
            self._changelog = None
        self.dead_letters.quarantine_state(
            [self._changelog_path, self.snapshots.directory],
            reason=str(exc),
            label=self._state_quarantine_label(seq),
            error=exc,
        )
        try:
            with self.metrics.time("sentinel_rebuild_seconds"):
                profiler = SwanProfiler.profile(
                    relation,
                    algorithm=self.config.algorithm,
                    index_quota=self.config.index_quota,
                    parallelism=self.config.parallelism,
                    execution_mode=self.config.execution_mode,
                    cache_budget_bytes=self.config.cache_budget_bytes,
                    shards=self.config.shards,
                    shard_insert_only=self.config.shard_insert_only,
                )
        except Exception as rebuild_exc:
            self.health.mark_failed(
                f"sentinel divergence ({exc}) and holistic re-profile "
                f"failed: {rebuild_exc}"
            )
            self._refresh_gauges()
            raise ServiceHealthError(
                f"profile diverged and could not be rebuilt: {rebuild_exc}"
            ) from rebuild_exc
        self.monitor.profiler.close()
        self.monitor = UniqueConstraintMonitor(profiler)
        for watch in watches:
            self.monitor.watch(list(watch))
        # quarantine_state moved the snapshot directory wholesale;
        # re-instantiating re-creates it empty.
        self.snapshots = SnapshotManager(
            os.path.join(self.data_dir, SNAPSHOT_DIR),
            retain=self.config.retain_snapshots,
        )
        self._changelog = Changelog(
            self._changelog_path, fsync=self.config.fsync, base_seq=seq
        )
        self._protected("snapshot", self._take_snapshot)
        self.metrics.counter("sentinel_rebuilds").inc()
        self.health.mark_degraded(f"sentinel divergence healed: {exc}")
        self._refresh_gauges()
        self._protected("status", self.write_status)

    def _state_quarantine_label(self, seq: int) -> str:
        """The quarantine directory name for distrusted durable state.

        Multi-tenant operators see many ``deadletter/`` directories;
        the tenant id in the name attributes each ``state-*`` artifact
        without path archaeology. Single-tenant deployments keep the
        historical ``state-seq<N>`` shape.
        """
        if self.tenant_id:
            return f"state-{self.tenant_id}-seq{seq}"
        return f"state-seq{seq}"

    def is_token_known(self, token: str) -> bool:
        """Was this delivery token already committed or quarantined?

        The changelog records every token alongside its batch, and
        ``start()`` reloads them, so the answer survives restarts. The
        HTTP ingest path uses this for idempotent redelivery: a batch
        whose token is known is acknowledged as a duplicate instead of
        being applied twice.
        """
        return token in self._committed_tokens or token in self._quarantined_tokens

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def stats(self) -> dict[str, object]:
        """The current metrics plus service identity, JSON-able."""
        if self.started:
            # Status endpoints read stats() directly; time-derived
            # gauges (uptime, time-in-state) must be live, not stale
            # from the last batch.
            self._refresh_gauges()
        return {
            "tenant": self.tenant_id,
            "data_dir": self.data_dir,
            "last_seq": self._changelog.last_seq if self._changelog else None,
            "snapshots": self.snapshots.list_seqs(),
            "recovered": self.last_recovery.source if self.last_recovery else None,
            "health": self.health.state.value,
            "last_error": self.health.last_error,
            "dead_letters": self.dead_letters.count(),
            "encoding": (
                self.monitor.profiler.encoding_stats()
                if self.monitor is not None
                else None
            ),
            # The effective fan-out shape ("thread"/"process", or
            # "inline" when parallelism <= 1) -- a string, so it rides
            # next to the numeric pool_* gauges rather than among them.
            "pool_mode": (
                self.monitor.profiler.pool_stats().get("mode")
                if self.monitor is not None
                else None
            ),
            **self.metrics.to_dict(),
        }

    def write_status(self) -> None:
        if self.monitor is None:
            return
        self.metrics.write_status(
            self._status_path,
            extra={
                "tenant": self.tenant_id,
                "data_dir": self.data_dir,
                "last_seq": self._changelog.last_seq if self._changelog else 0,
                "snapshots": self.snapshots.list_seqs(),
                "watched": self.monitor.watched_labels(),
                "health": self.health.state.value,
                "last_error": self.health.last_error,
                "dead_letters": self.dead_letters.count(),
                "encoding": self.monitor.profiler.encoding_stats(),
                "pool_mode": self.monitor.profiler.pool_stats().get("mode"),
            },
        )

    def _refresh_gauges(self) -> None:
        if self.monitor is None:
            return
        profiler = self.monitor.profiler
        profile = profiler.snapshot()
        self.metrics.gauge("live_rows").set(len(profiler.relation))
        self.metrics.gauge("n_mucs").set(len(profile.mucs))
        self.metrics.gauge("n_mnucs").set(len(profile.mnucs))
        self.metrics.gauge("health_state").set(self.health.severity)
        self.metrics.gauge("time_in_state_seconds").set(
            self.health.time_in_state()
        )
        if self.started_unix is not None:
            self.metrics.gauge("uptime_seconds").set(
                max(0.0, time.time() - self.started_unix)
            )
        self.metrics.gauge("dead_letters").set(self.dead_letters.count())
        cache_stats = profiler.cache_stats()
        self.metrics.gauge("pli_cache_hits").set(cache_stats.get("hits", 0))
        self.metrics.gauge("pli_cache_misses").set(cache_stats.get("misses", 0))
        self.metrics.gauge("pli_cache_evictions").set(
            cache_stats.get("evictions", 0)
        )
        self.metrics.gauge("pli_cache_entries").set(cache_stats.get("entries", 0))
        self.metrics.gauge("pli_cache_bytes").set(cache_stats.get("bytes", 0))
        pool_stats = profiler.pool_stats()
        # "mode" is a string and stays out of the numeric gauges; it is
        # published via stats()/status.json instead.
        self.metrics.gauge("pool_workers").set(float(pool_stats["workers"]))  # type: ignore[arg-type]
        self.metrics.gauge("pool_tasks").set(float(pool_stats["tasks"]))  # type: ignore[arg-type]
        self.metrics.gauge("pool_utilization").set(
            float(pool_stats["utilization"])  # type: ignore[arg-type]
        )
        self.metrics.gauge("storage_rows").set(profiler.relation.storage_rows)
        self.metrics.gauge("tombstone_rows").set(
            profiler.relation.tombstone_count
        )
        encoding_stats = profiler.encoding_stats()
        self.metrics.gauge("encoding_distinct_values").set(
            encoding_stats["distinct_values"]
        )
        self.metrics.gauge("encoding_code_bytes").set(
            encoding_stats["code_bytes"]
        )
        shard_stats = profiler.shard_stats()
        if shard_stats:
            self.metrics.gauge("shard_count").set(
                float(shard_stats["shard_count"])  # type: ignore[arg-type]
            )
            self.metrics.gauge("merge_seconds").set(
                float(shard_stats["merge_seconds"])  # type: ignore[arg-type]
            )
            self.metrics.gauge("cross_shard_probes").set(
                float(shard_stats["cross_shard_probes"])  # type: ignore[arg-type]
            )
            self.metrics.gauge("cross_shard_witnesses").set(
                float(shard_stats["cross_sets"])  # type: ignore[arg-type]
            )
            shard_rows = shard_stats["shard_rows"]
            assert isinstance(shard_rows, list)
            for shard, rows in enumerate(shard_rows):
                # One gauge per shard: the name is data-driven by
                # design, and shard count is fixed for the
                # profiler's lifetime.
                self.metrics.gauge(  # reprolint: disable=R5
                    f"shard_rows{shard}"
                ).set(float(rows))
        insert_stats = profiler.last_insert_stats
        if insert_stats is not None:
            retrieval = insert_stats.retrieval
            self.metrics.gauge("retrieval_requested").set(retrieval.requested)
            self.metrics.gauge("retrieval_random_seeks").set(
                retrieval.random_seeks
            )
            self.metrics.gauge("retrieval_tuples_scanned").set(
                retrieval.tuples_scanned
            )
        if self._changelog is not None:
            self.metrics.gauge("changelog_seq").set(self._changelog.last_seq)
            if os.path.exists(self._changelog_path):
                self.metrics.gauge("changelog_bytes").set(
                    os.path.getsize(self._changelog_path)
                )

    def _take_snapshot(self) -> None:
        if self.monitor is None:
            return
        profiler = self.monitor.profiler
        seq = self._changelog.last_seq if self._changelog is not None else 0
        with self.metrics.time("snapshot_seconds"):
            path = self.snapshots.save(
                profiler.relation,
                profiler.snapshot(),
                seq,
                watches=[key for key in self._watch_columns()],
                recent_tokens=list(self._recent_tokens),
            )
        self.metrics.counter("snapshots_taken").inc()
        size = sum(
            os.path.getsize(os.path.join(path, name))
            for name in os.listdir(path)
        )
        self.metrics.gauge("snapshot_bytes").set(size)
        self._batches_since_snapshot = 0

    def _watch_columns(self) -> list[tuple[str, ...]]:
        assert self.monitor is not None
        return self.monitor.watched_columns()

    def __repr__(self) -> str:
        state = "started" if self.started else "stopped"
        return f"ProfilingService({self.data_dir!r}, {state})"


def _is_loggable_cell(value: object) -> bool:
    if isinstance(value, tuple):
        return all(_is_loggable_cell(item) for item in value)
    return value is None or isinstance(value, (str, int, float, bool))


def _merge_tokens(left: object, right: object) -> object:
    tokens = _split_tokens(left) + _split_tokens(right)
    return tuple(tokens) if tokens else None


def _split_tokens(token: object) -> list[object]:
    if token is None:
        return []
    if isinstance(token, tuple):
        return list(token)
    return [token]
