"""Crash recovery: snapshot + changelog suffix -> live profiler.

The recovery invariant (tested property): for any crash point after a
committed changelog record, ``recover()`` rebuilds exactly the
MUCS/MNUCS -- and relation contents -- an uninterrupted run would have
after applying that record. The procedure:

1. Walk snapshots newest -> oldest. For each, validate it (checksums),
   rebuild the relation with original tuple IDs, re-resolve the stored
   profile against the schema by column name, and wire up a fresh
   :class:`~repro.core.swan.SwanProfiler`.
2. Replay every committed changelog record with ``seq`` greater than
   the snapshot's through the normal insert/delete handlers. A torn
   tail (crash mid-append) is discarded -- those bytes were never
   acknowledged.
3. If a snapshot fails validation, fall back to the next older one.
   If *every* snapshot is unusable, fall back to a caller-provided
   holistic re-run (re-profile the initial dataset, replay the whole
   changelog), else raise :class:`~repro.errors.RecoveryError`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

from repro.core.swan import SwanProfiler
from repro.errors import RecoveryError
from repro.service.changelog import DELETE, INSERT, ChangelogRecord, scan_file
from repro.service.snapshots import SnapshotManager
from repro.storage.relation import Relation


@dataclass
class RecoveryResult:
    """How a profiler was brought back, and at what cost."""

    profiler: SwanProfiler
    snapshot_seq: int | None
    last_seq: int
    replayed_records: int
    replayed_rows: int
    torn_bytes_discarded: int
    elapsed_s: float
    watches: tuple[tuple[str, ...], ...] = ()
    recent_tokens: tuple[str, ...] = ()
    skipped_snapshots: list[str] = field(default_factory=list)

    @property
    def source(self) -> str:
        return "holistic" if self.snapshot_seq is None else "snapshot+replay"


def replay_records(
    profiler: SwanProfiler, records: list[ChangelogRecord]
) -> tuple[int, int]:
    """Apply committed records in order; returns (records, rows) applied."""
    rows_applied = 0
    for record in records:
        if record.kind == INSERT:
            profiler.handle_inserts(record.rows)
        elif record.kind == DELETE:
            profiler.handle_deletes(record.tuple_ids)
        else:  # pragma: no cover - scan_file already rejects these
            raise RecoveryError(f"record {record.seq}: unknown kind {record.kind!r}")
        rows_applied += record.n_rows
    return len(records), rows_applied


def recover(
    snapshots: SnapshotManager,
    changelog_path: str,
    holistic_fallback: Callable[[], tuple[Relation, list[int], list[int]]]
    | None = None,
    index_quota: int | None = None,
) -> RecoveryResult:
    """Re-attach a :class:`SwanProfiler` from durable state.

    ``holistic_fallback`` -- called only when no snapshot is usable --
    must return ``(initial_relation, mucs, mnucs)`` for changelog
    sequence 0 (i.e. the profiled initial dataset); the whole changelog
    is then replayed over it.
    """
    started = time.perf_counter()
    scan = scan_file(changelog_path)
    skipped: list[str] = []
    for seq in reversed(snapshots.list_seqs()):
        try:
            snapshot = snapshots.load(seq)
        except RecoveryError as exc:
            skipped.append(str(exc))
            continue
        relation = snapshot.build_relation()
        mucs, mnucs = snapshot.stored_profile.masks_for(relation.schema)
        profiler = SwanProfiler(relation, mucs, mnucs, index_quota=index_quota)
        suffix = [record for record in scan.records if record.seq > seq]
        n_records, n_rows = replay_records(profiler, suffix)
        return RecoveryResult(
            profiler=profiler,
            snapshot_seq=seq,
            last_seq=scan.last_seq if suffix else seq,
            replayed_records=n_records,
            replayed_rows=n_rows,
            torn_bytes_discarded=scan.torn_bytes,
            elapsed_s=time.perf_counter() - started,
            watches=snapshot.watches,
            recent_tokens=snapshot.recent_tokens,
            skipped_snapshots=skipped,
        )
    if holistic_fallback is None:
        detail = "; ".join(skipped) if skipped else "no snapshots found"
        raise RecoveryError(
            f"no usable snapshot under {snapshots.directory!r} and no "
            f"holistic fallback provided ({detail})"
        )
    relation, mucs, mnucs = holistic_fallback()
    profiler = SwanProfiler(relation, mucs, mnucs, index_quota=index_quota)
    n_records, n_rows = replay_records(profiler, list(scan.records))
    return RecoveryResult(
        profiler=profiler,
        snapshot_seq=None,
        last_seq=scan.last_seq,
        replayed_records=n_records,
        replayed_rows=n_rows,
        torn_bytes_discarded=scan.torn_bytes,
        elapsed_s=time.perf_counter() - started,
        skipped_snapshots=skipped,
    )
