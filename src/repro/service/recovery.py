"""Crash recovery: snapshot + changelog suffix -> live profiler.

The recovery invariant (tested property): for any crash point after a
committed changelog record, ``recover()`` rebuilds exactly the
MUCS/MNUCS -- and relation contents -- an uninterrupted run would have
after applying that record. The procedure:

1. Walk snapshots newest -> oldest. For each, validate it (checksums),
   rebuild the relation with original tuple IDs, re-resolve the stored
   profile against the schema by column name, and wire up a fresh
   :class:`~repro.core.swan.SwanProfiler`.
2. Replay every committed changelog record with ``seq`` greater than
   the snapshot's through the normal insert/delete handlers. A torn
   tail (crash mid-append) is discarded -- those bytes were never
   acknowledged.
3. If a snapshot fails validation, cannot replay (a record refuses to
   apply), or predates the changelog's base sequence (the log was
   rotated, so its suffix is gone), fall back to the next older one.
   If *every* snapshot is unusable, fall back to a caller-provided
   holistic re-run (re-profile the initial dataset, replay the whole
   changelog -- only sound while the log still starts at sequence 0),
   else raise :class:`~repro.errors.RecoveryError`. Damage is always
   reported (``skipped_snapshots`` or the error message), never
   silently skipped over.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

from repro.core.swan import SwanProfiler
from repro.errors import RecoveryError
from repro.storage.plicache import DEFAULT_BUDGET_BYTES
from repro.service.changelog import DELETE, INSERT, ChangelogRecord, scan_file
from repro.service.snapshots import SnapshotManager
from repro.storage.relation import Relation


@dataclass
class RecoveryResult:
    """How a profiler was brought back, and at what cost."""

    profiler: SwanProfiler
    snapshot_seq: int | None
    last_seq: int
    replayed_records: int
    replayed_rows: int
    torn_bytes_discarded: int
    elapsed_s: float
    watches: tuple[tuple[str, ...], ...] = ()
    recent_tokens: tuple[str, ...] = ()
    skipped_snapshots: list[str] = field(default_factory=list)

    @property
    def source(self) -> str:
        return "holistic" if self.snapshot_seq is None else "snapshot+replay"


def replay_records(
    profiler: SwanProfiler, records: list[ChangelogRecord]
) -> tuple[int, int]:
    """Apply committed records in order; returns (records, rows) applied.

    A record that fails to apply (wrong arity, dead tuple ID, ...) is
    surfaced as :class:`~repro.errors.RecoveryError` naming the
    sequence number -- never as an unhandled profiler exception -- so
    :func:`recover` can report it and try an older snapshot instead of
    aborting with a traceback. The service validates batches before
    committing them, so this fires only on tampered or externally
    written logs.
    """
    rows_applied = 0
    for record in records:
        try:
            if record.kind == INSERT:
                profiler.handle_inserts(record.rows)
            elif record.kind == DELETE:
                profiler.handle_deletes(record.tuple_ids)
            else:  # pragma: no cover - scan_file already rejects these
                raise RecoveryError(
                    f"record {record.seq}: unknown kind {record.kind!r}"
                )
        except RecoveryError:
            raise
        except Exception as exc:
            raise RecoveryError(
                f"changelog record {record.seq} ({record.kind}, "
                f"{record.n_rows} row(s)) failed to apply: {exc}"
            ) from exc
        rows_applied += record.n_rows
    return len(records), rows_applied


def recover(
    snapshots: SnapshotManager,
    changelog_path: str,
    holistic_fallback: Callable[[], tuple[Relation, list[int], list[int]]]
    | None = None,
    index_quota: int | None = None,
    parallelism: int = 0,
    execution_mode: str = "thread",
    cache_budget_bytes: int | None = DEFAULT_BUDGET_BYTES,
    shards: int = 1,
    shard_insert_only: bool = False,
    algorithm: str = "ducc",
) -> RecoveryResult:
    """Re-attach a :class:`SwanProfiler` from durable state.

    ``holistic_fallback`` -- called only when no snapshot is usable --
    must return ``(initial_relation, mucs, mnucs)`` for changelog
    sequence 0 (i.e. the profiled initial dataset); the whole changelog
    is then replayed over it. ``parallelism``, ``execution_mode`` and
    ``cache_budget_bytes`` configure the rebuilt profiler -- and already
    speed up the replay itself (same semantics as :class:`SwanProfiler`:
    ``0`` disables the cache, ``None`` is unbounded).

    ``shards > 1`` rebuilds a sharded facade: the stored global profile
    is reused verbatim, the relation is re-partitioned (bit-identical
    placement -- the dense ID space makes routing deterministic) and
    only the small *per-shard* profiles are re-discovered with
    ``algorithm``. An insert-only fleet (``shard_insert_only=True``)
    can only replay insert records; a delete in the log fails the
    snapshot over to an older one, same as any other bad record.
    """
    started = time.perf_counter()
    scan = scan_file(changelog_path)
    skipped: list[str] = []
    for seq in reversed(snapshots.list_seqs()):
        if scan.base_seq > seq:
            # The log was rotated under a newer snapshot: records
            # seq+1..base_seq are no longer on disk, so replaying from
            # this snapshot would silently lose committed batches.
            skipped.append(
                f"snapshot {seq}: changelog starts after seq "
                f"{scan.base_seq}, records {seq + 1}..{scan.base_seq} "
                "were rotated away"
            )
            continue
        try:
            snapshot = snapshots.load(seq)
        except RecoveryError as exc:
            skipped.append(str(exc))
            continue
        relation = snapshot.build_relation()
        mucs, mnucs = snapshot.stored_profile.masks_for(relation.schema)
        profiler = SwanProfiler.build(
            relation,
            mucs,
            mnucs,
            algorithm=algorithm,
            index_quota=index_quota,
            parallelism=parallelism,
            execution_mode=execution_mode,
            cache_budget_bytes=cache_budget_bytes,
            shards=shards,
            shard_insert_only=shard_insert_only,
        )
        suffix = [record for record in scan.records if record.seq > seq]
        try:
            n_records, n_rows = replay_records(profiler, suffix)
        except RecoveryError as exc:
            skipped.append(f"snapshot {seq}: {exc}")
            continue
        return RecoveryResult(
            profiler=profiler,
            snapshot_seq=seq,
            last_seq=scan.last_seq if suffix else seq,
            replayed_records=n_records,
            replayed_rows=n_rows,
            torn_bytes_discarded=scan.torn_bytes,
            elapsed_s=time.perf_counter() - started,
            watches=snapshot.watches,
            recent_tokens=snapshot.recent_tokens,
            skipped_snapshots=skipped,
        )
    detail = "; ".join(skipped) if skipped else "no snapshots found"
    if holistic_fallback is None:
        raise RecoveryError(
            f"no usable snapshot under {snapshots.directory!r} and no "
            f"holistic fallback provided ({detail})"
        )
    if scan.base_seq > 0:
        # The fallback re-profiles the *initial* dataset (sequence 0),
        # but a rotated log no longer holds records 1..base_seq, so the
        # whole-log replay cannot reach the committed state.
        raise RecoveryError(
            "holistic fallback impossible: the changelog was rotated at "
            f"seq {scan.base_seq}, records 1..{scan.base_seq} are no "
            f"longer on disk ({detail})"
        )
    relation, mucs, mnucs = holistic_fallback()
    profiler = SwanProfiler.build(
        relation,
        mucs,
        mnucs,
        algorithm=algorithm,
        index_quota=index_quota,
        parallelism=parallelism,
        execution_mode=execution_mode,
        cache_budget_bytes=cache_budget_bytes,
        shards=shards,
        shard_insert_only=shard_insert_only,
    )
    n_records, n_rows = replay_records(profiler, list(scan.records))
    return RecoveryResult(
        profiler=profiler,
        snapshot_seq=None,
        last_seq=scan.last_seq,
        replayed_records=n_records,
        replayed_rows=n_rows,
        torn_bytes_discarded=scan.torn_bytes,
        elapsed_s=time.perf_counter() - started,
        skipped_snapshots=skipped,
    )
