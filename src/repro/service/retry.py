"""Bounded retry with exponential backoff and full jitter.

Transient I/O faults (EIO from a flaky disk, EBUSY from a scanner
holding a file, NFS hiccups) should not kill the service loop, but
unbounded retries against a dead disk must not hang it either. The
policy here is the classic production shape: up to ``max_attempts``
tries, delays growing exponentially and drawn uniformly from
``[0, cap]`` (full jitter, so a fleet of services recovering from a
shared fault does not retry in lockstep), hard-capped at ``max_delay``.

The clock is injected: callers pass ``sleep`` and ``rng`` so tests and
the chaos harness run deterministic, zero-wall-clock retry schedules.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, TypeVar

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """How often and how patiently to retry a transient failure."""

    max_attempts: int = 4
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")

    def delay_for(self, attempt: int, rng: random.Random) -> float:
        """Full-jitter delay before retry number ``attempt`` (1-based)."""
        cap = min(self.max_delay, self.base_delay * self.multiplier ** (attempt - 1))
        return rng.uniform(0.0, cap)


def retry_io(
    fn: Callable[[], T],
    policy: RetryPolicy | None = None,
    *,
    sleep: Callable[[float], None] = time.sleep,
    rng: random.Random | None = None,
    retry_on: tuple[type[BaseException], ...] = (OSError,),
    on_retry: Callable[[int, BaseException, float], None] | None = None,
) -> T:
    """Call ``fn`` until it succeeds or the policy is exhausted.

    Only exceptions in ``retry_on`` (transient I/O by default) are
    retried; everything else -- including
    :class:`~repro.faults.injector.CrashPoint`, which derives from
    ``BaseException`` precisely so no retry loop can absorb it --
    propagates immediately. The final failure re-raises the last
    exception unchanged. ``on_retry(attempt, exc, delay)`` is invoked
    before each backoff sleep so callers can count and log.
    """
    policy = policy or RetryPolicy()
    rng = rng if rng is not None else random.Random()
    for attempt in range(1, policy.max_attempts + 1):
        try:
            return fn()
        except retry_on as exc:
            if attempt >= policy.max_attempts:
                raise
            delay = policy.delay_for(attempt, rng)
            if on_retry is not None:
                on_retry(attempt, exc, delay)
            sleep(delay)
    raise AssertionError("unreachable")  # pragma: no cover
