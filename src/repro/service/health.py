"""The service health-state machine.

Faults are routine in a long-running service, so "up" is not a boolean.
:class:`HealthMonitor` tracks an explicit state with a strict severity
order::

    SERVING ──▶ DEGRADED ──▶ READ_ONLY ──▶ FAILED
       ▲            │
       └────────────┘  (after N consecutive clean batches)

* **SERVING** -- everything nominal.
* **DEGRADED** -- the service survived trouble recently: a transient
  I/O fault needed retries, a poison batch was quarantined, an optional
  write (snapshot, status, ack) gave up, or the invariant sentinel
  healed a divergence. Batches are still accepted; the state heals back
  to SERVING after ``threshold`` consecutive clean applies.
* **READ_ONLY** -- the changelog cannot be made durable (retries
  exhausted on the append path). Accepting more batches would break the
  log-then-apply contract, so mutations are rejected with
  :class:`~repro.errors.ServiceHealthError` while queries and status
  keep working. Cleared only by a restart.
* **FAILED** -- the profile cannot be trusted and could not be rebuilt
  (sentinel divergence with a failed holistic re-profile, quarantined
  state). Terminal until a restart recovers from durable state.

Transitions only ever *worsen* within a run except the
DEGRADED→SERVING healing edge; state is published as a gauge through
the metrics registry and as ``health`` / ``last_error`` in
``status.json``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class HealthState(enum.Enum):
    """Where the service sits on the serving/degraded/failed ladder."""

    SERVING = "serving"
    DEGRADED = "degraded"
    READ_ONLY = "read_only"
    FAILED = "failed"


_SEVERITY = {
    HealthState.SERVING: 0,
    HealthState.DEGRADED: 1,
    HealthState.READ_ONLY: 2,
    HealthState.FAILED: 3,
}


@dataclass
class HealthMonitor:
    """Tracks the current health state and the reason for it."""

    state: HealthState = HealthState.SERVING
    last_error: str | None = None
    transitions: list[tuple[str, str, str]] = field(default_factory=list)
    _clean_batches: int = 0

    @property
    def severity(self) -> int:
        """Numeric rank (0=serving .. 3=failed), for the metrics gauge."""
        return _SEVERITY[self.state]

    @property
    def can_write(self) -> bool:
        """May the service accept mutating batches right now?"""
        return self.state in (HealthState.SERVING, HealthState.DEGRADED)

    def _worsen(self, target: HealthState, reason: str) -> None:
        self.last_error = reason
        # Any fresh fault restarts the clean-batch streak, even when
        # the state itself does not change.
        self._clean_batches = 0
        if _SEVERITY[target] <= _SEVERITY[self.state]:
            return
        self.transitions.append((self.state.value, target.value, reason))
        self.state = target
        self._clean_batches = 0

    def mark_degraded(self, reason: str) -> None:
        """A survivable fault happened (retry, quarantine, lost snapshot)."""
        self._worsen(HealthState.DEGRADED, reason)

    def mark_read_only(self, reason: str) -> None:
        """The changelog append path is broken; stop accepting writes."""
        self._worsen(HealthState.READ_ONLY, reason)

    def mark_failed(self, reason: str) -> None:
        """The served profile cannot be trusted or rebuilt."""
        self._worsen(HealthState.FAILED, reason)

    def note_clean_batch(self, threshold: int) -> None:
        """One batch applied with no faults; heal DEGRADED after a streak."""
        if self.state is not HealthState.DEGRADED:
            return
        self._clean_batches += 1
        if threshold and self._clean_batches >= threshold:
            self.transitions.append(
                (
                    self.state.value,
                    HealthState.SERVING.value,
                    f"{self._clean_batches} consecutive clean batches",
                )
            )
            self.state = HealthState.SERVING
            self._clean_batches = 0

    def __repr__(self) -> str:
        suffix = f", last_error={self.last_error!r}" if self.last_error else ""
        return f"HealthMonitor({self.state.value}{suffix})"
