"""The service health-state machine.

Faults are routine in a long-running service, so "up" is not a boolean.
:class:`HealthMonitor` tracks an explicit state with a strict severity
order::

    SERVING ──▶ DEGRADED ──▶ READ_ONLY ──▶ FAILED
       ▲            │
       └────────────┘  (after N consecutive clean batches)

* **SERVING** -- everything nominal.
* **DEGRADED** -- the service survived trouble recently: a transient
  I/O fault needed retries, a poison batch was quarantined, an optional
  write (snapshot, status, ack) gave up, or the invariant sentinel
  healed a divergence. Batches are still accepted; the state heals back
  to SERVING after ``threshold`` consecutive clean applies.
* **READ_ONLY** -- the changelog cannot be made durable (retries
  exhausted on the append path). Accepting more batches would break the
  log-then-apply contract, so mutations are rejected with
  :class:`~repro.errors.ServiceHealthError` while queries and status
  keep working. Cleared only by a restart.
* **FAILED** -- the profile cannot be trusted and could not be rebuilt
  (sentinel divergence with a failed holistic re-profile, quarantined
  state). Terminal until a restart recovers from durable state.
* **PARKED** -- automatic recovery gave up: the fleet supervisor
  exhausted the restart budget, or startup reconciliation found the
  registry and the on-disk state dirs disagreeing. Parked tenants
  refuse all traffic until an operator recovers or drops them; the
  reason is persisted so "why is this tenant down" survives restarts.

Transitions only ever *worsen* within a run except the
DEGRADED→SERVING healing edge; state is published as a gauge through
the metrics registry and as ``health`` / ``last_error`` in
``status.json``. ``state_entered_unix`` timestamps the latest
transition so operators can see how long a state has persisted
(``time_in_state_seconds`` gauge).
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field


class HealthState(enum.Enum):
    """Where the service sits on the serving/degraded/failed ladder."""

    SERVING = "serving"
    DEGRADED = "degraded"
    READ_ONLY = "read_only"
    FAILED = "failed"
    PARKED = "parked"


_SEVERITY = {
    HealthState.SERVING: 0,
    HealthState.DEGRADED: 1,
    HealthState.READ_ONLY: 2,
    HealthState.FAILED: 3,
    HealthState.PARKED: 4,
}


@dataclass
class HealthMonitor:
    """Tracks the current health state and the reason for it."""

    state: HealthState = HealthState.SERVING
    last_error: str | None = None
    transitions: list[tuple[str, str, str]] = field(default_factory=list)
    state_entered_unix: float = field(default_factory=time.time)
    _clean_batches: int = 0

    @property
    def severity(self) -> int:
        """Numeric rank (0=serving .. 4=parked), for the metrics gauge."""
        return _SEVERITY[self.state]

    @property
    def can_write(self) -> bool:
        """May the service accept mutating batches right now?"""
        return self.state in (HealthState.SERVING, HealthState.DEGRADED)

    def time_in_state(self, now: float | None = None) -> float:
        """Seconds since the current state was entered."""
        return max(0.0, (time.time() if now is None else now) - self.state_entered_unix)

    def _worsen(self, target: HealthState, reason: str) -> None:
        self.last_error = reason
        # Any fresh fault restarts the clean-batch streak, even when
        # the state itself does not change.
        self._clean_batches = 0
        if _SEVERITY[target] <= _SEVERITY[self.state]:
            return
        self.transitions.append((self.state.value, target.value, reason))
        self.state = target
        self.state_entered_unix = time.time()
        self._clean_batches = 0

    def mark_degraded(self, reason: str) -> None:
        """A survivable fault happened (retry, quarantine, lost snapshot)."""
        self._worsen(HealthState.DEGRADED, reason)

    def mark_read_only(self, reason: str) -> None:
        """The changelog append path is broken; stop accepting writes."""
        self._worsen(HealthState.READ_ONLY, reason)

    def mark_failed(self, reason: str) -> None:
        """The served profile cannot be trusted or rebuilt."""
        self._worsen(HealthState.FAILED, reason)

    def mark_parked(self, reason: str) -> None:
        """Automatic recovery gave up; only an operator can revive this."""
        self._worsen(HealthState.PARKED, reason)

    def note_clean_batch(self, threshold: int) -> None:
        """One batch applied with no faults; heal DEGRADED after a streak."""
        if self.state is not HealthState.DEGRADED:
            return
        self._clean_batches += 1
        if threshold and self._clean_batches >= threshold:
            self.transitions.append(
                (
                    self.state.value,
                    HealthState.SERVING.value,
                    f"{self._clean_batches} consecutive clean batches",
                )
            )
            self.state = HealthState.SERVING
            self._clean_batches = 0

    def __repr__(self) -> str:
        suffix = f", last_error={self.last_error!r}" if self.last_error else ""
        return f"HealthMonitor({self.state.value}{suffix})"


class RestartBudget:
    """K restarts per rolling window, then the supervisor must park.

    An unbounded supervisor turns a deterministic fault (corrupt state,
    a bug in recovery itself) into a crash loop that burns CPU and
    floods the log forever. The budget bounds that: :meth:`record`
    stamps each restart, :meth:`exhausted` answers "has the tenant been
    restarted ``max_restarts`` times within the last
    ``window_seconds``", and the retained history rides along in the
    parked reason record so the loop is explainable after the fact.
    """

    def __init__(
        self, max_restarts: int = 5, window_seconds: float = 300.0
    ) -> None:
        if max_restarts < 1:
            raise ValueError(f"max_restarts must be >= 1, got {max_restarts}")
        if window_seconds <= 0:
            raise ValueError(
                f"window_seconds must be > 0, got {window_seconds}"
            )
        self.max_restarts = max_restarts
        self.window_seconds = window_seconds
        self._restarts: list[float] = []

    def _trim(self, now: float) -> None:
        cutoff = now - self.window_seconds
        self._restarts = [stamp for stamp in self._restarts if stamp > cutoff]

    def record(self, now: float) -> None:
        """Stamp one restart at ``now`` (a monotonic or wall clock)."""
        self._trim(now)
        self._restarts.append(now)

    def exhausted(self, now: float) -> bool:
        """Would one *more* restart exceed the budget?"""
        self._trim(now)
        return len(self._restarts) >= self.max_restarts

    def history(self) -> list[float]:
        """Restart timestamps still inside the rolling window."""
        return list(self._restarts)

    def __repr__(self) -> str:
        return (
            f"RestartBudget({len(self._restarts)}/{self.max_restarts} "
            f"in {self.window_seconds:g}s)"
        )
