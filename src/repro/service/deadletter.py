"""Dead-letter quarantine for poison batches and distrusted state.

A *poison* input -- a spool file that is not valid JSON, a batch whose
rows cannot apply -- must neither halt the service loop (one bad
producer would stop all profiling) nor be silently dropped (the
operator needs the evidence). The dead-letter queue is the middle
ground: the offending artifact is moved into
``<data_dir>/deadletter/`` together with a JSON **reason record**
describing what happened, and the loop moves on.

Every quarantined entry gets ``<name>.reason.json``::

    {"name": ..., "reason": ..., "error_type": ...,
     "tokens": [...], "quarantined_unix": ...}

``tokens`` are the source-delivery tokens folded into the entry; the
service remembers them so a *redelivery* of a quarantined batch is
acknowledged as a no-op instead of being quarantined twice (or worse,
applied).

The same directory also receives whole quarantined *state* (changelog +
snapshots) when the invariant sentinel detects profile divergence --
``state-seq<N>/`` plus a reason record -- so a corrupted history is
preserved for forensics while the service rebuilds from ground truth.
"""

from __future__ import annotations

import json
import os
import time
from typing import Iterable, Sequence

from repro.faults import fsops

SITE_REASON_OPEN = fsops.register_site(
    "deadletter.reason.open", "write a quarantine reason record (tmp file)"
)
SITE_REASON_REPLACE = fsops.register_site(
    "deadletter.reason.replace", "atomically publish a reason record"
)
SITE_FILE_REPLACE = fsops.register_site(
    "deadletter.file.replace", "move a poison file into quarantine"
)
SITE_PAYLOAD_OPEN = fsops.register_site(
    "deadletter.payload.open", "serialize an in-memory poison batch"
)
SITE_STATE_REPLACE = fsops.register_site(
    "deadletter.state.replace", "move distrusted durable state into quarantine"
)
SITE_READ_OPEN = fsops.register_site(
    "deadletter.read.open", "read a reason record back"
)

_REASON_SUFFIX = ".reason.json"


class DeadLetterQueue:
    """One quarantine directory of poison entries with reason records."""

    def __init__(self, directory: str) -> None:
        self._directory = directory

    @property
    def directory(self) -> str:
        return self._directory

    def _ensure(self) -> None:
        os.makedirs(self._directory, exist_ok=True)

    def _unique(self, name: str) -> str:
        """A name not yet used by any entry or reason record."""
        candidate = name
        counter = 1
        while os.path.exists(
            os.path.join(self._directory, candidate)
        ) or os.path.exists(
            os.path.join(self._directory, candidate + _REASON_SUFFIX)
        ):
            root, ext = os.path.splitext(name)
            candidate = f"{root}.{counter}{ext}"
            counter += 1
        return candidate

    def _write_reason(
        self,
        name: str,
        reason: str,
        tokens: Sequence[str],
        error_type: str | None,
    ) -> None:
        record = {
            "name": name,
            "reason": reason,
            "error_type": error_type,
            "tokens": list(tokens),
            "quarantined_unix": time.time(),
        }
        path = os.path.join(self._directory, name + _REASON_SUFFIX)
        tmp = path + ".tmp"
        with fsops.open_(SITE_REASON_OPEN, tmp, "w") as handle:
            json.dump(record, handle, indent=2)
        fsops.replace(SITE_REASON_REPLACE, tmp, path)

    # ------------------------------------------------------------------
    # Quarantining
    # ------------------------------------------------------------------
    def quarantine_file(
        self,
        path: str,
        reason: str,
        tokens: Sequence[str] = (),
        error: BaseException | None = None,
    ) -> str:
        """Move a poison file here; returns the quarantined path."""
        self._ensure()
        name = self._unique(os.path.basename(path))
        destination = os.path.join(self._directory, name)
        if os.path.exists(path):
            fsops.replace(SITE_FILE_REPLACE, path, destination)
        self._write_reason(
            name, reason, tokens, type(error).__name__ if error else None
        )
        return destination

    def quarantine_payload(
        self,
        payload: dict,
        reason: str,
        tokens: Sequence[str] = (),
        error: BaseException | None = None,
    ) -> str:
        """Serialize an in-memory poison batch here (no source file)."""
        self._ensure()
        name = self._unique("batch.json")
        destination = os.path.join(self._directory, name)
        with fsops.open_(SITE_PAYLOAD_OPEN, destination, "w") as handle:
            json.dump(payload, handle, indent=2)
        self._write_reason(
            name, reason, tokens, type(error).__name__ if error else None
        )
        return destination

    def quarantine_state(
        self,
        paths: Iterable[str],
        reason: str,
        label: str,
        error: BaseException | None = None,
    ) -> str:
        """Move distrusted durable state (changelog, snapshots) here.

        Every existing path in ``paths`` is moved under a
        ``<label>/`` subdirectory; missing paths are skipped.
        """
        self._ensure()
        name = self._unique(label)
        destination = os.path.join(self._directory, name)
        os.makedirs(destination)
        for path in paths:
            if os.path.exists(path):
                fsops.replace(
                    SITE_STATE_REPLACE,
                    path,
                    os.path.join(destination, os.path.basename(path)),
                )
        self._write_reason(
            name, reason, (), type(error).__name__ if error else None
        )
        return destination

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def entries(self) -> list[dict]:
        """Every reason record, sorted by name."""
        if not os.path.isdir(self._directory):
            return []
        records = []
        for name in sorted(os.listdir(self._directory)):
            if not name.endswith(_REASON_SUFFIX):
                continue
            try:
                with fsops.open_(
                    SITE_READ_OPEN, os.path.join(self._directory, name)
                ) as handle:
                    records.append(json.load(handle))
            except (OSError, json.JSONDecodeError):  # pragma: no cover
                continue
        return records

    def count(self) -> int:
        """How many entries have been quarantined."""
        if not os.path.isdir(self._directory):
            return 0
        return sum(
            1
            for name in os.listdir(self._directory)
            if name.endswith(_REASON_SUFFIX)
        )

    def tokens(self) -> frozenset[str]:
        """All source-delivery tokens named by any reason record."""
        collected: set[str] = set()
        for record in self.entries():
            collected.update(
                str(token) for token in record.get("tokens", [])
            )
        return frozenset(collected)

    def __repr__(self) -> str:
        return f"DeadLetterQueue({self._directory!r}, entries={self.count()})"
