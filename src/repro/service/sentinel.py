"""The invariant sentinel: catches silent MUCS/MNUCS drift at runtime.

Incremental maintenance is only trustworthy if its invariants are
*checked while it runs*: a bug (or bit flip) that nudges the repository
off the true profile would otherwise serve wrong uniqueness answers
indefinitely -- the exact risk that makes incremental dependency
discovery hard to run unattended. The sentinel re-derives the paper's
definitional invariants from ground truth on a sampled budget:

1. **Structure** (exact, pure bit math): MUCS and MNUCS are each
   antichains, and no MUC is a subset of any MNUC (a unique subset of a
   non-unique set is a contradiction of Definitions 1-2).
2. **Spot minimality/maximality** (sampled, scans the relation via
   :mod:`repro.profiling.verify`): sampled MUCs satisfy Definition 3,
   sampled MNUCs satisfy Definition 4.
3. **Sampled duplicate pairs**: for random live row pairs -- and for
   actual duplicate pairs drawn from sampled MNUC groupings -- the
   agree set must contain no reported MUC (two rows agreeing on a
   "unique" combination disproves it) and must be covered by some
   reported MNUC (every agree set is non-unique by construction).

A full check (``full=True``) delegates to
:func:`repro.profiling.verify.verify_profile` with the transversal
duality cross-check -- exhaustive, and priced in
``benchmarks/bench_sentinel.py`` against the sampled mode.

On any violation :meth:`InvariantSentinel.check` raises
:class:`~repro.errors.InconsistentProfileError`; the service reacts by
quarantining the durable state and holistically re-profiling (see
``ProfilingService.run_sentinel``).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass

from repro.core.swan import SwanProfiler
from repro.errors import InconsistentProfileError
from repro.profiling.verify import (
    agree_set,
    is_maximal_non_unique,
    is_minimal_unique,
    verify_profile,
)


@dataclass(frozen=True)
class SentinelReport:
    """What one passing sentinel check actually looked at."""

    checked_mucs: int
    checked_mnucs: int
    sampled_pairs: int
    full: bool
    elapsed_s: float


def check_structure(mucs: list[int], mnucs: list[int]) -> None:
    """Exact antichain + duality-consistency checks (no relation scans)."""
    for label, masks in (("MUCS", mucs), ("MNUCS", mnucs)):
        for i, left in enumerate(masks):
            for right in masks[i + 1 :]:
                meet = left & right
                if meet == left or meet == right:
                    raise InconsistentProfileError(
                        f"{label} is not an antichain: {left:#x} and "
                        f"{right:#x} are comparable"
                    )
    for muc in mucs:
        for mnuc in mnucs:
            if muc & mnuc == muc:
                raise InconsistentProfileError(
                    f"MUC {muc:#x} is a subset of MNUC {mnuc:#x}: a unique "
                    "combination cannot be contained in a non-unique one"
                )


class InvariantSentinel:
    """Periodic sampled verification of the live profile."""

    def __init__(
        self,
        sample_masks: int = 12,
        sample_pairs: int = 24,
        seed: int = 0,
    ) -> None:
        self._sample_masks = sample_masks
        self._sample_pairs = sample_pairs
        self._rng = random.Random(seed)

    def check(self, profiler: SwanProfiler, full: bool = False) -> SentinelReport:
        """Verify the profiler's current profile against its relation.

        Raises :class:`~repro.errors.InconsistentProfileError` on any
        divergence; returns a :class:`SentinelReport` otherwise.
        """
        started = time.perf_counter()
        relation = profiler.relation
        profile = profiler.snapshot()
        mucs = sorted(profile.mucs)
        mnucs = sorted(profile.mnucs)
        check_structure(mucs, mnucs)
        if full:
            verify_profile(relation, mucs, mnucs, exhaustive=True)
            return SentinelReport(
                checked_mucs=len(mucs),
                checked_mnucs=len(mnucs),
                sampled_pairs=0,
                full=True,
                elapsed_s=time.perf_counter() - started,
            )
        sampled_mucs = self._sample(mucs)
        sampled_mnucs = self._sample(mnucs)
        for mask in sampled_mucs:
            if not is_minimal_unique(relation, mask):
                raise InconsistentProfileError(
                    f"reported MUC {mask:#x} is not a minimal unique of the "
                    "live relation"
                )
        for mask in sampled_mnucs:
            if not is_maximal_non_unique(relation, mask):
                raise InconsistentProfileError(
                    f"reported MNUC {mask:#x} is not a maximal non-unique of "
                    "the live relation"
                )
        n_pairs = self._check_pairs(relation, mucs, mnucs, sampled_mnucs)
        return SentinelReport(
            checked_mucs=len(sampled_mucs),
            checked_mnucs=len(sampled_mnucs),
            sampled_pairs=n_pairs,
            full=False,
            elapsed_s=time.perf_counter() - started,
        )

    def _sample(self, masks: list[int]) -> list[int]:
        if len(masks) <= self._sample_masks:
            return list(masks)
        return self._rng.sample(masks, self._sample_masks)

    def _check_pairs(
        self,
        relation,
        mucs: list[int],
        mnucs: list[int],
        sampled_mnucs: list[int],
    ) -> int:
        """Spot-check agree sets of sampled (and known-duplicate) pairs."""
        ids = list(relation.iter_ids())
        pairs: list[tuple[int, int]] = []
        if len(ids) >= 2:
            for _ in range(self._sample_pairs):
                pairs.append(tuple(self._rng.sample(ids, 2)))
        # Known duplicate pairs: rows that actually collide on a
        # reported MNUC exercise the interesting (agreeing) projections
        # far better than uniform pairs on wide data.
        for mask in sampled_mnucs:
            groups = [
                group
                for group in relation.group_duplicates(mask).values()
                if len(group) >= 2
            ]
            if not groups:
                raise InconsistentProfileError(
                    f"reported MNUC {mask:#x} has no duplicate pair in the "
                    "live relation (it is not non-unique)"
                )
            group = self._rng.choice(groups)
            pairs.append(tuple(self._rng.sample(group, 2)))
        for left_id, right_id in pairs:
            agree = agree_set(relation.row(left_id), relation.row(right_id))
            for muc in mucs:
                if muc & agree == muc:
                    raise InconsistentProfileError(
                        f"rows {left_id} and {right_id} agree on reported "
                        f"MUC {muc:#x}: the combination is not unique"
                    )
            if mnucs and not any(agree & mnuc == agree for mnuc in mnucs):
                raise InconsistentProfileError(
                    f"agree set {agree:#x} of rows {left_id}/{right_id} is "
                    "covered by no reported MNUC: the profile is incomplete"
                )
        return len(pairs)
