"""``repro-serve``: the crash-recoverable profiling service CLI.

Examples::

    # first boot: profile data.csv, seal durable state under state/
    repro-serve state/ --init data.csv --watch voter_reg_num

    # drain a spool directory of batch files once, then exit
    repro-serve state/ --spool incoming/ --once

    # keep following the spool (poll every 2s) until interrupted
    repro-serve state/ --spool incoming/ --poll 2

    # pipe CSV rows in as insert batches (``!delete,3,7`` lines delete)
    tail -f updates.csv | repro-serve state/ --stdin --batch-size 200

    # inspect a running/stopped service's last published metrics
    repro-serve state/ --status

After a crash (or a clean stop), re-running any of these recovers from
the newest snapshot plus the committed changelog suffix instead of
re-profiling -- the first line of output says which path was taken.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Sequence

from repro.errors import ReproError
from repro.service.server import (
    STATUS_NAME,
    ProfilingService,
    ServiceConfig,
    SpoolDirectorySource,
    StdinCSVSource,
)
from repro.storage.relation import Relation


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Run the incremental profiler as a crash-recoverable "
        "service over a durable state directory.",
    )
    parser.add_argument("data_dir", help="state directory (changelog, snapshots, status)")
    parser.add_argument(
        "--init", metavar="CSV", default=None,
        help="initial dataset for first boot (ignored when durable state exists)",
    )
    parser.add_argument(
        "--algorithm", default="ducc",
        help="holistic algorithm for first boot (default: ducc)",
    )
    parser.add_argument(
        "--watch", action="append", default=[], metavar="COL[,COL...]",
        help="watch a column combination; repeatable",
    )
    source = parser.add_mutually_exclusive_group()
    source.add_argument(
        "--spool", metavar="DIR", default=None,
        help="follow a spool directory of JSON batch files",
    )
    source.add_argument(
        "--stdin", action="store_true",
        help="read CSV rows from stdin as insert batches",
    )
    source.add_argument(
        "--status", action="store_true",
        help="print the last published status.json and exit",
    )
    parser.add_argument(
        "--once", action="store_true",
        help="with --spool: drain what is pending, then exit (no polling)",
    )
    parser.add_argument(
        "--poll", type=float, default=1.0, metavar="SECONDS",
        help="with --spool: poll interval while following (default 1.0)",
    )
    parser.add_argument(
        "--batch-size", type=int, default=100,
        help="rows per insert batch in --stdin mode (default 100)",
    )
    parser.add_argument(
        "--snapshot-every", type=int, default=16, metavar="N",
        help="snapshot every N applied batches (default 16)",
    )
    parser.add_argument(
        "--retain", type=int, default=3, metavar="K",
        help="keep the newest K snapshots (default 3)",
    )
    parser.add_argument(
        "--index-quota", type=int, default=None,
        help="extra value-index budget (paper Algorithm 4)",
    )
    parser.add_argument(
        "--no-fsync", action="store_true",
        help="skip fsync on changelog commit (fast, NOT crash-safe)",
    )
    parser.add_argument(
        "--parallelism", type=int, default=0, metavar="N",
        help="fan-out workers for batch analysis (default 0 = serial; "
        "results are identical either way)",
    )
    parser.add_argument(
        "--execution-mode", choices=("thread", "process"), default="thread",
        help="fan-out shape: 'thread' shares one executor, 'process' forks "
        "workers per batch to escape the GIL (default thread)",
    )
    parser.add_argument(
        "--cache-budget-mb", type=int, default=64, metavar="MB",
        help="byte budget for the cross-batch partition cache "
        "(default 64; 0 disables the cache)",
    )
    parser.add_argument(
        "--shards", type=int, default=1, metavar="K",
        help="partition the profile across K shard-local profilers with "
        "an exact cross-shard merge (default 1 = unsharded)",
    )
    parser.add_argument(
        "--shard-insert-only", action="store_true",
        help="with --shards: drop per-shard PLI maintenance and the "
        "delete handler (append-only workloads; delete batches are "
        "rejected at admission)",
    )
    return parser


def _print_status(data_dir: str) -> int:
    path = os.path.join(data_dir, STATUS_NAME)
    if not os.path.exists(path):
        print(f"no status file at {path} (service never started?)", file=sys.stderr)
        return 1
    with open(path) as handle:
        status = json.load(handle)
    # stdout stays machine-readable (pure JSON); the human summary of
    # the health ladder goes to stderr.
    print(json.dumps(status, indent=2))
    health = status.get("health", "unknown")
    summary = f"health: {health}"
    dead = status.get("dead_letters", 0)
    if dead:
        summary += f", {dead} dead-letter entr{'y' if dead == 1 else 'ies'}"
    if status.get("last_error"):
        summary += f", last error: {status['last_error']}"
    print(summary, file=sys.stderr)
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.status:
        return _print_status(args.data_dir)
    if args.parallelism < 0:
        print("error: --parallelism must be >= 0", file=sys.stderr)
        return 2
    if args.cache_budget_mb < 0:
        print("error: --cache-budget-mb must be >= 0", file=sys.stderr)
        return 2
    if args.shards < 1:
        print("error: --shards must be >= 1", file=sys.stderr)
        return 2
    config = ServiceConfig(
        snapshot_every=args.snapshot_every,
        retain_snapshots=args.retain,
        fsync=not args.no_fsync,
        index_quota=args.index_quota,
        algorithm=args.algorithm,
        watches=tuple(
            tuple(col.strip() for col in spec.split(",") if col.strip())
            for spec in args.watch
        ),
        parallelism=args.parallelism,
        execution_mode=args.execution_mode,
        cache_budget_bytes=args.cache_budget_mb * 1024 * 1024,
        shards=args.shards,
        shard_insert_only=args.shard_insert_only,
    )
    service = ProfilingService(args.data_dir, config=config)
    service.on_event(lambda event: print(f"  {event}"))
    try:
        if service.has_state():
            if args.init:
                print(
                    f"durable state found under {args.data_dir}; "
                    "--init is ignored, recovering instead"
                )
            service.start()
            result = service.last_recovery
            assert result is not None
            print(
                f"recovered via {result.source}: snapshot seq "
                f"{result.snapshot_seq}, replayed {result.replayed_records} "
                f"record(s) / {result.replayed_rows} row(s) in "
                f"{result.elapsed_s:.3f}s"
                + (
                    f" (discarded {result.torn_bytes_discarded} torn byte(s))"
                    if result.torn_bytes_discarded
                    else ""
                )
            )
        elif args.init:
            try:
                relation = Relation.from_csv(args.init)
            except OSError as exc:
                print(f"error: cannot read {args.init}: {exc}", file=sys.stderr)
                return 1
            print(
                f"first boot: profiling {args.init} "
                f"({len(relation)} rows x {relation.n_columns} columns) "
                f"with {args.algorithm}"
            )
            service.start(initial=relation)
        else:
            print(
                f"no durable state under {args.data_dir}; pass --init CSV "
                "for the first boot",
                file=sys.stderr,
            )
            return 2
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    profiler = service.profiler
    print(
        f"serving {len(profiler.relation)} rows, "
        f"{len(profiler.minimal_uniques())} minimal uniques, "
        f"changelog at seq {service.stats()['last_seq']}"
    )
    exit_code = 0
    try:
        if args.spool:
            spool = SpoolDirectorySource(
                args.spool, poll_interval=None if args.once else args.poll
            )
            applied = service.serve(spool)
            print(f"applied {applied} batch(es) from {args.spool}")
        elif args.stdin:
            stdin_source = StdinCSVSource(
                sys.stdin, profiler.relation.n_columns, batch_size=args.batch_size
            )
            applied = service.serve(stdin_source)
            print(
                f"applied {applied} batch(es) from stdin"
                + (
                    f" ({stdin_source.skipped_rows} malformed row(s) skipped)"
                    if stdin_source.skipped_rows
                    else ""
                )
            )
    except KeyboardInterrupt:
        print("\ninterrupted; taking a final snapshot")
    except ReproError as exc:
        # Unrecoverable loop failure (poison batches are quarantined
        # and never reach here; this is e.g. a FAILED health state).
        print(f"error: {exc}", file=sys.stderr)
        exit_code = 1
    finally:
        dead = service.dead_letters.count()
        if dead:
            print(
                f"warning: {dead} dead-letter entr{'y' if dead == 1 else 'ies'} "
                f"under {service.dead_letters.directory}",
                file=sys.stderr,
            )
        if service.health.state.value != "serving":
            print(
                f"warning: health is {service.health.state.value}"
                + (
                    f" ({service.health.last_error})"
                    if service.health.last_error
                    else ""
                ),
                file=sys.stderr,
            )
            if exit_code == 0 and not service.health.can_write:
                exit_code = 1
        if service.started:
            summary = (
                f"stopped: {len(service.profiler.relation)} rows, "
                f"{len(service.profiler.minimal_uniques())} minimal uniques, "
                f"committed seq {service.stats()['last_seq']}"
            )
            service.stop()
            print(summary)
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
