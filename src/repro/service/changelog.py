"""The write-ahead change log.

Every batch the service accepts is framed, checksummed and fsynced to
an append-only log *before* it touches the profiler (log-then-apply).
A record is *committed* once its bytes are durable; after a crash the
log's committed prefix is exactly the sequence of batches the service
acknowledged, so replaying it over the last snapshot reproduces the
in-memory state byte for byte.

File layout (little-endian): an 8-byte magic, a u64 *base sequence
number* (the sequence the log starts after -- 0 for a virgin log,
``S`` for a log rotated under a snapshot covering ``S``), then record
frames::

    [u32 payload length][u32 CRC-32][u64 sequence number][payload]

* The CRC covers the sequence number and the payload, so a corrupted
  header is detected as reliably as a corrupted body.
* The payload is UTF-8 JSON: ``{"kind": "insert", "rows": [...]}`` or
  ``{"kind": "delete", "ids": [...]}``.
* Sequence numbers start at base+1 and are strictly contiguous; a gap
  or regression means the file was tampered with or mis-assembled.

Torn writes (the process died mid-append) leave an incomplete or
checksum-invalid frame at the *tail*; :meth:`Changelog.open` truncates
it so new appends extend the committed prefix. Invalid bytes *before*
the tail cannot be skipped -- frame boundaries are gone -- so readers
raise :class:`~repro.errors.ChangelogCorruptionError` in strict mode
and stop at the damage otherwise.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass
from typing import Hashable, Iterator, Sequence

from repro.errors import ChangelogCorruptionError
from repro.faults import fsops

SITE_SCAN_OPEN = fsops.register_site(
    "changelog.scan.open", "open the changelog for a committed-prefix scan"
)
SITE_OPEN = fsops.register_site(
    "changelog.open", "open the changelog for appending"
)
SITE_APPEND_WRITE = fsops.register_site(
    "changelog.append.write", "write one framed record"
)
SITE_APPEND_FSYNC = fsops.register_site(
    "changelog.append.fsync", "fsync after a record or header write"
)
SITE_ROTATE_REPLACE = fsops.register_site(
    "changelog.rotate.replace", "archive a stale log before re-basing"
)

MAGIC = b"SWANLOG2"
_BASE = struct.Struct("<Q")  # base sequence number (file header)
_HEADER = struct.Struct("<IIQ")  # payload length, crc32, sequence number

INSERT = "insert"
DELETE = "delete"


def decode_cell(value: object) -> Hashable:
    """JSON payload value -> row cell.

    Tuple cells survive a JSON round-trip as arrays; turning arrays
    back into tuples keeps replayed rows equal (and hashable) to what
    the live run inserted, so recovery reproduces the exact profile.
    """
    if isinstance(value, list):
        return tuple(decode_cell(item) for item in value)
    return value  # type: ignore[return-value]


@dataclass(frozen=True)
class ChangelogRecord:
    """One committed batch: a sequence number plus its operation.

    ``tokens`` optionally names the source deliveries (e.g. spool
    files) folded into this record, so a batch redelivered after a
    crash-between-apply-and-ack can be recognised as already committed
    and skipped.
    """

    seq: int
    kind: str
    rows: tuple[tuple[Hashable, ...], ...] = ()
    tuple_ids: tuple[int, ...] = ()
    tokens: tuple[str, ...] = ()

    @property
    def n_rows(self) -> int:
        return len(self.rows) if self.kind == INSERT else len(self.tuple_ids)

    def to_payload(self) -> bytes:
        if self.kind == INSERT:
            body = {"kind": INSERT, "rows": [list(row) for row in self.rows]}
        else:
            body = {"kind": DELETE, "ids": list(self.tuple_ids)}
        if self.tokens:
            body["tokens"] = list(self.tokens)
        return json.dumps(body, separators=(",", ":")).encode("utf-8")

    @classmethod
    def from_payload(cls, seq: int, payload: bytes) -> "ChangelogRecord":
        try:
            body = json.loads(payload.decode("utf-8"))
            kind = body["kind"]
            tokens = tuple(str(t) for t in body.get("tokens", []))
            if kind == INSERT:
                return cls(
                    seq,
                    INSERT,
                    rows=tuple(
                        tuple(decode_cell(cell) for cell in row)
                        for row in body["rows"]
                    ),
                    tokens=tokens,
                )
            if kind == DELETE:
                return cls(
                    seq,
                    DELETE,
                    tuple_ids=tuple(int(i) for i in body["ids"]),
                    tokens=tokens,
                )
        except (ValueError, KeyError, TypeError) as exc:
            raise ChangelogCorruptionError(
                f"record {seq}: undecodable payload ({exc})"
            ) from exc
        raise ChangelogCorruptionError(f"record {seq}: unknown kind {kind!r}")


def _crc(seq: int, payload: bytes) -> int:
    return zlib.crc32(struct.pack("<Q", seq) + payload)


@dataclass(frozen=True)
class ScanResult:
    """What a pass over a changelog file found."""

    records: tuple[ChangelogRecord, ...]
    valid_bytes: int
    torn_bytes: int
    error: str | None
    base_seq: int = 0

    @property
    def last_seq(self) -> int:
        return self.records[-1].seq if self.records else self.base_seq


def scan_file(path: str) -> ScanResult:
    """Read every committed record, stopping at the first invalid frame.

    Never raises on damage -- the damage is *described* so callers can
    decide (the writer truncates a torn tail, strict readers raise).
    """
    records: list[ChangelogRecord] = []
    try:
        with fsops.open_(SITE_SCAN_OPEN, path, "rb") as handle:
            data = handle.read()
    except FileNotFoundError:
        return ScanResult((), 0, 0, None)
    if not data:
        return ScanResult((), 0, 0, None)
    if not data.startswith(MAGIC):
        return ScanResult((), 0, len(data), "bad magic header")
    if len(data) < len(MAGIC) + _BASE.size:
        return ScanResult((), 0, len(data), "incomplete file header")
    (base_seq,) = _BASE.unpack_from(data, len(MAGIC))
    offset = len(MAGIC) + _BASE.size
    error: str | None = None
    while offset < len(data):
        if offset + _HEADER.size > len(data):
            error = "incomplete record header"
            break
        length, crc, seq = _HEADER.unpack_from(data, offset)
        start = offset + _HEADER.size
        if start + length > len(data):
            error = f"record {seq}: payload truncated"
            break
        payload = data[start : start + length]
        if _crc(seq, payload) != crc:
            error = f"record {seq}: checksum mismatch"
            break
        expected = (records[-1].seq if records else base_seq) + 1
        if seq != expected:
            error = f"sequence gap: expected {expected}, found {seq}"
            break
        records.append(ChangelogRecord.from_payload(seq, payload))
        offset = start + length
    return ScanResult(
        tuple(records), offset, len(data) - offset, error, base_seq=base_seq
    )


def read_records(
    path: str, after: int = 0, strict: bool = False
) -> Iterator[ChangelogRecord]:
    """Committed records with ``seq > after``, in order.

    ``strict=True`` raises :class:`ChangelogCorruptionError` if the file
    holds *any* invalid bytes; otherwise iteration stops cleanly at the
    damage (the torn-tail case every crash produces).
    """
    scan = scan_file(path)
    if strict and scan.error is not None:
        raise ChangelogCorruptionError(f"{path}: {scan.error}")
    for record in scan.records:
        if record.seq > after:
            yield record


class Changelog:
    """Append-only writer (and reader) over one changelog file."""

    def __init__(self, path: str, fsync: bool = True, base_seq: int = 0) -> None:
        """Open (creating if needed) a changelog for appending.

        ``base_seq`` seeds the sequence counter of a *new* file; for an
        existing file the on-disk header wins.
        """
        self._path = path
        self._fsync = fsync
        scan = scan_file(path)
        self._last_seq = scan.last_seq
        self.recovered_torn_bytes = scan.torn_bytes
        fresh = not os.path.exists(path)
        self._handle = fsops.open_(SITE_OPEN, path, "ab")
        self._committed_bytes = 0
        try:
            if fresh or os.path.getsize(path) == 0:
                fsops.write(
                    SITE_APPEND_WRITE, self._handle, MAGIC + _BASE.pack(base_seq)
                )
                self._last_seq = base_seq
                self._commit()
            elif scan.torn_bytes:
                # A previous writer died mid-append: drop the torn tail
                # so the next record extends the committed prefix.
                self._handle.truncate(scan.valid_bytes)
                self._handle.seek(0, os.SEEK_END)
                if scan.valid_bytes == 0:
                    fsops.write(
                        SITE_APPEND_WRITE,
                        self._handle,
                        MAGIC + _BASE.pack(base_seq),
                    )
                    self._last_seq = base_seq
                self._commit()
            else:
                self._handle.seek(0, os.SEEK_END)
                self._committed_bytes = self._handle.tell()
        except BaseException:
            self._handle.close()
            raise

    @classmethod
    def open(cls, path: str, fsync: bool = True) -> "Changelog":
        return cls(path, fsync=fsync)

    @classmethod
    def ensure_at(cls, path: str, seq: int, fsync: bool = True) -> "Changelog":
        """Open for appending after state sequence ``seq``.

        If the committed log ends *before* ``seq`` -- its tail was lost
        but a snapshot already covers those records -- appending to it
        would hand out sequence numbers a snapshot claims to cover, and
        a later recovery would silently skip them. Instead the stale
        log is archived (``<path>.stale``) and a fresh one based at
        ``seq`` takes its place.
        """
        log = cls(path, fsync=fsync)
        if log.last_seq >= seq:
            return log
        log.close()
        fsops.replace(SITE_ROTATE_REPLACE, path, path + ".stale")
        return cls(path, fsync=fsync, base_seq=seq)

    @property
    def path(self) -> str:
        return self._path

    @property
    def last_seq(self) -> int:
        """Sequence number of the newest committed record (0 if none)."""
        return self._last_seq

    def append(self, record_kind: str, **fields: object) -> ChangelogRecord:
        """Frame, write and fsync one batch; returns the committed record.

        ``append("insert", rows=...)`` or ``append("delete", tuple_ids=...)``.
        """
        record = ChangelogRecord(self._last_seq + 1, record_kind, **fields)  # type: ignore[arg-type]
        self.append_record(record)
        return record

    def append_record(self, record: ChangelogRecord) -> None:
        if record.seq != self._last_seq + 1:
            raise ChangelogCorruptionError(
                f"non-contiguous append: last committed seq is "
                f"{self._last_seq}, record has {record.seq}"
            )
        payload = record.to_payload()
        frame = _HEADER.pack(len(payload), _crc(record.seq, payload), record.seq)
        try:
            fsops.write(SITE_APPEND_WRITE, self._handle, frame + payload)
            self._commit()
        except OSError:
            # A failed append may have left a partial frame behind;
            # roll the file back to the committed prefix so the caller
            # can retry the append against an intact tail.
            self._rollback_tail()
            raise
        self._last_seq = record.seq

    def _rollback_tail(self) -> None:
        try:
            self._handle.truncate(self._committed_bytes)
            self._handle.seek(0, os.SEEK_END)
        except OSError:  # pragma: no cover - the next open scans it away
            pass

    def append_inserts(
        self, rows: Sequence[Sequence[Hashable]], tokens: Sequence[str] = ()
    ) -> ChangelogRecord:
        return self.append(
            INSERT, rows=tuple(tuple(row) for row in rows), tokens=tuple(tokens)
        )

    def append_deletes(
        self, tuple_ids: Sequence[int], tokens: Sequence[str] = ()
    ) -> ChangelogRecord:
        return self.append(
            DELETE, tuple_ids=tuple(tuple_ids), tokens=tuple(tokens)
        )

    def records(self, after: int = 0) -> Iterator[ChangelogRecord]:
        """Committed records with ``seq > after`` (reads from disk)."""
        self._handle.flush()
        return read_records(self._path, after=after)

    def _commit(self) -> None:
        self._handle.flush()
        if self._fsync:
            fsops.fsync(SITE_APPEND_FSYNC, self._handle)
        self._committed_bytes = self._handle.tell()

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.flush()
            self._handle.close()

    def __enter__(self) -> "Changelog":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"Changelog({self._path!r}, last_seq={self._last_seq})"
