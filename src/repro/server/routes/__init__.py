"""Route tables for the HTTP front-end, split by concern.

Mirrors the service CLI's command split: tenant lifecycle
(:mod:`~repro.server.routes.admin`), health and status
(:mod:`~repro.server.routes.health`), ingest
(:mod:`~repro.server.routes.ingest`), profile queries
(:mod:`~repro.server.routes.query`) and raw downloads
(:mod:`~repro.server.routes.downloads`).
"""

from __future__ import annotations

from repro.server.routes import admin, downloads, health, ingest, query
from repro.server.routing import Route


def all_routes() -> list[Route]:
    """Every route, in match order."""
    return [
        *health.ROUTES,
        *admin.ROUTES,
        *ingest.ROUTES,
        *query.ROUTES,
        *downloads.ROUTES,
    ]


__all__ = ["all_routes"]
