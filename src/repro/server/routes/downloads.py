"""Download routes: raw relation contents for offline verification."""

from __future__ import annotations

import csv
import io

from repro.server.app import HttpRequest, HttpResponse, ReproServerApp
from repro.server.routing import Route


def get_rows_csv(app: ReproServerApp, request: HttpRequest) -> HttpResponse:
    """``GET /tenants/{tenant_id}/rows.csv`` -- live tuples as CSV.

    First column is the tuple id (what delete batches reference), then
    the tenant's columns in schema order. Built in memory -- relations
    here are profiling working sets, not data lakes.
    """
    tenant = app.manager.get(request.params["tenant_id"])
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    with tenant.lock:
        relation = tenant.service.profiler.relation
        writer.writerow(["tuple_id", *relation.schema.names])
        for tuple_id, row in relation.iter_items():
            writer.writerow([tuple_id, *row])
    return HttpResponse(
        status=200,
        raw=buffer.getvalue().encode("utf-8"),
        content_type="text/csv; charset=utf-8",
    )


ROUTES = [
    Route("GET", "/tenants/{tenant_id}/rows.csv", get_rows_csv),
]
