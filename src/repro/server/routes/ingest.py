"""Ingest routes: batch admission and flush."""

from __future__ import annotations

from repro.errors import WorkloadError
from repro.server.app import HttpRequest, HttpResponse, ReproServerApp
from repro.server.routing import Route
from repro.service.changelog import DELETE, INSERT


def post_batch(app: ReproServerApp, request: HttpRequest) -> HttpResponse:
    """``POST /tenants/{tenant_id}/batches`` -- admit one batch.

    Body: ``{"kind": "insert", "rows": [...], "token": ...}`` or
    ``{"kind": "delete", "tuple_ids": [...], "token": ...}``. A fresh
    batch is ``202 Accepted`` (it is queued, not yet applied); a
    replayed token is ``200`` with ``"outcome": "duplicate"`` -- the
    changelog's token dedup reached over HTTP, making retries safe.
    """
    tenant_id = request.params["tenant_id"]
    body = request.json()
    kind = body.get("kind")
    if kind not in (INSERT, DELETE):
        raise WorkloadError(
            f"'kind' must be {INSERT!r} or {DELETE!r}, got {kind!r}"
        )
    token = body.get("token")
    if token is not None and not isinstance(token, str):
        raise WorkloadError(f"'token' must be a string, got {type(token).__name__}")
    rows = body.get("rows", [])
    tuple_ids = body.get("tuple_ids", [])
    if not isinstance(rows, list) or not isinstance(tuple_ids, list):
        raise WorkloadError("'rows' and 'tuple_ids' must be lists")
    if kind == INSERT and tuple_ids:
        raise WorkloadError("insert batches carry 'rows', not 'tuple_ids'")
    if kind == DELETE and rows:
        raise WorkloadError("delete batches carry 'tuple_ids', not 'rows'")
    receipt = app.manager.ingest(
        tenant_id,
        kind,
        rows=[tuple(row) for row in rows],
        tuple_ids=tuple_ids,
        token=token,
        nbytes=len(request.body) or None,
    )
    status = 202 if receipt.get("outcome") == "enqueued" else 200
    return HttpResponse(status=status, document=receipt)


def flush(app: ReproServerApp, request: HttpRequest) -> HttpResponse:
    """``POST /tenants/{tenant_id}/flush`` -- wait for the queue to drain.

    Turns the async ingest contract into a synchronous checkpoint for
    clients that need read-your-writes before querying.
    """
    tenant_id = request.params["tenant_id"]
    raw = request.json().get("timeout", 30.0)
    try:
        timeout = float(raw)
    except (TypeError, ValueError):
        raise WorkloadError(f"'timeout' must be a number, got {raw!r}") from None
    # Never wait past the request's own deadline: a flush that outlives
    # its socket would block a handler thread for nobody.
    timeout = min(timeout, request.remaining(default=timeout))
    drained = app.manager.flush(tenant_id, timeout=timeout)
    return HttpResponse(
        status=200 if drained else 504,
        document={"tenant": tenant_id, "flushed": drained},
    )


ROUTES = [
    Route("POST", "/tenants/{tenant_id}/batches", post_batch),
    Route("POST", "/tenants/{tenant_id}/flush", flush),
]
