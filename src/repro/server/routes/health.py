"""Health and status routes: process liveness, per-tenant, fleet."""

from __future__ import annotations

from repro.server.app import HttpRequest, HttpResponse, ReproServerApp
from repro.server.routing import Route


def healthz(app: ReproServerApp, request: HttpRequest) -> HttpResponse:
    """``GET /healthz`` -- is the process up and routing at all."""
    return HttpResponse(
        status=200,
        document={
            "status": "ok",
            "open_tenants": len(app.manager),
            "transport": app.metrics.to_dict().get("counters", {}),
        },
    )


def tenant_status(app: ReproServerApp, request: HttpRequest) -> HttpResponse:
    """``GET /tenants/{tenant_id}/status`` -- one tenant, in full."""
    return HttpResponse(
        status=200,
        document=app.manager.tenant_status(request.params["tenant_id"]),
    )


def fleet_status(app: ReproServerApp, request: HttpRequest) -> HttpResponse:
    """``GET /fleet/status`` -- every tenant's vitals plus totals."""
    document = dict(app.manager.fleet_status())
    supervisor = getattr(app, "supervisor", None)
    if supervisor is not None:
        document["supervisor"] = supervisor.status()
    return HttpResponse(status=200, document=document)


ROUTES = [
    Route("GET", "/healthz", healthz),
    Route("GET", "/fleet/status", fleet_status),
    Route("GET", "/tenants/{tenant_id}/status", tenant_status),
]
