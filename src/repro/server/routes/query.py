"""Profile query routes: served UCCs and dead letters."""

from __future__ import annotations

from repro.errors import WorkloadError
from repro.server.app import HttpRequest, HttpResponse, ReproServerApp
from repro.server.routing import Route


def get_uccs(app: ReproServerApp, request: HttpRequest) -> HttpResponse:
    """``GET /tenants/{tenant_id}/uccs`` -- the served MUCS/MNUCS.

    Query params: ``kind=mucs&kind=mnucs`` (default both),
    ``max_arity=N`` keeps combinations of at most N columns,
    ``contains=a,b`` keeps combinations including every named column.
    """
    tenant_id = request.params["tenant_id"]
    kinds = request.query_all("kind") or ["mucs", "mnucs"]
    raw_arity = request.query_first("max_arity")
    max_arity: int | None = None
    if raw_arity is not None:
        try:
            max_arity = int(raw_arity)
        except ValueError:
            raise WorkloadError(
                f"'max_arity' must be an integer, got {raw_arity!r}"
            ) from None
        if max_arity < 1:
            raise WorkloadError(f"'max_arity' must be >= 1, got {max_arity}")
    document = app.manager.query_profile(
        tenant_id,
        kinds=kinds,
        max_arity=max_arity,
        contains=request.query_all("contains"),
    )
    return HttpResponse(status=200, document=document)


def get_dead_letters(app: ReproServerApp, request: HttpRequest) -> HttpResponse:
    """``GET /tenants/{tenant_id}/dead-letters`` -- quarantined batches."""
    return HttpResponse(
        status=200,
        document=app.manager.dead_letters(request.params["tenant_id"]),
    )


ROUTES = [
    Route("GET", "/tenants/{tenant_id}/uccs", get_uccs),
    Route("GET", "/tenants/{tenant_id}/dead-letters", get_dead_letters),
]
