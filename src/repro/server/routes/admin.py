"""Tenant lifecycle routes: create, list, drop."""

from __future__ import annotations

from repro.errors import TenantError
from repro.server.app import HttpRequest, HttpResponse, ReproServerApp
from repro.server.routing import Route
from repro.tenants.config import TenantConfig, validate_tenant_id


def create_tenant(app: ReproServerApp, request: HttpRequest) -> HttpResponse:
    """``POST /tenants`` -- register and start a tenant.

    Body: ``{"tenant_id": ..., "config": {...}, "rows": [[...], ...]}``.
    Server-level defaults (``--parallelism`` etc. from the CLI) are
    merged *under* the request's config: the request wins.
    """
    body = request.json()
    tenant_id = body.get("tenant_id")
    if not isinstance(tenant_id, str):
        raise TenantError("'tenant_id' (string) is required")
    validate_tenant_id(tenant_id)
    raw_config = body.get("config")
    if not isinstance(raw_config, dict):
        raise TenantError("'config' (object with 'columns') is required")
    merged = dict(app.default_config)
    merged.update(raw_config)
    config = TenantConfig.from_dict(merged)
    rows = body.get("rows", [])
    if not isinstance(rows, list):
        raise TenantError("'rows' must be a list of rows")
    tenant = app.manager.create(
        tenant_id, config, initial_rows=[tuple(row) for row in rows]
    )
    return HttpResponse(
        status=201,
        document={
            "tenant": tenant.tenant_id,
            "columns": list(config.columns),
            "insert_only": config.insert_only,
            "live_rows": len(tenant.service.profiler.relation),
            "health": tenant.service.health.state.value,
        },
    )


def list_tenants(app: ReproServerApp, request: HttpRequest) -> HttpResponse:
    manager = app.manager
    return HttpResponse(
        status=200,
        document={
            "tenants": [
                {"tenant": tenant_id, "open": manager.is_open(tenant_id)}
                for tenant_id in manager.tenant_ids()
            ]
        },
    )


def drop_tenant(app: ReproServerApp, request: HttpRequest) -> HttpResponse:
    """``DELETE /tenants/{tenant_id}`` -- unregister; state is parked.

    A live tenant is drained first; queued batches that cannot drain
    within the request's deadline fail the drop with ``504
    flush_timeout`` -- acknowledging the DELETE would silently discard
    admitted work. ``?force=true`` skips the drain explicitly.
    """
    tenant_id = request.params["tenant_id"]
    force = request.query_first("force", "false") in ("true", "1", "yes")
    parked = app.manager.drop(
        tenant_id, force=force, drain_timeout=request.remaining()
    )
    return HttpResponse(
        status=200,
        document={"tenant": tenant_id, "dropped": True, "parked": parked},
    )


def recover_tenant(app: ReproServerApp, request: HttpRequest) -> HttpResponse:
    """``POST /tenants/{tenant_id}/recover`` -- operator recovery.

    Un-parks a parked tenant (clearing its reason record) and/or
    restarts it through the snapshot+replay recovery path. The one
    manual lever the runbook needs once the supervisor has given up.
    """
    tenant_id = request.params["tenant_id"]
    tenant = app.manager.recover(tenant_id)
    return HttpResponse(
        status=200,
        document={
            "tenant": tenant_id,
            "recovered": True,
            "health": tenant.service.health.state.value,
            "live_rows": len(tenant.service.profiler.relation),
        },
    )


ROUTES = [
    Route("POST", "/tenants", create_tenant),
    Route("GET", "/tenants", list_tenants),
    Route("DELETE", "/tenants/{tenant_id}", drop_tenant),
    Route("POST", "/tenants/{tenant_id}/recover", recover_tenant),
]
