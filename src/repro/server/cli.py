"""``repro-server``: serve a fleet of tenants over HTTP.

Boot sequence: open every tenant already registered under the root
directory (each recovers from its own snapshot+changelog), bind the
stdlib HTTP server, serve until interrupted, then drain and close every
tenant so the last served state is durably sealed.

Operator-level defaults (``--parallelism``, ``--cache-budget-mb``,
``--algorithm``, ``--no-fsync``) apply to tenants *created over HTTP
while this server runs*; an explicit value in the create request's
config always wins.
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Sequence

from repro.server.app import ReproServerApp
from repro.server.http import serve_in_thread
from repro.tenants.manager import TenantManager


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-server",
        description="Serve many UCC-profiling tenants over HTTP/JSON.",
    )
    parser.add_argument(
        "root_dir",
        help="fleet root directory (registry.json + tenants/ live here)",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=8399, help="bind port (0 = ephemeral)"
    )
    parser.add_argument(
        "--parallelism",
        type=int,
        default=None,
        help="default worker parallelism for tenants created over HTTP",
    )
    parser.add_argument(
        "--cache-budget-mb",
        type=int,
        default=None,
        help="default PLI-cache budget (MiB) for tenants created over HTTP",
    )
    parser.add_argument(
        "--algorithm",
        default=None,
        help="default discovery algorithm for tenants created over HTTP",
    )
    parser.add_argument(
        "--no-fsync",
        action="store_true",
        help="default new tenants to fsync=false (benchmarks only)",
    )
    parser.add_argument(
        "--access-log",
        action="store_true",
        help="log one line per request to stderr",
    )
    return parser


def default_config_from_args(args: argparse.Namespace) -> dict[str, Any]:
    defaults: dict[str, Any] = {}
    if args.parallelism is not None:
        defaults["parallelism"] = args.parallelism
    if args.cache_budget_mb is not None:
        defaults["cache_budget_bytes"] = args.cache_budget_mb * 1024 * 1024
    if args.algorithm is not None:
        defaults["algorithm"] = args.algorithm
    if args.no_fsync:
        defaults["fsync"] = False
    return defaults


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    manager = TenantManager(args.root_dir)
    opened = manager.open_all()
    app = ReproServerApp(manager, default_config=default_config_from_args(args))
    if args.access_log:
        app.access_log = lambda line: print(line, file=sys.stderr)  # type: ignore[attr-defined]
    handle = serve_in_thread(app, host=args.host, port=args.port)
    print(
        f"repro-server listening on {handle.url} "
        f"({len(opened)} tenant(s) open) -- Ctrl-C to stop",
        file=sys.stderr,
    )
    try:
        handle.thread.join()
    except KeyboardInterrupt:
        print("shutting down: draining tenants ...", file=sys.stderr)
    finally:
        handle.close()
        manager.close_all()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
