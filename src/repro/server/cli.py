"""``repro-server``: serve a fleet of tenants over HTTP.

Boot sequence: reconcile the registry against the on-disk state dirs
(divergence parks, never hides), open every registered tenant (each
recovers from its own snapshot+changelog), start the fleet supervisor,
bind the stdlib HTTP server, serve until interrupted -- then shut down
*gracefully*: stop accepting connections first, drain every tenant's
queue against a deadline (reporting any tenant that would not drain),
and seal each with a final snapshot.

Operator-level defaults (``--parallelism``, ``--execution-mode``,
``--cache-budget-mb``, ``--algorithm``, ``--no-fsync``) apply to
tenants *created over HTTP
while this server runs*; an explicit value in the create request's
config always wins.
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Sequence

from repro.server.app import ReproServerApp
from repro.server.http import DEFAULT_REQUEST_TIMEOUT, serve_in_thread
from repro.tenants.manager import TenantManager
from repro.tenants.supervisor import FleetSupervisor, SupervisorConfig


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-server",
        description="Serve many UCC-profiling tenants over HTTP/JSON.",
    )
    parser.add_argument(
        "root_dir",
        help="fleet root directory (registry.json + tenants/ live here)",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=8399, help="bind port (0 = ephemeral)"
    )
    parser.add_argument(
        "--parallelism",
        type=int,
        default=None,
        help="default worker parallelism for tenants created over HTTP",
    )
    parser.add_argument(
        "--execution-mode",
        choices=("thread", "process"),
        default=None,
        help="default fan-out shape for tenants created over HTTP "
        "('process' forks workers per batch to escape the GIL)",
    )
    parser.add_argument(
        "--cache-budget-mb",
        type=int,
        default=None,
        help="default PLI-cache budget (MiB) for tenants created over HTTP",
    )
    parser.add_argument(
        "--algorithm",
        default=None,
        help="default discovery algorithm for tenants created over HTTP",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        help="default shard count for tenants created over HTTP "
        "(K shard-local profilers with an exact cross-shard merge)",
    )
    parser.add_argument(
        "--shard-insert-only",
        action="store_true",
        help="default new tenants to the insert-only sharded fast path "
        "(implies they must be created insert_only)",
    )
    parser.add_argument(
        "--no-fsync",
        action="store_true",
        help="default new tenants to fsync=false (benchmarks only)",
    )
    parser.add_argument(
        "--access-log",
        action="store_true",
        help="log one line per request to stderr",
    )
    parser.add_argument(
        "--request-timeout",
        type=float,
        default=DEFAULT_REQUEST_TIMEOUT,
        help="per-connection socket timeout / per-request deadline "
        "in seconds (slow-loris defense)",
    )
    parser.add_argument(
        "--drain-timeout",
        type=float,
        default=30.0,
        help="seconds to wait for queues to drain at shutdown",
    )
    parser.add_argument(
        "--no-supervisor",
        action="store_true",
        help="disable automatic tenant recovery (debugging only)",
    )
    parser.add_argument(
        "--restart-budget",
        type=int,
        default=5,
        help="supervisor: max automatic restarts per tenant per window "
        "before parking it",
    )
    parser.add_argument(
        "--budget-window",
        type=float,
        default=300.0,
        help="supervisor: rolling restart-budget window in seconds",
    )
    return parser


def default_config_from_args(args: argparse.Namespace) -> dict[str, Any]:
    defaults: dict[str, Any] = {}
    if args.parallelism is not None:
        defaults["parallelism"] = args.parallelism
    if args.execution_mode is not None:
        defaults["execution_mode"] = args.execution_mode
    if args.cache_budget_mb is not None:
        defaults["cache_budget_bytes"] = args.cache_budget_mb * 1024 * 1024
    if args.algorithm is not None:
        defaults["algorithm"] = args.algorithm
    if args.shards is not None:
        defaults["shards"] = args.shards
    if args.shard_insert_only:
        defaults["shard_insert_only"] = True
    if args.no_fsync:
        defaults["fsync"] = False
    return defaults


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    manager = TenantManager(args.root_dir)
    opened = manager.open_all()
    parked = manager.parked_ids()
    if parked:
        print(
            f"warning: {len(parked)} parked tenant(s) not opened: "
            + ", ".join(parked)
            + " (POST /tenants/<id>/recover to revive)",
            file=sys.stderr,
        )
    app = ReproServerApp(manager, default_config=default_config_from_args(args))
    if args.access_log:
        app.access_log = lambda line: print(line, file=sys.stderr)  # type: ignore[attr-defined]
    supervisor: FleetSupervisor | None = None
    if not args.no_supervisor:
        supervisor = FleetSupervisor(
            manager,
            config=SupervisorConfig(
                max_restarts=args.restart_budget,
                budget_window_seconds=args.budget_window,
            ),
        ).start()
        app.supervisor = supervisor
    handle = serve_in_thread(
        app,
        host=args.host,
        port=args.port,
        request_timeout=args.request_timeout,
    )
    print(
        f"repro-server listening on {handle.url} "
        f"({len(opened)} tenant(s) open, supervisor "
        f"{'off' if supervisor is None else 'on'}) -- Ctrl-C to stop",
        file=sys.stderr,
    )
    try:
        handle.thread.join()
    except KeyboardInterrupt:
        print("shutting down ...", file=sys.stderr)
    finally:
        # Graceful drain: stop accepting first, then the supervisor
        # (no restarts racing shutdown), then drain + seal each tenant.
        handle.close()
        if supervisor is not None:
            supervisor.stop()
        drained = manager.flush_all(timeout=args.drain_timeout)
        if not drained:
            print(
                "warning: some tenant queues did not drain before the "
                "deadline; undrained batches were not applied",
                file=sys.stderr,
            )
        manager.close_all()
        for failure in manager.drain_failures:
            print(f"warning: {failure}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
