"""HTTP/JSON front-end over the multi-tenant profiling fleet.

Layering, bottom to top:

* :mod:`repro.server.routing` -- a tiny method+path router.
* :mod:`repro.server.app` -- :class:`ReproServerApp`, the
  transport-independent request handler with centralized typed-error ->
  HTTP-status mapping (tests drive this in-process).
* :mod:`repro.server.routes` -- the endpoint handlers, split by concern
  (admin / health / ingest / query / downloads).
* :mod:`repro.server.http` -- the stdlib ``ThreadingHTTPServer``
  adapter and ``serve_in_thread`` embedding helper.
* :mod:`repro.server.cli` -- the ``repro-server`` entry point.
"""

from repro.server.app import HttpRequest, HttpResponse, ReproServerApp
from repro.server.http import ServerHandle, make_server, serve_in_thread
from repro.server.routing import Route, Router

__all__ = [
    "HttpRequest",
    "HttpResponse",
    "ReproServerApp",
    "Route",
    "Router",
    "ServerHandle",
    "make_server",
    "serve_in_thread",
]
