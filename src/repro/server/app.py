"""The transport-independent core of the HTTP/JSON front-end.

:class:`ReproServerApp` maps an :class:`HttpRequest` to an
:class:`HttpResponse` with no socket in sight: the stdlib HTTP adapter
(:mod:`repro.server.http`) and the tests both drive this object
directly, so the whole API surface is exercisable in-process.

Error handling is centralized here. Every typed domain error maps to
one HTTP status and a stable machine-readable ``code`` inside a
``{"error": {...}}`` envelope -- notably
:class:`~repro.errors.QueueFullError` becomes a ``429 queue_full``
carrying the tenant's admission limits and a ``Retry-After`` hint, the
structured backpressure contract clients program against.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Any, Mapping
from urllib.parse import parse_qs, urlsplit

from repro.errors import (
    FlushTimeoutError,
    QueueFullError,
    ReproError,
    ServiceHealthError,
    TenantError,
    TenantExistsError,
    TenantModeError,
    TenantParkedError,
    TenantRecoveringError,
    UnknownTenantError,
    WorkloadError,
)
from repro.server.routing import NoMatch, Router
from repro.service.metrics import MetricsRegistry
from repro.tenants.manager import TenantManager

JSON_CONTENT_TYPE = "application/json"


@dataclass(frozen=True)
class HttpRequest:
    """One parsed request, transport-agnostic."""

    method: str
    path: str
    params: dict[str, str] = field(default_factory=dict)
    query: dict[str, list[str]] = field(default_factory=dict)
    body: bytes = b""
    # Absolute monotonic deadline for this request (None = untimed, the
    # in-process test path). Handlers that block (flush) clamp their
    # waits to ``remaining()`` so a request cannot outlive its socket.
    deadline: float | None = None

    @classmethod
    def from_target(
        cls,
        method: str,
        target: str,
        body: bytes = b"",
        deadline: float | None = None,
    ) -> "HttpRequest":
        """Build a request from a raw request target (path + query)."""
        split = urlsplit(target)
        return cls(
            method=method.upper(),
            path=split.path or "/",
            query=parse_qs(split.query),
            body=body,
            deadline=deadline,
        )

    def remaining(self, default: float = 30.0) -> float:
        """Seconds left before the deadline (``default`` when untimed)."""
        if self.deadline is None:
            return default
        return max(0.0, self.deadline - time.monotonic())

    def json(self) -> dict[str, Any]:
        """The body as a JSON object; ``{}`` for an empty body."""
        if not self.body:
            return {}
        try:
            document = json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise WorkloadError(f"request body is not valid JSON: {exc}") from exc
        if not isinstance(document, dict):
            raise WorkloadError(
                f"request body must be a JSON object, got {type(document).__name__}"
            )
        return document

    def query_first(self, name: str, default: str | None = None) -> str | None:
        values = self.query.get(name)
        return values[0] if values else default

    def query_all(self, name: str) -> list[str]:
        """All values of a repeatable query param, comma-splitting each."""
        values: list[str] = []
        for raw in self.query.get(name, []):
            values.extend(part for part in raw.split(",") if part)
        return values


@dataclass(frozen=True)
class HttpResponse:
    """Status + JSON document (+ extra headers) to send back.

    A non-JSON payload (the CSV download route) sets ``raw`` and a
    matching ``content_type``; ``document`` is ignored then.
    """

    status: int
    document: Mapping[str, Any] = field(default_factory=dict)
    headers: tuple[tuple[str, str], ...] = ()
    raw: bytes | None = None
    content_type: str = JSON_CONTENT_TYPE

    def encode(self) -> bytes:
        if self.raw is not None:
            return self.raw
        return (json.dumps(self.document, sort_keys=True) + "\n").encode("utf-8")


def error_response(
    status: int,
    code: str,
    message: str,
    headers: tuple[tuple[str, str], ...] = (),
    **extra: Any,
) -> HttpResponse:
    error: dict[str, Any] = {"code": code, "message": message}
    error.update(extra)
    return HttpResponse(status=status, document={"error": error}, headers=headers)


class ReproServerApp:
    """Routes requests against a :class:`TenantManager`."""

    def __init__(
        self,
        manager: TenantManager,
        default_config: Mapping[str, Any] | None = None,
    ) -> None:
        from repro.server.routes import all_routes

        self.manager = manager
        # Operator-level defaults (parallelism, cache budget, ...) merged
        # under each tenant-create request body.
        self.default_config: dict[str, Any] = dict(default_config or {})
        self.router = Router(all_routes())
        # Transport-level counters (timeouts, resets, failed responses)
        # incremented by the HTTP adapter, surfaced in /healthz. Their
        # own registry: they belong to the server, not any tenant.
        self.metrics = MetricsRegistry(namespace="server")
        # The CLI attaches a FleetSupervisor here; /fleet/status
        # surfaces its event log when present.
        self.supervisor: Any = None

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def handle(self, request: HttpRequest) -> HttpResponse:
        match = self.router.match(request.method, request.path)
        if isinstance(match, NoMatch):
            if match.method_mismatch:
                return error_response(
                    405,
                    "method_not_allowed",
                    f"{request.method} is not allowed on {request.path}",
                    headers=(("Allow", ", ".join(match.allowed)),),
                    allowed=list(match.allowed),
                )
            return error_response(
                404, "not_found", f"no route for {request.path}"
            )
        request.params.update(match.params)
        try:
            return match.route.handler(self, request)
        except ReproError as exc:
            return self._error_to_response(exc)

    def _error_to_response(self, exc: ReproError) -> HttpResponse:
        if isinstance(exc, QueueFullError):
            return error_response(
                429,
                "queue_full",
                str(exc),
                headers=(("Retry-After", "1"),),
                tenant=exc.tenant_id,
                pending_batches=exc.pending_batches,
                pending_bytes=exc.pending_bytes,
                max_pending_batches=exc.max_pending_batches,
                max_pending_bytes=exc.max_pending_bytes,
            )
        if isinstance(exc, UnknownTenantError):
            return error_response(
                404, "unknown_tenant", str(exc), tenant=exc.tenant_id
            )
        if isinstance(exc, TenantExistsError):
            return error_response(
                409, "tenant_exists", str(exc), tenant=exc.tenant_id
            )
        if isinstance(exc, TenantModeError):
            return error_response(409, "insert_only", str(exc))
        if isinstance(exc, FlushTimeoutError):
            return error_response(
                504,
                "flush_timeout",
                str(exc),
                tenant=exc.tenant_id,
                pending_batches=exc.pending_batches,
            )
        if isinstance(exc, TenantParkedError):
            return error_response(
                503,
                "tenant_parked",
                str(exc),
                tenant=exc.tenant_id,
                reason=exc.reason,
            )
        if isinstance(exc, TenantRecoveringError):
            return error_response(
                503,
                "tenant_recovering",
                str(exc),
                headers=(("Retry-After", f"{max(1, round(exc.retry_after))}"),),
                tenant=exc.tenant_id,
            )
        if isinstance(exc, ServiceHealthError):
            return error_response(503, "not_writable", str(exc))
        if isinstance(exc, (WorkloadError, TenantError)):
            return error_response(400, "bad_request", str(exc))
        return error_response(500, "internal", str(exc))
