"""The stdlib HTTP adapter: sockets in, :class:`HttpRequest` out.

One thin layer over :class:`http.server.ThreadingHTTPServer` -- no
third-party web framework, per the repo's stdlib-only rule. Each
connection is handled on its own daemon thread; handler threads only
*enqueue* batches (admission control runs on the request thread), so
the per-tenant single-writer invariant is untouched by HTTP
concurrency.

``serve_in_thread`` is the embedding/test entry point: bind to an
ephemeral port, drive the API over real sockets, shut down cleanly.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable

from repro.server.app import HttpRequest, HttpResponse, ReproServerApp, error_response

# Refuse request bodies past this size before reading them: a fat-finger
# upload must not balloon the process (admission control starts at the
# socket, not the queue).
MAX_BODY_BYTES = 32 * 1024 * 1024


def _make_handler(app: ReproServerApp) -> type[BaseHTTPRequestHandler]:
    class ReproRequestHandler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        server_version = "repro-server/1"

        # ------------------------------------------------------------------
        def _read_body(self) -> bytes | None:
            raw_length = self.headers.get("Content-Length")
            if raw_length is None:
                return b""
            try:
                length = int(raw_length)
            except ValueError:
                self._send(error_response(400, "bad_request", "bad Content-Length"))
                return None
            if length < 0 or length > MAX_BODY_BYTES:
                self._send(
                    error_response(
                        413,
                        "body_too_large",
                        f"request body of {length} bytes exceeds "
                        f"{MAX_BODY_BYTES} byte limit",
                    )
                )
                return None
            return self.rfile.read(length)

        def _dispatch(self) -> None:
            body = self._read_body()
            if body is None:
                return
            request = HttpRequest.from_target(self.command, self.path, body=body)
            try:
                response = app.handle(request)
            except Exception as exc:  # a handler bug must not kill the thread
                response = error_response(500, "internal", str(exc))
            self._send(response)

        def _send(self, response: HttpResponse) -> None:
            payload = response.encode()
            self.send_response(response.status)
            self.send_header("Content-Type", response.content_type)
            self.send_header("Content-Length", str(len(payload)))
            for name, value in response.headers:
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(payload)

        # BaseHTTPRequestHandler dispatches on do_<METHOD>.
        def do_GET(self) -> None:
            self._dispatch()

        def do_POST(self) -> None:
            self._dispatch()

        def do_DELETE(self) -> None:
            self._dispatch()

        def log_message(self, format: str, *args: object) -> None:
            # Quiet by default; the CLI installs a logger if asked.
            if app_log is not None:
                app_log(f"{self.address_string()} {format % args}")

    app_log: Callable[[str], None] | None = getattr(app, "access_log", None)
    return ReproRequestHandler


class ReproHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True


def make_server(
    app: ReproServerApp, host: str = "127.0.0.1", port: int = 0
) -> ReproHTTPServer:
    """Bind (port 0 = ephemeral) without starting the serve loop."""
    return ReproHTTPServer((host, port), _make_handler(app))


class ServerHandle:
    """A running server plus the thread driving its serve loop."""

    def __init__(self, server: ReproHTTPServer, thread: threading.Thread) -> None:
        self.server = server
        self.thread = thread

    @property
    def address(self) -> tuple[str, int]:
        host, port = self.server.server_address[:2]
        return str(host), int(port)

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def close(self) -> None:
        self.server.shutdown()
        self.server.server_close()
        self.thread.join(timeout=10)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def serve_in_thread(
    app: ReproServerApp, host: str = "127.0.0.1", port: int = 0
) -> ServerHandle:
    """Start serving on a background thread; returns a closable handle."""
    server = make_server(app, host=host, port=port)
    thread = threading.Thread(
        target=server.serve_forever,
        kwargs={"poll_interval": 0.1},
        name="repro-http-server",
        daemon=True,
    )
    thread.start()
    return ServerHandle(server, thread)
