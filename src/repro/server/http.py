"""The stdlib HTTP adapter: sockets in, :class:`HttpRequest` out.

One thin layer over :class:`http.server.ThreadingHTTPServer` -- no
third-party web framework, per the repo's stdlib-only rule. Each
connection is handled on its own daemon thread; handler threads only
*enqueue* batches (admission control runs on the request thread), so
the per-tenant single-writer invariant is untouched by HTTP
concurrency.

Robustness contract (the slow-loris/fat-finger defenses):

* every connection carries a **socket read timeout** -- a client that
  stalls mid-request-line, mid-headers or mid-body times out and is
  dropped instead of pinning a handler thread forever;
* request-line/header reads are **size-capped** (431 past the budget)
  and bodies are read in bounded chunks against ``Content-Length``
  (413 past :data:`MAX_BODY_BYTES`, checked *before* reading);
* each request gets a **deadline** (``HttpRequest.deadline``) so
  long-blocking handlers (flush) can clamp their own waits;
* transport failures (timeouts, resets, short bodies) never produce a
  half response -- the connection is closed and counted on the app's
  transport metrics, visible in ``/healthz``.

The body-read and response-write paths are fault *sites*
(``http.body.read`` / ``http.response.write``): the chaos sweep injects
connection resets and stalls at the network layer exactly like it
injects torn writes at the filesystem layer. A ``CRASH`` fault here
models a torn *connection* (the request dies, never the process).

``serve_in_thread`` is the embedding/test entry point: bind to an
ephemeral port, drive the API over real sockets, shut down cleanly.
"""

from __future__ import annotations

import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable

from repro.faults import fsops
from repro.faults.injector import CrashPoint
from repro.server.app import HttpRequest, HttpResponse, ReproServerApp, error_response

# Refuse request bodies past this size before reading them: a fat-finger
# upload must not balloon the process (admission control starts at the
# socket, not the queue).
MAX_BODY_BYTES = 32 * 1024 * 1024
# Total budget for the request line plus all headers. The stdlib already
# caps single lines (64 KiB) and header count (100); this enforces the
# documented total so a header-stuffing client gets a typed 431.
MAX_HEADER_BYTES = 16 * 1024
# Bodies are consumed in bounded slices so a stalled sender hits the
# socket timeout within one chunk, not one body.
_BODY_CHUNK_BYTES = 64 * 1024
# Default per-connection socket timeout / per-request deadline.
DEFAULT_REQUEST_TIMEOUT = 30.0

SITE_BODY_READ = fsops.register_site(
    "http.body.read", "read one chunk of a request body off the socket"
)
SITE_RESPONSE_WRITE = fsops.register_site(
    "http.response.write", "write a response back to the client socket"
)


def _make_handler(
    app: ReproServerApp, request_timeout: float
) -> type[BaseHTTPRequestHandler]:
    class ReproRequestHandler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        server_version = "repro-server/1"
        # StreamRequestHandler.setup() applies this to the connection;
        # BaseHTTPRequestHandler.handle_one_request treats the timeout
        # as a fatal connection error. This is the slow-loris defense
        # for the request line and headers.
        timeout = request_timeout

        # ------------------------------------------------------------------
        def parse_request(self) -> bool:
            if not super().parse_request():
                return False
            header_bytes = len(self.raw_requestline) + sum(
                len(name) + len(value) for name, value in self.headers.items()
            )
            if header_bytes > MAX_HEADER_BYTES:
                self._send(
                    error_response(
                        431,
                        "headers_too_large",
                        f"request line + headers of {header_bytes} bytes "
                        f"exceed {MAX_HEADER_BYTES} byte limit",
                    )
                )
                self.close_connection = True
                return False
            return True

        def _read_body(self) -> bytes | None:
            raw_length = self.headers.get("Content-Length")
            if raw_length is None:
                return b""
            try:
                length = int(raw_length)
            except ValueError:
                self._send(error_response(400, "bad_request", "bad Content-Length"))
                return None
            if length < 0 or length > MAX_BODY_BYTES:
                self._send(
                    error_response(
                        413,
                        "body_too_large",
                        f"request body of {length} bytes exceeds "
                        f"{MAX_BODY_BYTES} byte limit",
                    )
                )
                return None
            chunks: list[bytes] = []
            remaining = length
            while remaining > 0:
                fsops.check(SITE_BODY_READ)
                chunk = self.rfile.read(min(remaining, _BODY_CHUNK_BYTES))
                if not chunk:
                    # Short body: the client promised Content-Length
                    # bytes and hung up early. Never dispatch a
                    # truncated payload as if it were the request.
                    raise ConnectionResetError(
                        f"client closed with {remaining} body byte(s) unread"
                    )
                chunks.append(chunk)
                remaining -= len(chunk)
            return b"".join(chunks)

        def _count(self, name: str) -> None:
            metrics = getattr(app, "metrics", None)
            if metrics is not None:
                metrics.counter(name).inc()

        def _drop_connection(self, counter: str) -> None:
            self._count(counter)
            self.close_connection = True

        def _dispatch(self) -> None:
            deadline = time.monotonic() + request_timeout
            try:
                body = self._read_body()
            except TimeoutError:
                # A stalled sender: no response can be written safely
                # (the request framing is unknown), so drop the line.
                self._drop_connection("http_timeouts_total")
                return
            except (ConnectionError, CrashPoint):
                self._drop_connection("http_resets_total")
                return
            except OSError:
                self._drop_connection("http_resets_total")
                return
            if body is None:
                return
            request = HttpRequest.from_target(
                self.command, self.path, body=body, deadline=deadline
            )
            try:
                response = app.handle(request)
            except Exception as exc:  # a handler bug must not kill the thread
                response = error_response(500, "internal", str(exc))
            self._send(response)

        def _send(self, response: HttpResponse) -> None:
            payload = response.encode()
            try:
                fsops.check(SITE_RESPONSE_WRITE)
                self.send_response(response.status)
                self.send_header("Content-Type", response.content_type)
                self.send_header("Content-Length", str(len(payload)))
                for name, value in response.headers:
                    self.send_header(name, value)
                self.end_headers()
                self.wfile.write(payload)
            except (ConnectionError, TimeoutError, CrashPoint, OSError):
                # The client vanished mid-response; the response may be
                # torn on the wire but server state is already applied
                # -- tokens make the retry idempotent.
                self._drop_connection("http_responses_failed_total")

        # BaseHTTPRequestHandler dispatches on do_<METHOD>.
        def do_GET(self) -> None:
            self._dispatch()

        def do_POST(self) -> None:
            self._dispatch()

        def do_DELETE(self) -> None:
            self._dispatch()

        def log_message(self, format: str, *args: object) -> None:
            # Quiet by default; the CLI installs a logger if asked.
            if app_log is not None:
                app_log(f"{self.address_string()} {format % args}")

    app_log: Callable[[str], None] | None = getattr(app, "access_log", None)
    return ReproRequestHandler


class ReproHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True


def make_server(
    app: ReproServerApp,
    host: str = "127.0.0.1",
    port: int = 0,
    request_timeout: float = DEFAULT_REQUEST_TIMEOUT,
) -> ReproHTTPServer:
    """Bind (port 0 = ephemeral) without starting the serve loop."""
    return ReproHTTPServer((host, port), _make_handler(app, request_timeout))


class ServerHandle:
    """A running server plus the thread driving its serve loop."""

    def __init__(self, server: ReproHTTPServer, thread: threading.Thread) -> None:
        self.server = server
        self.thread = thread

    @property
    def address(self) -> tuple[str, int]:
        host, port = self.server.server_address[:2]
        return str(host), int(port)

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def close(self) -> None:
        self.server.shutdown()
        self.server.server_close()
        self.thread.join(timeout=10)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def serve_in_thread(
    app: ReproServerApp,
    host: str = "127.0.0.1",
    port: int = 0,
    request_timeout: float = DEFAULT_REQUEST_TIMEOUT,
) -> ServerHandle:
    """Start serving on a background thread; returns a closable handle."""
    server = make_server(
        app, host=host, port=port, request_timeout=request_timeout
    )
    thread = threading.Thread(
        target=server.serve_forever,
        kwargs={"poll_interval": 0.1},
        name="repro-http-server",
        daemon=True,
    )
    thread.start()
    return ServerHandle(server, thread)
