"""A tiny method+path router for the stdlib HTTP front-end.

No framework dependency: a :class:`Route` binds an HTTP method and a
path pattern like ``/tenants/{tenant_id}/batches`` to a handler
callable, and the :class:`Router` matches incoming ``(method, path)``
pairs, extracting ``{placeholder}`` segments as string parameters.

Matching distinguishes "no such path" (404) from "path exists, method
does not" (405 with an ``Allow`` set), which keeps error responses
honest for clients probing the API.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.server.app import HttpRequest, HttpResponse, ReproServerApp

Handler = Callable[["ReproServerApp", "HttpRequest"], "HttpResponse"]

_PLACEHOLDER = re.compile(r"\{([a-zA-Z_][a-zA-Z0-9_]*)\}")


def _compile(pattern: str) -> re.Pattern[str]:
    """``/tenants/{tenant_id}/uccs`` -> anchored regex with named groups."""
    if not pattern.startswith("/"):
        raise ValueError(f"route pattern must start with '/': {pattern!r}")
    parts = []
    index = 0
    for match in _PLACEHOLDER.finditer(pattern):
        parts.append(re.escape(pattern[index : match.start()]))
        parts.append(f"(?P<{match.group(1)}>[^/]+)")
        index = match.end()
    parts.append(re.escape(pattern[index:]))
    return re.compile("^" + "".join(parts) + "$")


@dataclass(frozen=True)
class Route:
    """One (method, pattern) -> handler binding."""

    method: str
    pattern: str
    handler: Handler

    def __post_init__(self) -> None:
        object.__setattr__(self, "_regex", _compile(self.pattern))

    @property
    def regex(self) -> re.Pattern[str]:
        return self._regex  # type: ignore[attr-defined,no-any-return]


@dataclass(frozen=True)
class Match:
    """A resolved route plus the extracted path parameters."""

    route: Route
    params: dict[str, str]


@dataclass(frozen=True)
class NoMatch:
    """Nothing matched; ``allowed`` is non-empty for a 405."""

    allowed: tuple[str, ...] = ()

    @property
    def method_mismatch(self) -> bool:
        return bool(self.allowed)


class Router:
    """Ordered route table with method-aware matching."""

    def __init__(self, routes: list[Route] | None = None) -> None:
        self._routes: list[Route] = []
        for route in routes or []:
            self.add(route)

    def add(self, route: Route) -> None:
        self._routes.append(route)

    def extend(self, routes: list[Route]) -> None:
        for route in routes:
            self.add(route)

    @property
    def routes(self) -> tuple[Route, ...]:
        return tuple(self._routes)

    def match(self, method: str, path: str) -> Match | NoMatch:
        allowed: list[str] = []
        for route in self._routes:
            found = route.regex.match(path)
            if found is None:
                continue
            if route.method != method:
                allowed.append(route.method)
                continue
            return Match(route=route, params=dict(found.groupdict()))
        return NoMatch(allowed=tuple(sorted(set(allowed))))
