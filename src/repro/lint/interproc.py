"""Whole-program concurrency facts shared by rules R7-R9.

The first six lint rules are intraprocedural: each looks at one module
at a time. The concurrency gate needs more -- a deadlock is a property
of *pairs* of call paths, and a race is a property of *all* call sites
of a method -- so this module builds a small whole-program index over
the parsed :class:`~repro.lint.findings.ModuleFile` set:

* a **class table** (:class:`ClassInfo`): every class, its attribute
  types (from ``__init__`` assignments, annotations and dataclass
  fields), which attributes are locks (``threading.Lock/RLock``,
  ``threading.Condition`` or the sanitizer factories
  ``make_lock``/``make_rlock``), and whether the class registers
  itself with the at-fork reset registry;
* a **function table** (:class:`FunctionInfo`): for every function and
  method, the locks it acquires lexically (``with`` statements), every
  call it makes and the lock set held at that call site, and every
  write to ``self.<attr>`` with the lock set held at the write;
* a **lock-order graph** (:meth:`ProgramIndex.lock_graph`): lexical
  acquired-while-holding edges, closed over the call graph by a
  may-acquire fixpoint, each edge carrying a witness call path.

Everything here is deliberately *under*-approximate: a receiver whose
type cannot be resolved contributes no calls and no edges. That keeps
the rules quiet on code the analysis does not understand; the runtime
sanitizer (:mod:`repro.sanitize`) covers the dynamic remainder.

Lock identity is ``ClassName.attr`` (e.g. ``Tenant.lock``). Aliases --
two attributes that hold the *same* lock object at runtime, like
``TenantWorker.lock`` which is handed ``Tenant.lock`` at construction
-- are folded together by the caller-supplied alias map before edges
are built.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.lint.findings import ModuleFile

# Constructor calls that create a lock attribute. ``Condition`` wraps a
# lock; a no-arg Condition owns a private one.
_LOCK_FACTORIES = {"Lock", "RLock", "make_lock", "make_rlock"}
_LOCK_ANNOTATIONS = {"Lock", "RLock"}

# Builtins whose return passes the element type through unchanged.
_PASSTHROUGH_CALLS = {"list", "sorted", "tuple", "reversed"}

_INIT_METHODS = ("__init__", "__post_init__")


def dotted(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _annotation_text(node: ast.AST | None) -> str | None:
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on our input
        return None


@dataclass(frozen=True)
class TypeRef:
    """A resolved static type: a class name plus a container element."""

    name: str | None = None  # simple class name, e.g. "Tenant"
    elem: str | None = None  # element class for containers of classes


_NOTHING = TypeRef()


def _parse_annotation(text: str | None) -> TypeRef:
    """Class/element names out of an annotation string.

    Handles the shapes this codebase actually writes: ``Tenant``,
    ``repro.tenants.manager.Tenant``, ``Tenant | None``,
    ``Optional[Tenant]``, ``dict[str, Tenant]``, ``list[Tenant]``,
    ``deque[BatchOutcome]``, ``Iterable[Tenant]``. Anything else
    resolves to nothing (under-approximation).
    """
    if not text:
        return _NOTHING
    text = text.strip().strip('"').strip("'")
    for splitter in ("|",):
        if splitter in text:
            parts = [p.strip() for p in text.split(splitter)]
            parts = [p for p in parts if p not in ("None", "")]
            if len(parts) != 1:
                return _NOTHING
            text = parts[0]
    if text.startswith("Optional[") and text.endswith("]"):
        text = text[len("Optional[") : -1].strip()
    if "[" in text and text.endswith("]"):
        head, _, inner = text.partition("[")
        inner = inner[:-1]
        head = head.split(".")[-1]
        args = [a.strip() for a in inner.split(",")]
        if head in ("dict", "Dict", "Mapping", "defaultdict", "OrderedDict"):
            elem = args[-1] if len(args) == 2 else None
        elif head in (
            "list", "List", "set", "Set", "frozenset", "tuple", "Tuple",
            "deque", "Deque", "Iterable", "Iterator", "Sequence",
        ):
            elem = args[0] if args else None
        else:
            return TypeRef(name=head)
        if elem:
            elem = elem.split(".")[-1].strip().strip("'\"")
            if elem.isidentifier():
                return TypeRef(elem=elem)
        return _NOTHING
    simple = text.split(".")[-1].strip().strip("'\"")
    if simple.isidentifier():
        return TypeRef(name=simple)
    return _NOTHING


@dataclass
class LockDecl:
    """One lock-shaped attribute of a class."""

    cls: str  # owning class simple name
    attr: str
    node: ast.AST
    reentrant: bool
    raw: bool  # built from bare threading.*, not the sanitizer factory

    @property
    def lock_id(self) -> str:
        return f"{self.cls}.{self.attr}"


@dataclass
class ClassInfo:
    """Statically known facts about one class definition."""

    name: str
    qualname: str  # "module.Class"
    module: ModuleFile
    node: ast.ClassDef
    bases: list[str] = field(default_factory=list)
    methods: dict[str, ast.FunctionDef] = field(default_factory=dict)
    attr_types: dict[str, TypeRef] = field(default_factory=dict)
    locks: dict[str, LockDecl] = field(default_factory=dict)
    condition_of: dict[str, str] = field(default_factory=dict)  # cond -> lock attr
    file_handle_attrs: dict[str, ast.AST] = field(default_factory=dict)
    registers_fork_owner: bool = False
    is_dataclass: bool = False

    def lock_id_for(self, attr: str) -> str | None:
        """Canonical lock id acquired by ``with self.<attr>:``."""
        if attr in self.locks:
            return self.locks[attr].lock_id
        wrapped = self.condition_of.get(attr)
        if wrapped is not None and wrapped in self.locks:
            return self.locks[wrapped].lock_id
        if wrapped is not None:
            return f"{self.name}.{wrapped}"
        return None


@dataclass(frozen=True)
class CallSite:
    """One resolved call with the lock set held at the call point."""

    callee: str  # function-table key
    held: frozenset[str]
    node: ast.AST
    caller: str  # function-table key of the enclosing function


@dataclass(frozen=True)
class AttrWrite:
    """One write to ``self.<attr>`` (assignment, del, or mutator call)."""

    attr: str
    kind: str  # "assign" | "del" | "call:<method>"
    held: frozenset[str]
    node: ast.AST
    nested: bool  # write lands on a field *of* the attr, not the slot


@dataclass
class FunctionInfo:
    """Lexical concurrency facts about one function or method."""

    key: str  # "Class.method" or "module:func"
    module: ModuleFile
    node: ast.FunctionDef | ast.AsyncFunctionDef
    cls: ClassInfo | None = None
    acquires: list[tuple[str, frozenset[str], ast.AST]] = field(
        default_factory=list
    )
    calls: list[CallSite] = field(default_factory=list)
    writes: list[AttrWrite] = field(default_factory=list)
    var_types: dict[str, TypeRef] = field(default_factory=dict)
    has_yield: bool = False


class ProgramIndex:
    """The whole-program concurrency index over a set of modules."""

    def __init__(self) -> None:
        self.classes: dict[str, ClassInfo] = {}  # simple name -> info
        self.functions: dict[str, FunctionInfo] = {}
        self._callers: dict[str, list[CallSite]] = {}
        # Module-level functions per module, for Name-call resolution.
        self._module_funcs: dict[str, set[str]] = {}
        # per-module import map: local name -> source module dotted path
        self._imports: dict[str, dict[str, str]] = {}
        self.generator_functions: set[str] = set()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, modules: list[ModuleFile]) -> "ProgramIndex":
        index = cls()
        for module in modules:
            index._collect_imports(module)
            index._collect_classes(module)
        for module in modules:
            index._collect_functions(module)
        for info in index.functions.values():
            for call in info.calls:
                index._callers.setdefault(call.callee, []).append(call)
        return index

    def callers_of(self, key: str) -> list[CallSite]:
        return self._callers.get(key, [])

    def _collect_imports(self, module: ModuleFile) -> None:
        imports: dict[str, str] = {}
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    imports[alias.asname or alias.name] = node.module
        self._imports[module.module] = imports

    def _collect_classes(self, module: ModuleFile) -> None:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            info = ClassInfo(
                name=node.name,
                qualname=f"{module.module}.{node.name}",
                module=module,
                node=node,
                bases=[b for b in (dotted(base) for base in node.bases) if b],
                is_dataclass=any(
                    (dotted(d) or "").split(".")[-1] == "dataclass"
                    for d in node.decorator_list
                ),
            )
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    info.methods[item.name] = item  # type: ignore[assignment]
                elif isinstance(item, ast.AnnAssign) and isinstance(
                    item.target, ast.Name
                ):
                    self._class_annassign(info, item)
            for init_name in _INIT_METHODS:
                init = info.methods.get(init_name)
                if init is not None:
                    self._scan_constructor(info, init)
            if any(
                isinstance(call, ast.Call)
                and (dotted(call.func) or "").split(".")[-1]
                == "register_fork_owner"
                for call in ast.walk(node)
                if isinstance(call, ast.Call)
            ):
                info.registers_fork_owner = True
            # First definition wins on (unlikely) simple-name collision;
            # test/fixture doubles must not shadow the real class.
            self.classes.setdefault(node.name, info)

    def _class_annassign(self, info: ClassInfo, item: ast.AnnAssign) -> None:
        """A class-body annotated field (dataclass or plain)."""
        attr = item.target.id  # type: ignore[union-attr]
        text = _annotation_text(item.annotation) or ""
        simple = text.split(".")[-1]
        if simple in _LOCK_ANNOTATIONS:
            info.locks[attr] = LockDecl(
                cls=info.name,
                attr=attr,
                node=item,
                reentrant=simple == "RLock",
                raw=not _factory_in(item.value),
            )
            return
        info.attr_types.setdefault(attr, _parse_annotation(text))

    def _scan_constructor(self, info: ClassInfo, init: ast.AST) -> None:
        """Harvest ``self.X = ...`` attribute facts from a constructor."""
        param_types = _param_types(init)  # type: ignore[arg-type]
        for node in ast.walk(init):
            target: ast.expr | None = None
            value: ast.expr | None = None
            annotation: ast.expr | None = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign):
                target, value, annotation = node.target, node.value, node.annotation
            if (
                not isinstance(target, ast.Attribute)
                or not isinstance(target.value, ast.Name)
                or target.value.id != "self"
            ):
                continue
            attr = target.attr
            callee = (
                (dotted(value.func) or "").split(".")[-1]
                if isinstance(value, ast.Call)
                else None
            )
            if callee in _LOCK_FACTORIES:
                info.locks.setdefault(
                    attr,
                    LockDecl(
                        cls=info.name,
                        attr=attr,
                        node=node,
                        reentrant=callee in ("RLock", "make_rlock"),
                        raw=callee in ("Lock", "RLock"),
                    ),
                )
                continue
            if callee == "Condition":
                wrapped = self._condition_target(value)  # type: ignore[arg-type]
                if wrapped is not None:
                    info.condition_of.setdefault(attr, wrapped)
                else:  # no-arg Condition owns a private lock
                    info.locks.setdefault(
                        attr,
                        LockDecl(
                            cls=info.name,
                            attr=attr,
                            node=node,
                            reentrant=False,
                            raw=True,
                        ),
                    )
                continue
            if callee in ("open", "open_"):
                info.file_handle_attrs.setdefault(attr, node)
                continue
            ref = _NOTHING
            if annotation is not None:
                ref = _parse_annotation(_annotation_text(annotation))
            if ref is _NOTHING and callee and callee[0].isupper():
                ref = TypeRef(name=callee)
            if ref is _NOTHING and isinstance(value, ast.Name):
                param = param_types.get(value.id, _NOTHING)
                if param.name in _LOCK_ANNOTATIONS:
                    # A lock handed in at construction: the attr *is* a
                    # lock, owned (and reset) by whoever built it.
                    info.locks.setdefault(
                        attr,
                        LockDecl(
                            cls=info.name,
                            attr=attr,
                            node=node,
                            reentrant=param.name == "RLock",
                            raw=False,
                        ),
                    )
                    continue
                ref = param
            if ref is not _NOTHING:
                info.attr_types.setdefault(attr, ref)

    @staticmethod
    def _condition_target(call: ast.Call) -> str | None:
        if not call.args:
            return None
        arg = call.args[0]
        if (
            isinstance(arg, ast.Attribute)
            and isinstance(arg.value, ast.Name)
            and arg.value.id == "self"
        ):
            return arg.attr
        return None

    # ------------------------------------------------------------------
    # Function facts
    # ------------------------------------------------------------------
    def _collect_functions(self, module: ModuleFile) -> None:
        funcs = self._module_funcs.setdefault(module.module, set())
        for item in module.tree.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                funcs.add(item.name)

        def visit(node: ast.AST, cls: ClassInfo | None) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.ClassDef):
                    visit(child, self.classes.get(child.name))
                elif isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    self._build_function(module, child, cls)
                else:
                    visit(child, cls)

        visit(module.tree, None)

    def _build_function(
        self,
        module: ModuleFile,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        cls: ClassInfo | None,
    ) -> None:
        key = (
            f"{cls.name}.{node.name}" if cls is not None
            else f"{module.module}:{node.name}"
        )
        info = FunctionInfo(key=key, module=module, node=node, cls=cls)
        info.var_types = _param_types(node)
        if cls is not None:
            info.var_types["self"] = TypeRef(name=cls.name)
        _FunctionWalker(self, info).run()
        info.has_yield = any(
            isinstance(sub, (ast.Yield, ast.YieldFrom))
            for sub in ast.walk(node)
        )
        if info.has_yield:
            self.generator_functions.add(key)
        self.functions.setdefault(key, info)

    # ------------------------------------------------------------------
    # Resolution helpers used by the walker and the rules
    # ------------------------------------------------------------------
    def type_of(self, expr: ast.expr, info: FunctionInfo) -> TypeRef:
        """Best-effort static type of an expression in ``info``'s scope."""
        if isinstance(expr, ast.Name):
            return info.var_types.get(expr.id, _NOTHING)
        if isinstance(expr, ast.Attribute):
            base = self.type_of(expr.value, info)
            if base.name and base.name in self.classes:
                return self.classes[base.name].attr_types.get(
                    expr.attr, _NOTHING
                )
            return _NOTHING
        if isinstance(expr, ast.Subscript):
            container = self.type_of(expr.value, info)
            if container.elem:
                return TypeRef(name=container.elem)
            return _NOTHING
        if isinstance(expr, ast.Call):
            callee = dotted(expr.func)
            if callee is None:
                # obj.values() / obj.pop(...) style: element of receiver
                if isinstance(expr.func, ast.Attribute) and expr.func.attr in (
                    "values", "pop", "popleft", "get", "popitem",
                ):
                    container = self.type_of(expr.func.value, info)
                    if container.elem:
                        return TypeRef(name=container.elem)
                return _NOTHING
            simple = callee.split(".")[-1]
            if simple in self.classes:
                return TypeRef(name=simple)
            if simple in _PASSTHROUGH_CALLS and expr.args:
                inner = self.type_of(expr.args[0], info)
                return TypeRef(elem=inner.elem)
            if isinstance(expr.func, ast.Attribute) and expr.func.attr in (
                "values", "pop", "popleft", "get", "popitem",
            ):
                container = self.type_of(expr.func.value, info)
                if container.elem:
                    return TypeRef(name=container.elem)
            target = self._resolve_call_key(expr, info)
            if target is not None and target in self.functions:
                returns = self.functions[target].node.returns
                return _parse_annotation(_annotation_text(returns))
        return _NOTHING

    def element_of(self, expr: ast.expr, info: FunctionInfo) -> TypeRef:
        """Type of one element of an iterated expression."""
        ref = self.type_of(expr, info)
        if ref.elem:
            return TypeRef(name=ref.elem)
        return _NOTHING

    def lock_id_of(self, expr: ast.expr, info: FunctionInfo) -> str | None:
        """Canonical lock id acquired by ``with <expr>:``, if resolvable."""
        if isinstance(expr, ast.Attribute):
            base = self.type_of(expr.value, info)
            if base.name and base.name in self.classes:
                return self.classes[base.name].lock_id_for(expr.attr)
            return None
        if isinstance(expr, ast.Name):
            ref = info.var_types.get(expr.id)
            if ref is not None and ref.name and ref.name in _LOCK_ANNOTATIONS:
                # A bare lock local/param with no owning class attribute:
                # not canonicalizable, contributes nothing.
                return None
        return None

    def _resolve_call_key(
        self, call: ast.Call, info: FunctionInfo
    ) -> str | None:
        """Function-table key for a call, or None when unresolvable."""
        func = call.func
        if isinstance(func, ast.Name):
            name = func.id
            module = info.module.module
            if name in self._module_funcs.get(module, set()):
                return f"{module}:{name}"
            source = self._imports.get(module, {}).get(name)
            if source and name in self._module_funcs.get(source, set()):
                return f"{source}:{name}"
            return None
        if isinstance(func, ast.Attribute):
            receiver = self.type_of(func.value, info)
            if receiver.name and receiver.name in self.classes:
                cls = self.classes[receiver.name]
                if func.attr in cls.methods:
                    return f"{cls.name}.{func.attr}"
            return None
        return None


def _param_types(
    node: ast.FunctionDef | ast.AsyncFunctionDef,
) -> dict[str, TypeRef]:
    types: dict[str, TypeRef] = {}
    args = node.args
    for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
        ref = _parse_annotation(_annotation_text(arg.annotation))
        if ref is not _NOTHING:
            types[arg.arg] = ref
    return types


def _factory_in(value: ast.expr | None) -> bool:
    """Does the (default) expression call a sanitizer lock factory?"""
    if value is None:
        return False
    for sub in ast.walk(value):
        if isinstance(sub, ast.Call):
            name = (dotted(sub.func) or "").split(".")[-1]
            if name in ("make_lock", "make_rlock"):
                return True
    return False


class _FunctionWalker:
    """One pass over a function body tracking the lexically held locks."""

    def __init__(self, index: ProgramIndex, info: FunctionInfo) -> None:
        self.index = index
        self.info = info

    def run(self) -> None:
        for stmt in self.info.node.body:
            self._walk(stmt, frozenset())

    def _walk(self, node: ast.AST, held: frozenset[str]) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # A nested def runs later (often on another thread); its
            # body starts with nothing held.
            for stmt in node.body:
                self._walk(stmt, frozenset())
            return
        if isinstance(node, ast.ClassDef):
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            entered = frozenset(held)
            for item in node.items:
                lock_id = self.index.lock_id_of(
                    item.context_expr, self.info
                )
                self._scan_expr(item.context_expr, held)
                if lock_id is None:
                    continue
                self.info.acquires.append((lock_id, entered, node))
                entered = entered | {lock_id}
            for stmt in node.body:
                self._walk(stmt, entered)
            return
        self._record_statement(node, held)
        for child in ast.iter_child_nodes(node):
            self._walk(child, held)

    def _record_statement(self, node: ast.AST, held: frozenset[str]) -> None:
        if isinstance(node, ast.Call):
            self._record_call(node, held)
            return
        if isinstance(node, ast.Assign):
            for target in node.targets:
                self._record_write(target, "assign", held)
                self._bind_local(target, node.value)
        elif isinstance(node, ast.AugAssign):
            self._record_write(node.target, "assign", held)
        elif isinstance(node, ast.AnnAssign):
            self._record_write(node.target, "assign", held)
            if isinstance(node.target, ast.Name):
                ref = _parse_annotation(_annotation_text(node.annotation))
                if ref is not _NOTHING:
                    self.info.var_types.setdefault(node.target.id, ref)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                self._record_write(target, "del", held)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            elem = self.index.element_of(node.iter, self.info)
            if elem is not _NOTHING and isinstance(node.target, ast.Name):
                self.info.var_types.setdefault(node.target.id, elem)

    def _bind_local(self, target: ast.expr, value: ast.expr) -> None:
        if not isinstance(target, ast.Name):
            return
        ref = self.index.type_of(value, self.info)
        if ref is not _NOTHING:
            self.info.var_types.setdefault(target.id, ref)

    def _record_call(self, call: ast.Call, held: frozenset[str]) -> None:
        key = self.index._resolve_call_key(call, self.info)
        if key is not None:
            self.info.calls.append(
                CallSite(callee=key, held=held, node=call, caller=self.info.key)
            )
        # self.<attr>.mutator(...) is a write to the attr's value.
        func = call.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Attribute)
            and isinstance(func.value.value, ast.Name)
            and func.value.value.id == "self"
        ):
            self.info.writes.append(
                AttrWrite(
                    attr=func.value.attr,
                    kind=f"call:{func.attr}",
                    held=held,
                    node=call,
                    nested=False,
                )
            )

    def _scan_expr(self, expr: ast.AST, held: frozenset[str]) -> None:
        for sub in ast.walk(expr):
            if isinstance(sub, ast.Call):
                self._record_call(sub, held)

    def _record_write(
        self, target: ast.expr, kind: str, held: frozenset[str]
    ) -> None:
        """Record writes landing on ``self.<attr>`` (possibly nested)."""
        node: ast.expr = target
        nested = False
        while isinstance(node, (ast.Subscript, ast.Attribute)):
            parent = node.value
            if (
                isinstance(node, ast.Attribute)
                and isinstance(parent, ast.Name)
                and parent.id == "self"
            ):
                self.info.writes.append(
                    AttrWrite(
                        attr=node.attr,
                        kind=kind,
                        held=held,
                        node=target,
                        nested=nested,
                    )
                )
                return
            nested = True
            node = parent


# ---------------------------------------------------------------------------
# Lock-order graph (R7's substrate)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class LockEdge:
    """``a`` was (or may be) held while acquiring ``b``."""

    src: str
    dst: str
    path: str  # module path of the acquiring site
    line: int
    symbol: str  # function-table key of the acquiring function
    via_call: bool  # edge crosses at least one call boundary

    @property
    def witness(self) -> str:
        return f"{self.path}:{self.line} (in {self.symbol})"


def build_lock_graph(
    index: ProgramIndex, aliases: dict[str, str]
) -> dict[str, dict[str, LockEdge]]:
    """All acquired-while-holding edges, closed over the call graph.

    ``aliases`` folds attribute names that share one runtime lock
    object into a canonical id before edges are drawn. Self-edges are
    dropped: re-acquiring the same id is reentrancy, which is the
    runtime sanitizer's business, not an ordering violation.
    """

    def canon(lock_id: str) -> str:
        seen = set()
        while lock_id in aliases and lock_id not in seen:
            seen.add(lock_id)
            lock_id = aliases[lock_id]
        return lock_id

    # may_acquire fixpoint: every lock a function can take, directly or
    # through any resolved call.
    may_acquire: dict[str, set[str]] = {
        key: {canon(lock) for lock, _, _ in info.acquires}
        for key, info in index.functions.items()
    }
    changed = True
    while changed:
        changed = False
        for key, info in index.functions.items():
            bucket = may_acquire[key]
            before = len(bucket)
            for call in info.calls:
                bucket |= may_acquire.get(call.callee, set())
            if len(bucket) != before:
                changed = True

    edges: dict[str, dict[str, LockEdge]] = {}

    def add(
        src: str,
        dst: str,
        path: str,
        line: int,
        symbol: str,
        via_call: bool,
    ) -> None:
        if src == dst:
            return
        slot = edges.setdefault(src, {})
        existing = slot.get(dst)
        # Prefer a lexical witness over a call-propagated one.
        if existing is None or (existing.via_call and not via_call):
            slot[dst] = LockEdge(
                src=src, dst=dst, path=path, line=line,
                symbol=symbol, via_call=via_call,
            )

    for info in index.functions.values():
        for lock, held, node in info.acquires:
            line = getattr(node, "lineno", 1)
            for src in held:
                add(
                    canon(src), canon(lock), info.module.path, line,
                    info.key, via_call=False,
                )
        for call in info.calls:
            if not call.held:
                continue
            line = getattr(call.node, "lineno", 1)
            symbol = f"{info.key} -> {call.callee}"
            for dst in may_acquire.get(call.callee, set()):
                for src in call.held:
                    add(
                        canon(src), dst, info.module.path, line,
                        symbol, via_call=True,
                    )
    return edges


def find_lock_cycles(
    edges: dict[str, dict[str, LockEdge]]
) -> list[list[LockEdge]]:
    """Every elementary ordering cycle, as lists of witness edges.

    Cycles are found per strongly connected component; each SCC is
    reported through one representative cycle (a deadlock fix breaks
    the whole component, so one witness per component is the
    actionable unit).
    """
    # Tarjan SCC, iterative.
    indexes: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    sccs: list[list[str]] = []
    counter = [0]

    def strongconnect(root: str) -> None:
        work = [(root, iter(sorted(edges.get(root, {}))))]
        indexes[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for succ in successors:
                if succ not in indexes:
                    indexes[succ] = low[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(sorted(edges.get(succ, {})))))
                    advanced = True
                    break
                if succ in on_stack:
                    low[node] = min(low[node], indexes[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == indexes[node]:
                component: list[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                if len(component) > 1:
                    sccs.append(sorted(component))

    for node in sorted(edges):
        if node not in indexes:
            strongconnect(node)

    cycles: list[list[LockEdge]] = []
    for component in sccs:
        members = set(component)
        start = component[0]
        # Shortest cycle through ``start`` inside the component (BFS).
        parent: dict[str, LockEdge] = {}
        frontier = [start]
        found: str | None = None
        visited = {start}
        while frontier and found is None:
            nxt: list[str] = []
            for node in frontier:
                for succ, edge in sorted(edges.get(node, {}).items()):
                    if succ not in members:
                        continue
                    if succ == start:
                        parent[f"__back__{node}"] = edge
                        found = node
                        break
                    if succ not in visited:
                        visited.add(succ)
                        parent[succ] = edge
                        nxt.append(succ)
                if found is not None:
                    break
            frontier = nxt
        if found is None:  # pragma: no cover - SCC guarantees a cycle
            continue
        path = [parent[f"__back__{found}"]]
        node = found
        while node != start:
            edge = parent[node]
            path.append(edge)
            node = edge.src
        path.reverse()
        cycles.append(path)
    return cycles
