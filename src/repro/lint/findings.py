"""The lint data model: findings, parsed modules, suppressions.

A :class:`Finding` is one rule violation at one source location. Its
:meth:`~Finding.fingerprint` deliberately excludes the line number --
baselines (see :mod:`repro.lint.baseline`) must survive unrelated edits
shifting code up or down, so grandfathered findings are keyed on
``rule :: path :: enclosing symbol :: message`` instead.

A :class:`ModuleFile` is one parsed source file, pre-annotated with the
enclosing-scope qualname of every AST node (``node._rl_scope``) and the
file's inline suppressions, so individual rules stay small.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field

SEVERITIES = ("error", "warning")

_SUPPRESS_RE = re.compile(
    r"#\s*reprolint:\s*(disable|disable-next)\s*=\s*([A-Za-z0-9_,\s]+)"
)
_SKIP_FILE_RE = re.compile(r"#\s*reprolint:\s*skip-file")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str  # e.g. "R1"
    name: str  # rule slug, e.g. "no-raw-io"
    severity: str  # "error" | "warning"
    path: str  # repo-relative posix path
    line: int  # 1-based
    col: int  # 0-based
    symbol: str  # enclosing qualname or "<module>"
    message: str

    def fingerprint(self) -> str:
        """Line-independent identity used by the suppression baseline."""
        return f"{self.rule}::{self.path}::{self.symbol}::{self.message}"

    def to_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "name": self.name,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "symbol": self.symbol,
            "message": self.message,
        }

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col + 1}: "
            f"{self.severity} {self.rule}[{self.name}] {self.message} "
            f"(in {self.symbol})"
        )


def _annotate_scopes(tree: ast.Module) -> None:
    """Stamp every node with the qualname of its enclosing def/class."""

    def visit(node: ast.AST, scope: str) -> None:
        for child in ast.iter_child_nodes(node):
            child_scope = scope
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                child_scope = (
                    child.name if scope == "<module>" else f"{scope}.{child.name}"
                )
            child._rl_scope = child_scope  # type: ignore[attr-defined]
            visit(child, child_scope)

    tree._rl_scope = "<module>"  # type: ignore[attr-defined]
    visit(tree, "<module>")


def _parse_suppressions(lines: list[str]) -> dict[int, set[str]]:
    """Map 1-based line numbers to the rule IDs suppressed on them."""
    suppressed: dict[int, set[str]] = {}
    for number, text in enumerate(lines, start=1):
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        kind, raw = match.groups()
        rules = {part.strip().upper() for part in raw.split(",") if part.strip()}
        target = number + 1 if kind == "disable-next" else number
        suppressed.setdefault(target, set()).update(rules)
    return suppressed


@dataclass
class ModuleFile:
    """One parsed source file plus the metadata every rule needs."""

    path: str  # repo-relative posix path
    module: str  # dotted module name ("repro.storage.pli", "tests.foo")
    source: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)
    suppressions: dict[int, set[str]] = field(default_factory=dict)
    skip_file: bool = False

    @classmethod
    def parse(cls, path: str, module: str, source: str) -> "ModuleFile":
        tree = ast.parse(source, filename=path)
        _annotate_scopes(tree)
        lines = source.splitlines()
        return cls(
            path=path,
            module=module,
            source=source,
            tree=tree,
            lines=lines,
            suppressions=_parse_suppressions(lines),
            skip_file=any(_SKIP_FILE_RE.search(line) for line in lines[:10]),
        )

    def scope_of(self, node: ast.AST) -> str:
        return getattr(node, "_rl_scope", "<module>")

    def suppresses(self, rule: str, line: int) -> bool:
        rules = self.suppressions.get(line)
        if rules is None:
            return False
        return rule.upper() in rules or "ALL" in rules

    def finding(
        self,
        rule: "object",
        node: ast.AST,
        message: str,
        severity: str | None = None,
    ) -> Finding:
        """Build a finding for ``node`` using the rule's id/slug."""
        return Finding(
            rule=rule.id,  # type: ignore[attr-defined]
            name=rule.name,  # type: ignore[attr-defined]
            severity=severity or rule.default_severity,  # type: ignore[attr-defined]
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            symbol=self.scope_of(node),
            message=message,
        )
