"""The checked-in suppression baseline for grandfathered findings.

Policy (see ``docs/static-analysis.md``): a finding may be *baselined*
only when it is a deliberate, documented design decision -- never when
it is a genuine bug. Baselined findings are reported (counted, listed
under ``"baselined"`` in JSON output) but do not fail the run; deleting
the baseline entry re-arms the finding.

Entries are fingerprint strings (``rule :: path :: symbol :: message``,
see :meth:`repro.lint.findings.Finding.fingerprint`), so they survive
line-number drift but expire automatically when the offending code is
fixed, moved, or reworded -- a stale entry is reported so it can be
pruned.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

from repro.lint.findings import Finding

BASELINE_VERSION = 1


@dataclass
class Baseline:
    """A set of grandfathered finding fingerprints."""

    entries: set[str] = field(default_factory=set)
    path: str | None = None

    @classmethod
    def load(cls, path: str) -> "Baseline":
        if not os.path.exists(path):
            return cls(path=path)
        with open(path) as handle:
            document = json.load(handle)
        if document.get("version") != BASELINE_VERSION:
            raise ValueError(
                f"baseline {path}: unsupported version "
                f"{document.get('version')!r}"
            )
        entries = document.get("entries", [])
        if not isinstance(entries, list) or not all(
            isinstance(entry, str) for entry in entries
        ):
            raise ValueError(f"baseline {path}: entries must be strings")
        return cls(entries=set(entries), path=path)

    def save(self, path: str | None = None) -> str:
        target = path or self.path
        if target is None:
            raise ValueError("no baseline path to save to")
        document = {
            "version": BASELINE_VERSION,
            "entries": sorted(self.entries),
        }
        with open(target, "w") as handle:
            json.dump(document, handle, indent=2)
            handle.write("\n")
        return target

    def __contains__(self, finding: Finding) -> bool:
        return finding.fingerprint() in self.entries

    def __len__(self) -> int:
        return len(self.entries)

    def add(self, finding: Finding) -> None:
        self.entries.add(finding.fingerprint())

    def stale_entries(self, findings: list[Finding]) -> list[str]:
        """Baseline entries no longer matched by any current finding."""
        live = {finding.fingerprint() for finding in findings}
        return sorted(self.entries - live)
