"""repro-lint: self-hosted static analysis for this codebase.

An AST-based rule framework (:mod:`repro.lint.rules`) enforcing the
structural conventions the incremental-UCC correctness story depends on
-- fault-site-routed filesystem I/O, frozen shared arrays, no live
maintained-structure escapes, deterministic core code, lock/metric
hygiene, and fan-out capture safety. Run it as ``repro-lint`` or
``python -m repro.lint``; the rule catalog (with the real bugs that
motivated each rule) lives in ``docs/static-analysis.md``.
"""

from repro.lint.baseline import Baseline
from repro.lint.config import LintConfig, RuleConfig, load_config, parse_config
from repro.lint.engine import LintResult, module_name_for, run_lint
from repro.lint.findings import Finding, ModuleFile
from repro.lint.rules import RULES, Rule, all_rules, register

__all__ = [
    "Baseline",
    "Finding",
    "LintConfig",
    "LintResult",
    "ModuleFile",
    "RULES",
    "Rule",
    "RuleConfig",
    "all_rules",
    "load_config",
    "module_name_for",
    "parse_config",
    "register",
    "run_lint",
]
