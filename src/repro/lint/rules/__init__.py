"""The rule registry plus shared AST helpers.

Every rule is a subclass of :class:`Rule` registered with
:func:`register`; the engine instantiates each once per run. Rules are
*domain* checks: each one encodes a structural convention this codebase
relies on for correctness, grounded in a bug the repo actually had (the
catalog with the war stories lives in ``docs/static-analysis.md``).

A rule sees one :class:`~repro.lint.findings.ModuleFile` at a time via
:meth:`Rule.check`; rules that need a whole-project view (R5's metric
registry check) also implement :meth:`Rule.finalize`, called once with
every in-scope module after the per-module pass.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Mapping

from repro.lint.findings import Finding, ModuleFile

RULES: dict[str, type["Rule"]] = {}


def register(rule_class: type["Rule"]) -> type["Rule"]:
    if rule_class.id in RULES:
        raise ValueError(f"rule {rule_class.id} registered twice")
    RULES[rule_class.id] = rule_class
    return rule_class


class Rule:
    """One domain check. Subclasses set the class attributes below."""

    id: str = ""
    name: str = ""
    description: str = ""
    default_severity: str = "error"
    #: Module-name prefixes the rule applies to by default. ``("",)``
    #: would mean every scanned module.
    default_scope: tuple[str, ...] = ("repro",)

    def __init__(self, options: Mapping[str, object] | None = None) -> None:
        self.options = dict(options or {})

    def option(self, key: str, default: object) -> object:
        return self.options.get(key, default)

    def check(self, module: ModuleFile) -> Iterator[Finding]:
        """Per-module pass; yield findings."""
        return iter(())

    def finalize(self, modules: list[ModuleFile]) -> Iterator[Finding]:
        """Whole-project pass over every in-scope module."""
        return iter(())


def all_rules() -> list[type[Rule]]:
    """Every registered rule, in rule-ID order."""
    _load_builtin_rules()
    return [RULES[rule_id] for rule_id in sorted(RULES)]


def _load_builtin_rules() -> None:
    # Imported lazily so the registry module has no import cycle with
    # the rule modules (each calls ``register`` at import time).
    from repro.lint.rules import (  # noqa: F401
        determinism,
        fanout_capture,
        fork_safety,
        frozen_views,
        live_escape,
        lock_order,
        locks_metrics,
        raw_io,
        shared_state,
    )


# ----------------------------------------------------------------------
# Shared AST helpers
# ----------------------------------------------------------------------
def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_name(node: ast.Call) -> str | None:
    """The dotted name a call targets, if statically nameable."""
    return dotted_name(node.func)


def is_self_attribute(node: ast.AST) -> str | None:
    """``attr`` when ``node`` is exactly ``self.<attr>``, else ``None``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def functions_in(tree: ast.AST) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def walk_local(function: ast.AST) -> Iterator[ast.AST]:
    """Walk a function's own body without descending into nested defs."""
    stack = list(ast.iter_child_nodes(function))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))


def contains_call_named(node: ast.AST, names: Iterable[str]) -> bool:
    """Does any call inside ``node`` target an attr/name in ``names``?"""
    wanted = set(names)
    for child in ast.walk(node):
        if isinstance(child, ast.Call):
            if isinstance(child.func, ast.Attribute) and child.func.attr in wanted:
                return True
            if isinstance(child.func, ast.Name) and child.func.id in wanted:
                return True
    return False


def literal_str(node: ast.AST) -> str | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None
