"""R5 ``lock-metrics-hygiene``: locks always release, metric names agree.

Two operational conventions with real failure stories behind them:

* PR 2 fixed a family of bugs where the service's ``flock`` survived a
  crashed ``start()`` and wedged every later boot. The convention since
  is: an explicit lock acquire either lives inside ``try``/``finally``
  (or a ``with`` block) with its release, or ownership is transferred
  to ``self`` and the class provides a release method -- this rule
  checks for exactly those shapes.
* ``stats()`` / ``status.json`` are scraped by dashboards; a metric
  name accidentally used as both a counter and a gauge splits one
  logical series into two registry slots (the JSON document would carry
  both), so each name must map to exactly one metric kind across the
  codebase. Dynamic (non-literal) metric names evade that check and
  are reported as warnings.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.findings import Finding, ModuleFile
from repro.lint.rules import (
    Rule,
    contains_call_named,
    dotted_name,
    literal_str,
    register,
)

_METRIC_KINDS = ("counter", "gauge", "histogram")


def _mentions_lock_ex(node: ast.Call) -> bool:
    for arg in node.args[1:]:
        for child in ast.walk(arg):
            if isinstance(child, ast.Attribute) and child.attr == "LOCK_EX":
                return True
    return False


def _class_of(module: ModuleFile, node: ast.AST) -> ast.ClassDef | None:
    scope = module.scope_of(node)
    head = scope.split(".")[0]
    for stmt in module.tree.body:
        if isinstance(stmt, ast.ClassDef) and stmt.name == head:
            return stmt
    return None


@register
class LocksMetricsRule(Rule):
    id = "R5"
    name = "lock-metrics-hygiene"
    description = (
        "Every flock/lock acquire needs a release on all exit paths "
        "(try/finally, with, or ownership transfer to a class that "
        "releases), and every metric name maps to exactly one kind."
    )
    default_scope = (
        "repro.service",
        "repro.storage",
        "repro.core",
        "repro.tenants",
        "repro.server",
        "repro.shard",
        "repro.profiling",
        "repro.datasets",
    )

    def check(self, module: ModuleFile) -> Iterator[Finding]:
        yield from self._check_flock(module)
        yield from self._check_bare_acquire(module)
        yield from self._check_dynamic_metric_names(module)

    # ------------------------------------------------------------------
    # Locks
    # ------------------------------------------------------------------
    def _check_flock(self, module: ModuleFile) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if dotted_name(node.func) != "fcntl.flock":
                continue
            if not _mentions_lock_ex(node):
                continue
            function = self._enclosing_function(module, node)
            if function is None:
                yield module.finding(
                    self, node, "module-level flock acquire has no release path"
                )
                continue
            if self._has_release_shape(module, function, node):
                continue
            yield module.finding(
                self,
                node,
                "flock(LOCK_EX) without a guaranteed release: unlock in a "
                "finally/with, or store the handle on self and release it "
                "in a dedicated method (LOCK_UN)",
            )

    def _enclosing_function(
        self, module: ModuleFile, node: ast.AST
    ) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
        target_scope = module.scope_of(node)
        if target_scope == "<module>":
            return None
        for candidate in ast.walk(module.tree):
            if not isinstance(candidate, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            # A def node's own scope stamp *is* its qualname.
            if module.scope_of(candidate) == target_scope:
                return candidate
        return None

    def _has_release_shape(
        self,
        module: ModuleFile,
        function: ast.FunctionDef | ast.AsyncFunctionDef,
        acquire: ast.Call,
    ) -> bool:
        # Shape 1: a release in the same function (finally/except close
        # or an explicit LOCK_UN anywhere on the function's exit paths).
        for node in ast.walk(function):
            if isinstance(node, ast.Attribute) and node.attr == "LOCK_UN":
                return True
        # Shape 2: ownership transfer -- the handle lands on self and the
        # class releases it elsewhere (LOCK_UN in another method). The
        # error path before the transfer must still close the handle.
        stores_on_self = any(
            isinstance(node, ast.Assign)
            and any(
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
                for target in node.targets
            )
            for node in ast.walk(function)
        )
        if stores_on_self:
            owner = _class_of(module, function)
            if owner is not None:
                for node in ast.walk(owner):
                    if isinstance(node, ast.Attribute) and node.attr == "LOCK_UN":
                        # The acquire itself must be guarded so a failed
                        # flock cannot leak the just-opened handle.
                        if self._acquire_guarded(function, acquire):
                            return True
        return False

    @staticmethod
    def _acquire_guarded(function: ast.AST, acquire: ast.Call) -> bool:
        for node in ast.walk(function):
            if isinstance(node, ast.Try):
                guarded = any(
                    acquire in ast.walk(stmt) for stmt in node.body
                )
                if guarded and (node.handlers or node.finalbody):
                    closes = any(
                        contains_call_named(handler, ("close",))
                        for handler in [*node.handlers, *node.finalbody]
                    )
                    if closes:
                        return True
        return False

    def _check_bare_acquire(self, module: ModuleFile) -> Iterator[Finding]:
        """An explicit .acquire() on a lock-ish name needs a paired
        release in a finally block of the same function."""
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            acquires = []
            releases_in_finally = False
            for child in ast.walk(node):
                if isinstance(child, ast.Call) and isinstance(
                    child.func, ast.Attribute
                ):
                    receiver = dotted_name(child.func.value) or ""
                    if "lock" not in receiver.lower():
                        continue
                    if child.func.attr == "acquire":
                        acquires.append(child)
                if isinstance(child, ast.Try) and child.finalbody:
                    if any(
                        contains_call_named(stmt, ("release",))
                        for stmt in child.finalbody
                    ):
                        releases_in_finally = True
            if acquires and not releases_in_finally:
                for call in acquires:
                    yield module.finding(
                        self,
                        call,
                        "explicit lock .acquire() without a .release() in a "
                        "finally block: prefer `with lock:`",
                    )

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def _check_dynamic_metric_names(self, module: ModuleFile) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            kind = self._metric_call_kind(node)
            if kind is None or not node.args:
                continue
            if literal_str(node.args[0]) is None:
                yield module.finding(
                    self,
                    node,
                    f"dynamic {kind} name evades the single-registration "
                    "check: use literal metric names",
                    severity="warning",
                )

    @staticmethod
    def _metric_call_kind(node: ast.Call) -> str | None:
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _METRIC_KINDS
        ):
            receiver = dotted_name(node.func.value) or ""
            leaf = receiver.rsplit(".", maxsplit=1)[-1].lower()
            if "metrics" in leaf or "registry" in leaf:
                return node.func.attr
        return None

    def finalize(self, modules: list[ModuleFile]) -> Iterator[Finding]:
        """Whole-project pass: one metric name, exactly one kind."""
        seen: dict[str, tuple[str, ModuleFile, ast.Call]] = {}
        for module in modules:
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                kind = self._metric_call_kind(node)
                if kind is None or not node.args:
                    continue
                name = literal_str(node.args[0])
                if name is None:
                    continue
                previous = seen.get(name)
                if previous is None:
                    seen[name] = (kind, module, node)
                elif previous[0] != kind:
                    yield module.finding(
                        self,
                        node,
                        f"metric name {name!r} used as both "
                        f"{previous[0]} (first in {previous[1].path}) and "
                        f"{kind}: one name, one kind",
                    )
