"""R2 ``frozen-view``: cached/shared numpy arrays must be read-only.

:class:`~repro.storage.value_index.ValueIndex` hands out its live
posting arrays without copying (that no-copy contract is why the batch
insert path is fast); the only thing standing between that and silent
index corruption is ``flags.writeable = False``. This rule enforces the
convention at both ends:

* **producers** -- module-level ndarray constants (the ``_EMPTY``
  pattern) must be frozen right after construction, and designated
  lookup surfaces (``lookup_array``, ``lookup_batch``,
  ``codes_for_ids``, ``codes_at``, ...) may not return a freshly built
  or sliced array without routing it through a freezing wrapper;
* **consumers** -- no function may mutate a value it obtained from one
  of those surfaces (element assignment, ``+=``, in-place methods like
  ``sort``/``fill``, or thawing via ``setflags``).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.findings import Finding, ModuleFile
from repro.lint.rules import Rule, call_name, dotted_name, register, walk_local

_NP_CONSTRUCTORS = {
    "np.empty", "np.zeros", "np.ones", "np.full", "np.arange",
    "np.array", "np.asarray", "np.frombuffer", "np.fromiter",
    "numpy.empty", "numpy.zeros", "numpy.ones", "numpy.full",
    "numpy.arange", "numpy.array", "numpy.asarray",
}
_INPLACE_METHODS = {
    "sort", "fill", "put", "resize", "partition", "itemset", "byteswap",
}
_DEFAULT_SURFACES = (
    "lookup_array",
    "lookup_batch",
    "codes_for_ids",
    "codes_at",
)
_DEFAULT_WRAPPERS = ("_frozen", "frozen", "as_readonly")


def _is_freeze_stmt(stmt: ast.stmt, name: str) -> bool:
    """``name.flags.writeable = False`` or ``name.setflags(write=False)``."""
    if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
        target = stmt.targets[0]
        if (
            dotted_name(target) == f"{name}.flags.writeable"
            and isinstance(stmt.value, ast.Constant)
            and stmt.value.value is False
        ):
            return True
    if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
        call = stmt.value
        if dotted_name(call.func) == f"{name}.setflags":
            for keyword in call.keywords:
                if (
                    keyword.arg == "write"
                    and isinstance(keyword.value, ast.Constant)
                    and keyword.value.value is False
                ):
                    return True
    return False


@register
class FrozenViewsRule(Rule):
    id = "R2"
    name = "frozen-view"
    description = (
        "Numpy arrays returned from cache/lookup surfaces must be made "
        "read-only before return, and no call site may mutate a value "
        "obtained from those surfaces."
    )
    default_scope = (
        "repro.storage",
        "repro.core",
        "repro.shard",
        "repro.fd",
        "repro.ind",
        "repro.profiling",
    )

    @property
    def surfaces(self) -> tuple[str, ...]:
        return tuple(self.option("surfaces", list(_DEFAULT_SURFACES)))

    @property
    def wrappers(self) -> tuple[str, ...]:
        return tuple(self.option("frozen_wrappers", list(_DEFAULT_WRAPPERS)))

    def check(self, module: ModuleFile) -> Iterator[Finding]:
        yield from self._check_module_constants(module)
        yield from self._check_surface_returns(module)
        yield from self._check_consumer_mutation(module)

    # ------------------------------------------------------------------
    # Producers: module-level ndarray constants
    # ------------------------------------------------------------------
    def _check_module_constants(self, module: ModuleFile) -> Iterator[Finding]:
        body = module.tree.body
        for position, stmt in enumerate(body):
            if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
                continue
            target = stmt.targets[0]
            if not isinstance(target, ast.Name):
                continue
            value = stmt.value
            if isinstance(value, ast.Call) and call_name(value) in self.wrappers:
                continue  # already routed through a freezing wrapper
            if not (
                isinstance(value, ast.Call)
                and call_name(value) in _NP_CONSTRUCTORS
            ):
                continue
            frozen = any(
                _is_freeze_stmt(later, target.id)
                for later in body[position + 1 : position + 4]
            )
            if not frozen:
                yield module.finding(
                    self,
                    stmt,
                    f"module-level ndarray constant {target.id!r} is not "
                    "frozen: set .flags.writeable = False (or build it via "
                    "a freezing wrapper) right after construction",
                )

    # ------------------------------------------------------------------
    # Producers: designated lookup surfaces
    # ------------------------------------------------------------------
    def _check_surface_returns(self, module: ModuleFile) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name not in self.surfaces:
                continue
            for stmt in walk_local(node):
                if not isinstance(stmt, ast.Return) or stmt.value is None:
                    continue
                value = stmt.value
                if isinstance(value, ast.Call) and call_name(value) in self.wrappers:
                    continue
                bare_build = (
                    isinstance(value, ast.Call)
                    and call_name(value) in _NP_CONSTRUCTORS
                )
                bare_slice = isinstance(value, ast.Subscript)
                if bare_build or bare_slice:
                    shape = "freshly built" if bare_build else "sliced/gathered"
                    yield module.finding(
                        self,
                        stmt,
                        f"lookup surface {node.name!r} returns a {shape} "
                        "array without freezing it: wrap the return value "
                        f"in one of {', '.join(self.wrappers)} (or freeze "
                        "via setflags(write=False))",
                    )

    # ------------------------------------------------------------------
    # Consumers: no mutation of surface-obtained values
    # ------------------------------------------------------------------
    def _check_consumer_mutation(self, module: ModuleFile) -> Iterator[Finding]:
        surfaces = set(self.surfaces) | {"lookup"}
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name in surfaces:
                continue  # the surface itself may build its arrays
            tainted: set[str] = set()
            for stmt in walk_local(node):
                if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                    target = stmt.targets[0]
                    value = stmt.value
                    if not isinstance(target, ast.Name):
                        continue
                    if (
                        isinstance(value, ast.Call)
                        and isinstance(value.func, ast.Attribute)
                        and value.func.attr in surfaces
                    ):
                        tainted.add(target.id)
                    elif (
                        isinstance(value, ast.Name) and value.id in tainted
                    ):
                        tainted.add(target.id)
                    elif target.id in tainted:
                        tainted.discard(target.id)  # rebound to fresh value
            if not tainted:
                continue
            for stmt in walk_local(node):
                yield from self._mutations_of(module, stmt, tainted)

    def _mutations_of(
        self, module: ModuleFile, stmt: ast.AST, tainted: set[str]
    ) -> Iterator[Finding]:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)
                    and target.value.id in tainted
                ):
                    yield module.finding(
                        self,
                        stmt,
                        f"element assignment into {target.value.id!r}, which "
                        "was obtained from a read-only lookup surface: copy "
                        "it first",
                    )
        elif isinstance(stmt, ast.AugAssign):
            target = stmt.target
            base = target.value if isinstance(target, ast.Subscript) else target
            if isinstance(base, ast.Name) and base.id in tainted:
                yield module.finding(
                    self,
                    stmt,
                    f"in-place update of {base.id!r}, which was obtained "
                    "from a read-only lookup surface: copy it first",
                )
        elif isinstance(stmt, ast.Call) and isinstance(stmt.func, ast.Attribute):
            receiver = stmt.func.value
            if isinstance(receiver, ast.Name) and receiver.id in tainted:
                if stmt.func.attr in _INPLACE_METHODS:
                    yield module.finding(
                        self,
                        stmt,
                        f"in-place .{stmt.func.attr}() on "
                        f"{receiver.id!r}, which was obtained from a "
                        "read-only lookup surface: copy it first",
                    )
                elif stmt.func.attr == "setflags":
                    yield module.finding(
                        self,
                        stmt,
                        f"thawing {receiver.id!r} via setflags defeats the "
                        "frozen-view contract: copy it instead",
                    )
