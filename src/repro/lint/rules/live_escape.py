"""R3 ``no-live-structure-escape``: maintained state never leaks live.

The exact shape of the PR 3 bug: ``pli_for_combination`` took an early
break before its first intersection and returned the **live maintained
column PLI** un-copied; the caller's ``remove_ids`` then silently
corrupted the maintained index, and the profile drifted. No runtime
oracle catches that cheaply (dependency-discovery hardness means
re-verifying the profile is exponential), so the convention is
structural: a function over maintained state may not return or yield a
reference to a mutable maintained container without an explicit
``.copy()`` / frozen wrapper on that path.

The check is an intraprocedural *may-alias* taint pass:

* reads of maintained containers (configurable parameter names such as
  ``column_plis`` and ``self`` attributes such as ``_clusters``) taint
  the receiving local -- via subscript, ``.get``, attribute access on a
  tainted value, or plain rebinding;
* taint accumulates over all assignments to a name (an early ``break``
  can skip the cleansing assignment, which is exactly how the PR 3 bug
  survived a straight-line reading of the code);
* an explicit ``.copy()`` / ``deepcopy`` / freezing wrapper anywhere in
  an assignment's value cleanses it -- including the guarded
  ``x if derived else x.copy()`` idiom, which is treated as a
  deliberate aliasing decision;
* a ``return``/``yield`` whose value may be tainted (including inside
  tuples/lists) is a finding.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.findings import Finding, ModuleFile
from repro.lint.rules import Rule, is_self_attribute, register, walk_local

_CLEANSING_CALLS = {"copy", "deepcopy", "frozenset", "tuple", "dict", "list", "set"}
_DEFAULT_MAINTAINED_PARAMS = ("column_plis", "plis")
_DEFAULT_MAINTAINED_ATTRS = ("_clusters", "_membership", "_entries", "_indexes")
_DEFAULT_SCOPE = (
    "repro.storage.pli",
    "repro.storage.fastpli",
    "repro.storage.plicache",
    "repro.storage.value_index",
    "repro.shard",
)

_SCALAR_NAMES = {"int", "float", "bool", "str", "bytes", "None"}


def _scalar_return(function: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    """Is the declared return type scalar-only (so no container can leak)?

    Covers ``int``, ``int | None``, ``Optional[int]`` and friends. An
    unannotated function is *not* exempt -- absence of a signature is no
    proof of scalarness.
    """

    def scalar(node: ast.AST | None) -> bool:
        if node is None:
            return False
        if isinstance(node, ast.Constant):
            return node.value is None
        if isinstance(node, ast.Name):
            return node.id in _SCALAR_NAMES
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
            return scalar(node.left) and scalar(node.right)
        if (
            isinstance(node, ast.Subscript)
            and isinstance(node.value, ast.Name)
            and node.value.id == "Optional"
        ):
            return scalar(node.slice)
        return False

    return scalar(function.returns)


@register
class LiveEscapeRule(Rule):
    id = "R3"
    name = "no-live-structure-escape"
    description = (
        "Functions on maintained state (plicache, pli, fastpli, "
        "value_index) may not return or yield a reference to a mutable "
        "maintained container without an explicit .copy()/frozen wrapper."
    )
    default_scope = _DEFAULT_SCOPE

    @property
    def maintained_params(self) -> tuple[str, ...]:
        return tuple(
            self.option("maintained_params", list(_DEFAULT_MAINTAINED_PARAMS))
        )

    @property
    def maintained_attrs(self) -> tuple[str, ...]:
        return tuple(
            self.option("maintained_attrs", list(_DEFAULT_MAINTAINED_ATTRS))
        )

    def check(self, module: ModuleFile) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if _scalar_return(node):
                    continue  # scalars can't alias a container
                yield from self._check_function(module, node)

    # ------------------------------------------------------------------
    # Taint classification
    # ------------------------------------------------------------------
    def _is_maintained(self, node: ast.AST) -> bool:
        """Is ``node`` a direct reference to a maintained container?"""
        if isinstance(node, ast.Name) and node.id in self.maintained_params:
            return True
        attr = is_self_attribute(node)
        return attr is not None and attr in self.maintained_attrs

    def _contains_cleansing(self, node: ast.AST) -> bool:
        for child in ast.walk(node):
            if isinstance(child, ast.Call):
                func = child.func
                if isinstance(func, ast.Attribute) and func.attr in _CLEANSING_CALLS:
                    return True
                if isinstance(func, ast.Name) and func.id in _CLEANSING_CALLS:
                    return True
        return False

    def _value_tainted(self, node: ast.AST, tainted: set[str]) -> bool:
        """May ``node`` alias a maintained container?"""
        if self._contains_cleansing(node):
            return False
        if self._is_maintained(node):
            return True  # returning the container itself
        if isinstance(node, ast.Name):
            return node.id in tainted
        if isinstance(node, ast.Subscript):
            return self._is_maintained(node.value) or self._value_tainted(
                node.value, tainted
            )
        if isinstance(node, ast.Call):
            func = node.func
            # ``maintained.get(...)`` / ``tainted.get(...)`` alias a
            # stored element; every other call builds a fresh value.
            if isinstance(func, ast.Attribute) and func.attr == "get":
                return self._is_maintained(func.value) or self._value_tainted(
                    func.value, tainted
                )
            return False
        if isinstance(node, ast.Attribute):
            return self._value_tainted(node.value, tainted)
        if isinstance(node, ast.IfExp):
            return self._value_tainted(node.body, tainted) or self._value_tainted(
                node.orelse, tainted
            )
        if isinstance(node, (ast.Tuple, ast.List)):
            return any(self._value_tainted(item, tainted) for item in node.elts)
        if isinstance(node, ast.NamedExpr):
            return self._value_tainted(node.value, tainted)
        return False

    # ------------------------------------------------------------------
    # Per-function may-alias pass
    # ------------------------------------------------------------------
    def _check_function(
        self,
        module: ModuleFile,
        function: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> Iterator[Finding]:
        # Pass 1: accumulate may-taint over every assignment. Iterate to
        # a fixed point so aliases of aliases are covered regardless of
        # statement order.
        tainted: set[str] = set()
        for _ in range(4):
            before = len(tainted)
            for stmt in walk_local(function):
                if isinstance(stmt, ast.Assign):
                    targets = stmt.targets
                    value = stmt.value
                elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                    targets = [stmt.target]
                    value = stmt.value
                elif isinstance(stmt, ast.NamedExpr):
                    targets = [stmt.target]
                    value = stmt.value
                else:
                    continue
                if not self._value_tainted(value, tainted):
                    continue
                for target in targets:
                    if isinstance(target, ast.Name):
                        tainted.add(target.id)
            if len(tainted) == before:
                break

        # Pass 2: flag escapes.
        for stmt in walk_local(function):
            if isinstance(stmt, ast.Return) and stmt.value is not None:
                escape, keyword = stmt.value, "returns"
            elif isinstance(stmt, ast.Yield) and stmt.value is not None:
                escape, keyword = stmt.value, "yields"
            else:
                continue
            if self._value_tainted(escape, tainted):
                yield module.finding(
                    self,
                    stmt,
                    f"{keyword} a reference that may alias a live "
                    "maintained container (the PR 3 "
                    "pli_for_combination aliasing-bug shape): return an "
                    "explicit .copy() or a frozen wrapper instead",
                )
