"""R6 ``fanout-capture``: closures on the worker pool don't mutate
shared locals.

:class:`~repro.core.parallel.FanOutPool` keeps parallel profiles
bit-identical to serial ones by one contract: tasks communicate through
*return values*, merged in input order by the caller. A closure that
appends to / writes into a captured local instead communicates through
shared memory -- the merge order (and under races, the content) then
depends on thread scheduling, which is exactly the nondeterminism the
pool was designed out of. Reads of captured state are fine (the
handlers are read-only against the profile during fan-out); direct
mutation of captured names is not.

The rule finds ``<pool>.map(fn, ...)`` calls (any receiver whose name
contains ``pool``), resolves ``fn`` to the local ``def``/``lambda``,
and flags statements in its body that mutate a captured name: item
assignment, ``+=``, or in-place container methods
(``append``/``add``/``update``/...). Names that are parameters or
assigned locally are exempt; so are names listed in the rule's
``allow_names`` option (for append-only accumulators owned by the
pool itself).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.findings import Finding, ModuleFile
from repro.lint.rules import Rule, dotted_name, register, walk_local

_MUTATING_METHODS = {
    "append", "add", "update", "extend", "insert", "remove", "discard",
    "pop", "popitem", "clear", "setdefault", "sort",
}


def _local_names(function: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda) -> set[str]:
    args = function.args
    names = {
        arg.arg
        for arg in [
            *args.posonlyargs, *args.args, *args.kwonlyargs,
            *([args.vararg] if args.vararg else []),
            *([args.kwarg] if args.kwarg else []),
        ]
    }
    if not isinstance(function, ast.Lambda):
        for node in walk_local(function):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    for child in ast.walk(target):
                        if isinstance(child, ast.Name):
                            names.add(child.id)
            elif isinstance(node, (ast.AnnAssign, ast.NamedExpr)):
                if isinstance(node.target, ast.Name):
                    names.add(node.target.id)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                for child in ast.walk(node.target):
                    if isinstance(child, ast.Name):
                        names.add(child.id)
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if item.optional_vars is not None:
                        for child in ast.walk(item.optional_vars):
                            if isinstance(child, ast.Name):
                                names.add(child.id)
    return names


@register
class FanoutCaptureRule(Rule):
    id = "R6"
    name = "fanout-capture"
    description = (
        "Closures submitted to FanOutPool.map may not capture and mutate "
        "shared mutable locals; tasks communicate via return values merged "
        "in input order."
    )
    # The kernels and the process fan-out widened where pool closures
    # live: storage/lattice helpers now run inside pool tasks too.
    default_scope = (
        "repro.core",
        "repro.service",
        "repro.storage",
        "repro.lattice",
        "repro.shard",
        "repro.profiling",
        "repro.fd",
        "repro.ind",
    )

    @property
    def allow_names(self) -> tuple[str, ...]:
        return tuple(self.option("allow_names", []))

    def check(self, module: ModuleFile) -> Iterator[Finding]:
        for scope_node in ast.walk(module.tree):
            if not isinstance(scope_node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            submitted = self._submitted_callables(scope_node)
            for target in submitted:
                yield from self._check_closure(module, target)

    def _submitted_callables(
        self, scope_node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> list[ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda]:
        """Callables passed to a pool's .map() within this function."""
        local_defs = {
            child.name: child
            for child in walk_local(scope_node)
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        found: list[ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda] = []
        for node in walk_local(scope_node):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("map", "submit")
                and node.args
            ):
                continue
            receiver = dotted_name(node.func.value) or ""
            if "pool" not in receiver.lower():
                continue
            fn = node.args[0]
            if isinstance(fn, ast.Lambda):
                found.append(fn)
            elif isinstance(fn, ast.Name) and fn.id in local_defs:
                found.append(local_defs[fn.id])
        return found

    def _check_closure(
        self,
        module: ModuleFile,
        function: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda,
    ) -> Iterator[Finding]:
        locals_ = _local_names(function) | set(self.allow_names)
        body = function.body if isinstance(function.body, list) else [function.body]
        label = getattr(function, "name", "<lambda>")
        for stmt_root in body:
            for node in ast.walk(stmt_root):
                yield from self._mutation_findings(module, node, locals_, label)

    def _mutation_findings(
        self, module: ModuleFile, node: ast.AST, locals_: set[str], label: str
    ) -> Iterator[Finding]:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)
                    and target.value.id not in locals_
                ):
                    yield module.finding(
                        self,
                        node,
                        f"pool task {label!r} writes into captured "
                        f"{target.value.id!r}: return the value and let the "
                        "caller merge in input order",
                    )
        elif isinstance(node, ast.AugAssign):
            target = node.target
            base = target.value if isinstance(target, ast.Subscript) else target
            if isinstance(base, ast.Name) and base.id not in locals_:
                yield module.finding(
                    self,
                    node,
                    f"pool task {label!r} updates captured {base.id!r} "
                    "in place: return the value and let the caller merge",
                )
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            receiver = node.func.value
            if (
                node.func.attr in _MUTATING_METHODS
                and isinstance(receiver, ast.Name)
                and receiver.id not in locals_
            ):
                yield module.finding(
                    self,
                    node,
                    f"pool task {label!r} calls .{node.func.attr}() on "
                    f"captured {receiver.id!r}: return the value and let "
                    "the caller merge in input order",
                )
