"""R8 ``unsynchronized-shared-state``: guarded writes on shared classes.

A handful of classes are *structurally* thread-shared: the tenant
manager's registry is hit by HTTP threads and the supervisor loop, each
ingest queue by producer threads and its writer thread, the metrics
registry by every worker, the shard merger by the fan-out pool. For
those classes, every write to instance state must happen inside a
held-lock region -- this PR alone fixed five violations that had crept
in (worker result appends, the supervisor's thread handle and event
log, the manager's close-out bookkeeping), all of the shape this rule
now rejects.

A method of a class named in ``shared_classes`` may write
``self.<attr>`` (assignment, ``del``, or a mutating method call like
``.append``/``.pop``) only when:

* the write is lexically inside a ``with <lock>:`` region, or
* the method is constructor-phase (``__init__``/``__post_init__``),
  the at-fork reset hook (single-threaded by construction), or named
  ``*_locked`` (the project convention for caller-holds-the-lock
  helpers), or
* every *resolved call site* of the method in the whole program holds
  a lock at the call point (interprocedural grace for private helpers
  invoked under the caller's lock), or
* the attribute's value is itself a synchronization primitive
  (``Event``: its mutators are internally locked) or listed in the
  ``unguarded_attrs`` option with a written rationale in
  ``pyproject.toml``.

``.set`` is deliberately absent from the mutator list --
``Event.set()`` is the idiomatic cross-thread signal and internally
synchronized.
"""

from __future__ import annotations

from typing import Iterator

from repro.lint.findings import Finding, ModuleFile
from repro.lint.interproc import AttrWrite, ProgramIndex
from repro.lint.rules import Rule, register

_MUTATORS = {
    "append", "appendleft", "extend", "insert", "add", "update",
    "setdefault", "pop", "popitem", "popleft", "remove", "discard",
    "clear", "sort", "reverse", "move_to_end",
}

_EXEMPT_METHODS = {"__init__", "__post_init__", "_reset_locks_after_fork"}

# Attribute types whose mutators synchronize internally.
_SELF_SYNCHRONIZED_TYPES = {"Event"}

_DEFAULT_SHARED = [
    "TenantManager",
    "FleetSupervisor",
    "IngestQueue",
    "MetricsRegistry",
    "GlobalProfileMerger",
]


@register
class SharedStateRule(Rule):
    id = "R8"
    name = "unsynchronized-shared-state"
    description = (
        "Methods of thread-shared classes must write instance attributes "
        "only inside held-lock regions (or from call sites that hold one)."
    )
    default_scope = ("repro",)

    def check(self, module: ModuleFile) -> Iterator[Finding]:
        return iter(())  # whole-program rule: all work is in finalize

    def finalize(self, modules: list[ModuleFile]) -> Iterator[Finding]:
        shared = set(self.option("shared_classes", _DEFAULT_SHARED))
        unguarded = set(self.option("unguarded_attrs", []))
        index = ProgramIndex.build(modules)
        for name in sorted(shared):
            info = index.classes.get(name)
            if info is None:
                continue
            for method in sorted(info.methods):
                if method in _EXEMPT_METHODS or method.endswith("_locked"):
                    continue
                func = index.functions.get(f"{name}.{method}")
                if func is None:
                    continue
                for write in func.writes:
                    if not self._is_violation(
                        index, info, func.key, write, unguarded
                    ):
                        continue
                    yield Finding(
                        rule=self.id,
                        name=self.name,
                        severity=self.default_severity,
                        path=func.module.path,
                        line=getattr(write.node, "lineno", 1),
                        col=getattr(write.node, "col_offset", 0),
                        symbol=func.key,
                        message=(
                            f"{func.key} writes self.{write.attr} "
                            f"({self._verb(write)}) outside any held-lock "
                            f"region, and {name} is thread-shared"
                        ),
                    )

    def _is_violation(
        self,
        index: ProgramIndex,
        cls: "object",
        method_key: str,
        write: AttrWrite,
        unguarded: set[str],
    ) -> bool:
        if write.held:
            return False
        if write.kind.startswith("call:"):
            if write.kind.removeprefix("call:") not in _MUTATORS:
                return False
        attr_type = cls.attr_types.get(write.attr)  # type: ignore[attr-defined]
        if attr_type is not None and attr_type.name in _SELF_SYNCHRONIZED_TYPES:
            return False
        if f"{cls.name}.{write.attr}" in unguarded:  # type: ignore[attr-defined]
            return False
        # Interprocedural grace: a private helper whose every resolved
        # call site already holds a lock is guarded by convention.
        callers = index.callers_of(method_key)
        if callers and all(call.held for call in callers):
            return False
        return True

    @staticmethod
    def _verb(write: AttrWrite) -> str:
        if write.kind.startswith("call:"):
            return f".{write.kind.removeprefix('call:')}()"
        if write.kind == "del":
            return "del"
        return "assignment" if not write.nested else "nested assignment"
