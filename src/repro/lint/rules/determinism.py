"""R4 ``determinism``: the profiling core must be bit-reproducible.

Parallel fan-out, the cross-batch partition cache, and recovery replay
are all validated by *bit-identical profile* comparisons (the
cache/parallel property tests, the vectorized-vs-reference pipeline,
the chaos sweep's exhaustive verification). That methodology only
works if ``repro.core`` / ``repro.lattice`` / ``repro.storage`` are
deterministic functions of their inputs:

* no wall-clock or RNG calls (``random``, ``time.time``,
  ``datetime.now``) -- seeds and clocks are injected at the service
  layer where they belong. The one sanctioned RNG shape is
  *explicitly seeded construction*, ``random.Random(seed)``: that is
  the injected-seed pattern itself (the synthetic dataset generators
  derive per-column RNGs this way), so it and a plain
  ``import random`` serving only such constructions are allowed,
  while ``random.Random()`` (ambient seed) and every module-level
  ``random.*`` function stay banned;
* no unordered ``set`` iteration feeding ordered output
  (``list(set(...))``, ``tuple(set(...))``, ``join(set(...))``) --
  hash randomization makes that order vary across *processes*, which
  is exactly the gap between "passes locally" and "recovery replays a
  different profile". Use ``sorted(...)`` or ``dict.fromkeys(...)``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.findings import Finding, ModuleFile
from repro.lint.rules import Rule, call_name, register

_BANNED_CALLS = {
    "time.time": "inject a clock at the service layer",
    "time.time_ns": "inject a clock at the service layer",
    "datetime.now": "inject a clock at the service layer",
    "datetime.utcnow": "inject a clock at the service layer",
    "datetime.today": "inject a clock at the service layer",
    "datetime.datetime.now": "inject a clock at the service layer",
    "datetime.datetime.utcnow": "inject a clock at the service layer",
}
_ORDERED_CONSUMERS = {"list", "tuple"}


def _is_unordered(node: ast.AST) -> bool:
    """A set literal/comprehension/constructor: iteration order varies."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = call_name(node)
        return name in ("set", "frozenset")
    return False


@register
class DeterminismRule(Rule):
    id = "R4"
    name = "determinism"
    description = (
        "repro.core/repro.lattice/repro.storage may not call random/"
        "time.time/datetime.now or iterate an unordered set into ordered "
        "output; use sorted(...) (or dict.fromkeys for stable dedup)."
    )
    default_scope = (
        "repro.core",
        "repro.lattice",
        "repro.storage",
        "repro.shard",
        "repro.fd",
        "repro.ind",
        "repro.profiling",
        "repro.datasets",
    )

    def check(self, module: ModuleFile) -> Iterator[Finding]:
        # ``import random`` is fine when the module only *constructs*
        # explicitly seeded RNGs with it; the banned-call walk below
        # still flags every ambient use individually.
        ambient_random = any(
            self._is_ambient_random(node)
            for node in ast.walk(module.tree)
            if isinstance(node, ast.Call)
        )
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.split(".")[0] == "random" and ambient_random:
                        yield module.finding(
                            self,
                            node,
                            "import of the random module in deterministic "
                            "core code: inject a seeded RNG instead",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module is not None and node.module.split(".")[0] == "random":
                    yield module.finding(
                        self,
                        node,
                        "import from the random module in deterministic "
                        "core code: inject a seeded RNG instead",
                    )
            elif isinstance(node, ast.Call):
                yield from self._check_call(module, node)

    @staticmethod
    def _is_ambient_random(node: ast.Call) -> bool:
        """A ``random.*`` call that is not seeded RNG construction."""
        name = call_name(node)
        if name is None or not name.startswith("random."):
            return False
        if name == "random.Random" and (node.args or node.keywords):
            return False  # random.Random(seed): the injected-seed shape
        return True

    def _check_call(self, module: ModuleFile, node: ast.Call) -> Iterator[Finding]:
        name = call_name(node)
        if name is not None:
            if self._is_ambient_random(node):
                yield module.finding(
                    self,
                    node,
                    f"nondeterministic call {name}(): inject a seeded RNG "
                    "instead",
                )
                return
            if name in _BANNED_CALLS:
                yield module.finding(
                    self,
                    node,
                    f"wall-clock call {name}() in deterministic core code: "
                    f"{_BANNED_CALLS[name]}",
                )
                return
        # list(set(...)) / tuple(set(...))
        if (
            name in _ORDERED_CONSUMERS
            and len(node.args) == 1
            and _is_unordered(node.args[0])
        ):
            yield module.finding(
                self,
                node,
                f"{name}() over an unordered set: iteration order varies "
                "under hash randomization; use sorted(...) or "
                "dict.fromkeys(...) for stable dedup",
            )
            return
        # "...".join(set(...))
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "join"
            and len(node.args) == 1
            and _is_unordered(node.args[0])
        ):
            yield module.finding(
                self,
                node,
                "join() over an unordered set: iteration order varies "
                "under hash randomization; sort first",
            )
