"""R7 ``lock-order``: the static lock-acquisition graph must be acyclic.

The multi-tenant service stacks four lock layers -- supervisor over
manager over tenant over queue -- and every layer calls into the one
below while holding its own lock. That is fine exactly as long as
*every* path through the program acquires the layers in the same
direction; one inverted pair (a queue method calling back up into the
manager while holding the queue lock) is a latent deadlock that only
fires under the right thread interleaving, which is precisely the kind
of bug the test suite is worst at catching.

This rule builds the whole-program lock graph from
:mod:`repro.lint.interproc`: a directed edge ``A -> B`` means some code
path acquires lock ``B`` while holding lock ``A``, either lexically
(nested ``with`` blocks) or through any chain of resolved calls (a
method called under ``A`` that may acquire ``B``). Any cycle in that
graph is reported with one concrete witness path per strongly
connected component.

Attributes that hold the *same* runtime lock object under two names
(``TenantWorker.lock`` is handed ``Tenant.lock`` at construction) are
folded together via the ``aliases`` option before edges are drawn::

    [tool.reprolint.rules.R7.aliases]
    "TenantWorker.lock" = "Tenant.lock"

The runtime half of this gate is the lock-order sanitizer
(:mod:`repro.sanitize.locks`), which checks the *dynamic* acquisition
graph of every sanitized test run against the same invariant.
"""

from __future__ import annotations

from typing import Iterator

from repro.lint.findings import Finding, ModuleFile
from repro.lint.interproc import (
    LockEdge,
    ProgramIndex,
    build_lock_graph,
    find_lock_cycles,
)
from repro.lint.rules import Rule, register


@register
class LockOrderRule(Rule):
    id = "R7"
    name = "lock-order"
    description = (
        "The static acquired-while-holding graph over all project locks "
        "must be acyclic; any cycle is a latent deadlock."
    )
    default_scope = ("repro",)

    def check(self, module: ModuleFile) -> Iterator[Finding]:
        return iter(())  # whole-program rule: all work is in finalize

    def finalize(self, modules: list[ModuleFile]) -> Iterator[Finding]:
        raw_aliases = self.option("aliases", {})
        aliases = {
            str(key): str(value) for key, value in dict(raw_aliases).items()
        }
        index = ProgramIndex.build(modules)
        edges = build_lock_graph(index, aliases)
        for cycle in find_lock_cycles(edges):
            yield self._cycle_finding(cycle)

    def _cycle_finding(self, cycle: list[LockEdge]) -> Finding:
        order = " -> ".join([cycle[0].src, *[edge.dst for edge in cycle]])
        witnesses = "; ".join(
            f"{edge.src} held while taking {edge.dst} at {edge.witness}"
            for edge in cycle
        )
        anchor = cycle[0]
        return Finding(
            rule=self.id,
            name=self.name,
            severity=self.default_severity,
            path=anchor.path,
            line=anchor.line,
            col=0,
            symbol=anchor.symbol,
            message=f"lock-order cycle {order}: {witnesses}",
        )
