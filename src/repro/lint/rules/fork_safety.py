"""R9 ``fork-safety``: nothing fork-hostile crosses a process fan-out.

:class:`~repro.core.parallel.ProcessFanOut` forks workers that inherit
the parent's entire address space -- including every lock, in whatever
state some *other* thread had it at the fork instant. PR 8 debugged
exactly this: a ``PartitionCache`` lock held by a service thread at
fork time deadlocked the child's first cache probe. The fix (an
at-fork reset registry, now :func:`repro.sanitize.register_fork_owner`)
was mechanism; this rule is the checked invariant that the mechanism
is actually used.

Two checks:

* **Ownership invariant** -- any class that constructs a lock
  attribute (``threading.Lock``/``RLock``/``Condition`` or the
  sanitizer factories) must call ``register_fork_owner(self)`` in its
  constructor, so forked children get fresh unlocked locks. This is
  what the verbatim PR 8 bug shape fails.
* **Closure reachability** -- a task submitted to a process pool must
  not capture fork-hostile state: a lock-owning class that skipped
  registration (reachable transitively through attribute types), an
  open file handle (parent and child would share one file offset), a
  socket, or a live generator (its frame state is duplicated; both
  sides advancing it diverge silently).

The runtime complement is the sanitizer's at-fork hook, which reports
any sanitized lock still held by another thread at fork time.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.findings import Finding, ModuleFile
from repro.lint.interproc import ClassInfo, FunctionInfo, ProgramIndex, dotted
from repro.lint.rules import Rule, register

_SUBMIT_METHODS = ("map", "submit")
_MAX_REACH_DEPTH = 4


def _pool_submissions(
    func: FunctionInfo,
) -> Iterator[tuple[ast.Call, ast.expr]]:
    """(call, task-callable-expr) for every pool submission in ``func``."""
    for node in ast.walk(func.node):
        if not isinstance(node, ast.Call) or not node.args:
            continue
        callee = node.func
        if (
            not isinstance(callee, ast.Attribute)
            or callee.attr not in _SUBMIT_METHODS
        ):
            continue
        receiver = dotted(callee.value) or ""
        if "pool" not in receiver.lower():
            continue
        yield node, node.args[0]


def _callable_body(
    func: FunctionInfo, task: ast.expr
) -> ast.AST | None:
    """The AST of the submitted callable, when defined in ``func``."""
    if isinstance(task, ast.Lambda):
        return task
    if isinstance(task, ast.Name):
        for node in ast.walk(func.node):
            if (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node.name == task.id
            ):
                return node
    return None


def _captured_names(body: ast.AST) -> set[str]:
    """Names the callable loads but does not bind itself."""
    bound: set[str] = set()
    if isinstance(body, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
        args = body.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            bound.add(arg.arg)
        if args.vararg:
            bound.add(args.vararg.arg)
        if args.kwarg:
            bound.add(args.kwarg.arg)
    loads: set[str] = set()
    for node in ast.walk(body):
        if isinstance(node, ast.Name):
            if isinstance(node.ctx, ast.Store):
                bound.add(node.id)
            elif isinstance(node.ctx, ast.Load):
                loads.add(node.id)
    return loads - bound


@register
class ForkSafetyRule(Rule):
    id = "R9"
    name = "fork-safety"
    description = (
        "Lock-owning classes must register with the at-fork reset "
        "registry, and process fan-out tasks must not capture locks "
        "without reset, open file handles, sockets, or live generators."
    )
    default_scope = ("repro",)

    def check(self, module: ModuleFile) -> Iterator[Finding]:
        return iter(())  # whole-program rule: all work is in finalize

    def finalize(self, modules: list[ModuleFile]) -> Iterator[Finding]:
        index = ProgramIndex.build(modules)
        in_scope = {module.module for module in modules}
        yield from self._check_ownership(index, in_scope)
        yield from self._check_closures(index)

    # ------------------------------------------------------------------
    # Ownership invariant
    # ------------------------------------------------------------------
    def _check_ownership(
        self, index: ProgramIndex, in_scope: set[str]
    ) -> Iterator[Finding]:
        for name in sorted(index.classes):
            info = index.classes[name]
            if info.module.module not in in_scope:
                continue
            if not info.locks or info.registers_fork_owner:
                continue
            attrs = ", ".join(sorted(info.locks))
            yield Finding(
                rule=self.id,
                name=self.name,
                severity=self.default_severity,
                path=info.module.path,
                line=info.node.lineno,
                col=info.node.col_offset,
                symbol=info.name,
                message=(
                    f"class {info.name} owns lock attribute(s) {attrs} but "
                    f"never calls register_fork_owner(self); forked workers "
                    f"inherit these locks in whatever state another thread "
                    f"held them (the PR 8 PartitionCache deadlock)"
                ),
            )

    # ------------------------------------------------------------------
    # Closure reachability
    # ------------------------------------------------------------------
    def _check_closures(self, index: ProgramIndex) -> Iterator[Finding]:
        for key in sorted(index.functions):
            func = index.functions[key]
            for call, task in _pool_submissions(func):
                body = _callable_body(func, task)
                if body is None:
                    continue
                for name in sorted(_captured_names(body)):
                    yield from self._check_capture(index, func, call, name)

    def _check_capture(
        self,
        index: ProgramIndex,
        func: FunctionInfo,
        call: ast.Call,
        name: str,
    ) -> Iterator[Finding]:
        hazard = self._value_hazard(index, func, name)
        if hazard is None:
            ref = func.var_types.get(name)
            if ref is not None and ref.name:
                hazard = self._class_hazard(index, ref.name)
        if hazard is None:
            return
        yield Finding(
            rule=self.id,
            name=self.name,
            severity=self.default_severity,
            path=func.module.path,
            line=call.lineno,
            col=call.col_offset,
            symbol=func.key,
            message=(
                f"process fan-out task in {func.key} captures {name!r}, "
                f"which {hazard}; forked children duplicate this state"
            ),
        )

    def _value_hazard(
        self, index: ProgramIndex, func: FunctionInfo, name: str
    ) -> str | None:
        """Hazards visible from how ``name`` is assigned in ``func``."""
        for node in ast.walk(func.node):
            if not isinstance(node, ast.Assign):
                continue
            if not any(
                isinstance(t, ast.Name) and t.id == name for t in node.targets
            ):
                continue
            value = node.value
            if isinstance(value, ast.GeneratorExp):
                return "is a live generator"
            if isinstance(value, ast.Call):
                callee = dotted(value.func) or ""
                simple = callee.split(".")[-1]
                if simple in ("open", "open_"):
                    return "is an open file handle"
                if simple == "socket" or callee.endswith("socket.socket"):
                    return "is a socket"
                target = index._resolve_call_key(value, func)
                if target in index.generator_functions:
                    return f"is a live generator (from {target})"
        return None

    def _class_hazard(self, index: ProgramIndex, root: str) -> str | None:
        """Fork hazards reachable through the attribute-type graph."""
        seen: set[str] = set()
        frontier = [(root, 0, root)]
        while frontier:
            name, depth, path = frontier.pop()
            if name in seen or depth > _MAX_REACH_DEPTH:
                continue
            seen.add(name)
            info = index.classes.get(name)
            if info is None:
                continue
            hazard = self._direct_class_hazard(info, path)
            if hazard is not None:
                return hazard
            for attr, ref in sorted(info.attr_types.items()):
                for nxt in (ref.name, ref.elem):
                    if nxt and nxt in index.classes:
                        frontier.append((nxt, depth + 1, f"{path}.{attr}"))
        return None

    @staticmethod
    def _direct_class_hazard(info: ClassInfo, path: str) -> str | None:
        if info.locks and not info.registers_fork_owner:
            attrs = ", ".join(sorted(info.locks))
            return (
                f"reaches {info.name} (via {path}) owning unregistered "
                f"lock(s) {attrs}"
            )
        if info.file_handle_attrs:
            attrs = ", ".join(sorted(info.file_handle_attrs))
            return (
                f"reaches {info.name} (via {path}) holding open file "
                f"handle(s) {attrs}"
            )
        return None
