"""R1 ``no-raw-io``: every filesystem effect goes through ``fsops``.

The chaos sweep (:mod:`repro.faults.chaos`) proves "no wrong
MUCS/MNUCS is ever served" by injecting faults at every *registered*
site -- a raw ``open``/``os.replace`` in a durability path is a write
the sweep can never fault, i.e. a recovery path with zero test
coverage. PR 2 routed the changelog/snapshot/table hot paths through
:mod:`repro.faults.fsops`; this rule keeps every later filesystem touch
in ``repro.service`` / ``repro.storage`` honest.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.findings import Finding, ModuleFile
from repro.lint.rules import Rule, dotted_name, register

_BANNED_DOTTED = {
    "os.replace": "fsops.replace",
    "os.rename": "fsops.rename",
    "os.fsync": "fsops.fsync",
    "os.remove": "fsops.remove",
    "os.unlink": "fsops.remove",
}
_BANNED_METHODS = {
    "write_text": "fsops.write on an fsops.open_ handle",
    "write_bytes": "fsops.write on an fsops.open_ handle",
}


@register
class RawIoRule(Rule):
    id = "R1"
    name = "no-raw-io"
    description = (
        "Direct open/os.replace/os.rename/os.fsync/Path.write_* calls are "
        "banned in repro.service and repro.storage; filesystem effects must "
        "go through repro.faults.fsops registered sites so the chaos sweep "
        "covers them."
    )
    default_scope = (
        "repro.service",
        "repro.storage",
        "repro.tenants",
        "repro.server",
        "repro.shard",
        "repro.profiling",
        "repro.datasets",
    )

    def check(self, module: ModuleFile) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            target = dotted_name(node.func)
            if target == "open":
                yield module.finding(
                    self,
                    node,
                    "raw open() call: use fsops.open_(<site>, ...) so the "
                    "fault sweep covers this read/write path",
                )
                continue
            if target in _BANNED_DOTTED:
                yield module.finding(
                    self,
                    node,
                    f"raw {target}() call: use {_BANNED_DOTTED[target]} "
                    "with a registered fault site",
                )
                continue
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _BANNED_METHODS
            ):
                yield module.finding(
                    self,
                    node,
                    f"raw .{node.func.attr}() call: use "
                    f"{_BANNED_METHODS[node.func.attr]}",
                )
