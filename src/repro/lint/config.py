"""Path-scoped lint configuration from ``[tool.reprolint]``.

Each rule carries a built-in default scope (the module prefixes it
applies to); ``pyproject.toml`` can narrow/extend that per rule, flip
severities, disable rules, and feed rule-specific options::

    [tool.reprolint]
    baseline = "tools/reprolint-baseline.json"
    exclude = ["tests/lint/snippets"]

    [tool.reprolint.rules.R1]
    exclude_modules = ["repro.service.cli"]

``tomllib`` ships with Python 3.11+; on 3.10 the config loader degrades
to built-in defaults rather than failing (the CI lint job pins a
tomllib-capable interpreter, so the gate itself never runs degraded).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

try:  # pragma: no cover - import guard is environment-dependent
    import tomllib
except ModuleNotFoundError:  # pragma: no cover - Python 3.10 fallback
    tomllib = None  # type: ignore[assignment]

DEFAULT_EXCLUDE_DIRS = (
    "__pycache__",
    ".git",
    ".hypothesis",
    "build",
    "dist",
    "bench_results",
)


@dataclass
class RuleConfig:
    """Per-rule overrides; unset fields fall back to rule defaults."""

    enabled: bool = True
    severity: str | None = None
    include: tuple[str, ...] | None = None  # module-prefix scope override
    exclude_modules: tuple[str, ...] = ()
    options: dict[str, Any] = field(default_factory=dict)


@dataclass
class LintConfig:
    """The resolved ``[tool.reprolint]`` section."""

    baseline: str | None = "tools/reprolint-baseline.json"
    exclude: tuple[str, ...] = ()  # path prefixes (repo-relative, posix)
    exclude_dirs: tuple[str, ...] = DEFAULT_EXCLUDE_DIRS
    rules: dict[str, RuleConfig] = field(default_factory=dict)

    def rule(self, rule_id: str) -> RuleConfig:
        return self.rules.setdefault(rule_id, RuleConfig())

    def excludes_path(self, path: str) -> bool:
        return any(
            path == prefix or path.startswith(prefix.rstrip("/") + "/")
            for prefix in self.exclude
        )


def _as_str_tuple(value: Any, context: str) -> tuple[str, ...]:
    if not isinstance(value, list) or not all(
        isinstance(item, str) for item in value
    ):
        raise ValueError(f"{context} must be a list of strings, got {value!r}")
    return tuple(value)


def _rule_config(raw: dict[str, Any], rule_id: str) -> RuleConfig:
    config = RuleConfig()
    options = dict(raw)
    if "enabled" in options:
        config.enabled = bool(options.pop("enabled"))
    if "severity" in options:
        severity = options.pop("severity")
        if severity not in ("error", "warning"):
            raise ValueError(
                f"rule {rule_id}: severity must be 'error' or 'warning', "
                f"got {severity!r}"
            )
        config.severity = severity
    if "include" in options:
        config.include = _as_str_tuple(
            options.pop("include"), f"rule {rule_id}: include"
        )
    if "exclude_modules" in options:
        config.exclude_modules = _as_str_tuple(
            options.pop("exclude_modules"), f"rule {rule_id}: exclude_modules"
        )
    config.options = options
    return config


def parse_config(section: dict[str, Any]) -> LintConfig:
    """Build a :class:`LintConfig` from a ``[tool.reprolint]`` mapping."""
    config = LintConfig()
    section = dict(section)
    if "baseline" in section:
        baseline = section.pop("baseline")
        if baseline is not None and not isinstance(baseline, str):
            raise ValueError(f"baseline must be a string, got {baseline!r}")
        config.baseline = baseline
    if "exclude" in section:
        config.exclude = _as_str_tuple(section.pop("exclude"), "exclude")
    if "exclude_dirs" in section:
        config.exclude_dirs = _as_str_tuple(
            section.pop("exclude_dirs"), "exclude_dirs"
        )
    for rule_id, raw in section.pop("rules", {}).items():
        if not isinstance(raw, dict):
            raise ValueError(f"rule {rule_id}: expected a table, got {raw!r}")
        config.rules[rule_id.upper()] = _rule_config(raw, rule_id)
    if section:
        raise ValueError(
            f"unknown [tool.reprolint] keys: {sorted(section)}"
        )
    return config


def load_config(pyproject_path: str | None) -> LintConfig:
    """Load ``[tool.reprolint]`` from a pyproject file (defaults if absent)."""
    if pyproject_path is None or tomllib is None:
        return LintConfig()
    try:
        with open(pyproject_path, "rb") as handle:
            document = tomllib.load(handle)
    except FileNotFoundError:
        return LintConfig()
    section = document.get("tool", {}).get("reprolint", {})
    return parse_config(section)
