"""The lint driver: discover files, parse, run rules, apply baselines.

Scoping model: every rule carries default module-name prefixes
(``Rule.default_scope``); the per-rule config can override them
(``include``) and punch holes (``exclude_modules``). Module names are
derived from repo-relative paths (``src/repro/storage/pli.py`` ->
``repro.storage.pli``; ``tests/core/test_swan.py`` ->
``tests.core.test_swan``), so scanning ``tests tools benchmarks`` is
cheap -- domain rules simply don't match those prefixes unless
configured to.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.lint.baseline import Baseline
from repro.lint.config import LintConfig
from repro.lint.findings import Finding, ModuleFile
from repro.lint.rules import Rule, all_rules

SCHEMA_VERSION = 1


@dataclass
class LintResult:
    """Everything one lint run produced."""

    findings: list[Finding] = field(default_factory=list)  # live failures
    baselined: list[Finding] = field(default_factory=list)
    suppressed: int = 0
    stale_baseline_entries: list[str] = field(default_factory=list)
    files_scanned: int = 0
    parse_errors: list[str] = field(default_factory=list)

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == "error"]

    @property
    def warnings(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == "warning"]

    @property
    def ok(self) -> bool:
        return not self.errors and not self.parse_errors

    def to_dict(self) -> dict[str, object]:
        return {
            "version": SCHEMA_VERSION,
            "files_scanned": self.files_scanned,
            "findings": [finding.to_dict() for finding in self.findings],
            "baselined": [finding.to_dict() for finding in self.baselined],
            "stale_baseline_entries": list(self.stale_baseline_entries),
            "parse_errors": list(self.parse_errors),
            "summary": {
                "errors": len(self.errors),
                "warnings": len(self.warnings),
                "baselined": len(self.baselined),
                "suppressed": self.suppressed,
            },
        }


def module_name_for(relpath: str) -> str:
    """Dotted module name for a repo-relative posix path."""
    parts = relpath.split("/")
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(part for part in parts if part)


def discover_files(
    paths: list[str], root: str, config: LintConfig
) -> list[str]:
    """Repo-relative posix paths of every python file under ``paths``."""
    found: list[str] = []
    skip_dirs = set(config.exclude_dirs)
    for raw in paths:
        absolute = raw if os.path.isabs(raw) else os.path.join(root, raw)
        if os.path.isfile(absolute):
            relative = os.path.relpath(absolute, root).replace(os.sep, "/")
            if not config.excludes_path(relative):
                found.append(relative)
            continue
        for dirpath, dirnames, filenames in os.walk(absolute):
            dirnames[:] = sorted(
                name for name in dirnames if name not in skip_dirs
            )
            for filename in sorted(filenames):
                if not filename.endswith(".py"):
                    continue
                relative = os.path.relpath(
                    os.path.join(dirpath, filename), root
                ).replace(os.sep, "/")
                if not config.excludes_path(relative):
                    found.append(relative)
    return sorted(set(found))


def parse_modules(
    relpaths: list[str], root: str, result: LintResult
) -> list[ModuleFile]:
    modules: list[ModuleFile] = []
    for relpath in relpaths:
        absolute = os.path.join(root, relpath)
        try:
            with open(absolute, encoding="utf-8") as handle:
                source = handle.read()
            module = ModuleFile.parse(relpath, module_name_for(relpath), source)
        except (OSError, SyntaxError, ValueError) as exc:
            result.parse_errors.append(f"{relpath}: {exc}")
            continue
        if not module.skip_file:
            modules.append(module)
    result.files_scanned = len(modules)
    return modules


def _in_scope(module: ModuleFile, rule: Rule, include: tuple[str, ...],
              exclude_modules: tuple[str, ...]) -> bool:
    name = module.module
    if any(
        name == banned or name.startswith(banned + ".")
        for banned in exclude_modules
    ):
        return False
    return any(
        prefix == "" or name == prefix or name.startswith(prefix + ".")
        for prefix in include
    )


def run_lint(
    paths: list[str],
    root: str,
    config: LintConfig,
    baseline: Baseline | None = None,
    select: set[str] | None = None,
) -> LintResult:
    """Run every enabled rule over ``paths``; returns the full result."""
    result = LintResult()
    relpaths = discover_files(paths, root, config)
    modules = parse_modules(relpaths, root, result)

    raw_findings: list[Finding] = []
    for rule_class in all_rules():
        rule_config = config.rule(rule_class.id)
        if not rule_config.enabled:
            continue
        if select is not None and rule_class.id not in select:
            continue
        rule = rule_class(rule_config.options)
        include = (
            rule_config.include
            if rule_config.include is not None
            else rule_class.default_scope
        )
        scoped = [
            module
            for module in modules
            if _in_scope(module, rule, include, rule_config.exclude_modules)
        ]
        severity = rule_config.severity
        for module in scoped:
            for finding in rule.check(module):
                raw_findings.append(
                    _resolve_severity(finding, severity)
                )
        for finding in rule.finalize(scoped):
            raw_findings.append(_resolve_severity(finding, severity))

    modules_by_path = {module.path: module for module in modules}
    kept: list[Finding] = []
    for finding in raw_findings:
        module = modules_by_path.get(finding.path)
        if module is not None and module.suppresses(finding.rule, finding.line):
            result.suppressed += 1
            continue
        kept.append(finding)
    kept.sort(key=lambda f: (f.path, f.line, f.col, f.rule, f.message))

    if baseline is not None and len(baseline):
        for finding in kept:
            if finding in baseline:
                result.baselined.append(finding)
            else:
                result.findings.append(finding)
        result.stale_baseline_entries = baseline.stale_entries(kept)
    else:
        result.findings = kept
    return result


def _resolve_severity(finding: Finding, severity: str | None) -> Finding:
    # A config-level severity override only *downgrades or upgrades* the
    # rule default; findings a rule already emitted as warnings (e.g.
    # R5's dynamic-name advisory) keep their softer level.
    if severity is None or finding.severity == "warning":
        return finding
    if severity == finding.severity:
        return finding
    return Finding(
        rule=finding.rule,
        name=finding.name,
        severity=severity,
        path=finding.path,
        line=finding.line,
        col=finding.col,
        symbol=finding.symbol,
        message=finding.message,
    )
