"""``repro-lint`` / ``python -m repro.lint``: the self-hosted gate.

Exit codes: 0 clean (warnings and baselined findings allowed), 1 at
least one non-baselined error finding (or a parse failure), 2 bad
usage / broken configuration.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.lint.baseline import Baseline
from repro.lint.config import LintConfig, load_config
from repro.lint.engine import LintResult, run_lint
from repro.lint.rules import all_rules

DEFAULT_PATHS = ["src", "tests", "tools", "benchmarks"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "AST-based static analysis enforcing this codebase's "
            "correctness invariants (rule catalog: docs/static-analysis.md)."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=None,
        help=f"files/directories to lint (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--root", default=".",
        help="repository root (pyproject.toml location; default: cwd)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--baseline", default=None,
        help="suppression-baseline file (default: [tool.reprolint].baseline)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore the baseline; report every finding as live",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="grandfather every current finding into the baseline and exit 0",
    )
    parser.add_argument(
        "--select", default=None,
        help="comma-separated rule IDs to run (default: all enabled)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def _list_rules() -> int:
    for rule_class in all_rules():
        scope = ", ".join(rule_class.default_scope)
        print(f"{rule_class.id} [{rule_class.name}] ({rule_class.default_severity})")
        print(f"    scope: {scope}")
        print(f"    {rule_class.description}")
    return 0


def _print_text(result: LintResult, baseline_path: str | None) -> None:
    for finding in result.findings:
        print(finding.render())
    for error in result.parse_errors:
        print(f"parse error: {error}")
    summary = result.to_dict()["summary"]
    bits = [
        f"{result.files_scanned} files",
        f"{summary['errors']} error(s)",  # type: ignore[index]
        f"{summary['warnings']} warning(s)",  # type: ignore[index]
    ]
    if result.baselined:
        bits.append(f"{len(result.baselined)} baselined")
    if result.suppressed:
        bits.append(f"{result.suppressed} suppressed inline")
    print("repro-lint: " + ", ".join(bits))
    if result.stale_baseline_entries:
        print(
            f"note: {len(result.stale_baseline_entries)} stale baseline "
            f"entr{'y' if len(result.stale_baseline_entries) == 1 else 'ies'} "
            f"in {baseline_path} (fixed findings; prune them):"
        )
        for entry in result.stale_baseline_entries:
            print(f"  - {entry}")


def main(argv: list[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        return _list_rules()

    root = os.path.abspath(args.root)
    try:
        config = load_config(os.path.join(root, "pyproject.toml"))
    except (ValueError, OSError) as exc:
        print(f"repro-lint: bad configuration: {exc}", file=sys.stderr)
        return 2

    baseline_rel = (
        args.baseline if args.baseline is not None else config.baseline
    )
    baseline: Baseline | None = None
    baseline_path: str | None = None
    if baseline_rel and not args.no_baseline:
        baseline_path = (
            baseline_rel
            if os.path.isabs(baseline_rel)
            else os.path.join(root, baseline_rel)
        )
        try:
            baseline = Baseline.load(baseline_path)
        except (ValueError, OSError, json.JSONDecodeError) as exc:
            print(f"repro-lint: bad baseline: {exc}", file=sys.stderr)
            return 2

    select: set[str] | None = None
    if args.select:
        select = {part.strip().upper() for part in args.select.split(",")}
        known = {rule.id for rule in all_rules()}
        unknown = select - known
        if unknown:
            print(
                f"repro-lint: unknown rule(s): {', '.join(sorted(unknown))}",
                file=sys.stderr,
            )
            return 2

    paths = args.paths or DEFAULT_PATHS
    paths = [path for path in paths if os.path.exists(
        path if os.path.isabs(path) else os.path.join(root, path)
    )]
    if not paths:
        print("repro-lint: no existing paths to lint", file=sys.stderr)
        return 2

    result = run_lint(paths, root, config, baseline=baseline, select=select)

    if args.write_baseline:
        target = baseline if baseline is not None else Baseline()
        for finding in result.findings:
            target.add(finding)
        if baseline_path is None:
            print(
                "repro-lint: --write-baseline needs a baseline path "
                "(config or --baseline)",
                file=sys.stderr,
            )
            return 2
        target.save(baseline_path)
        print(
            f"repro-lint: baselined {len(result.findings)} finding(s) "
            f"into {baseline_path}"
        )
        return 0

    if args.format == "json":
        print(json.dumps(result.to_dict(), indent=2))
    else:
        _print_text(result, baseline_path)
    return 0 if result.ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
