"""NCVoter-like synthetic dataset.

The real North Carolina Voter Registration file (7.5M rows, 94 columns)
is not redistributable; this generator reproduces its *profile shape*
rather than its bytes:

* a few near-key identifiers (registration number, NCID, phone);
* a handful of substantial person/address attributes (names, zip,
  registration date, precinct) whose combinations form the minimal
  uniques;
* functional dependencies a voter file carries (code -> description,
  zip -> city/county, county -> municipality);
* and -- crucial for a realistic minimal-unique structure -- a long
  tail of *dominated* columns: status flags, mail-address lines and
  codes where one value (often the empty string or a default) covers
  95%+ of the rows. Such columns almost never discriminate duplicate
  pairs, so they stay out of the minimal uniques, exactly as in the
  real file. Making them uniform-random instead would manufacture
  hundreds of thousands of artificial minimal uniques.

The paper's experiments use the first 40 columns; the substantial mix
lives in the leading columns here too. No single column is an exact
key, so minimal uniques are genuine multi-column combinations.
"""

from __future__ import annotations

from repro.datasets.synthetic import ColumnSpec, generate_relation
from repro.storage.relation import Relation

N_COLUMNS = 94

_LEADING_SPECS = [
    ColumnSpec("voter_reg_num", 0.995, skew=0.2),
    ColumnSpec("ncid", 0.99, skew=0.2, derived_from="voter_reg_num"),
    ColumnSpec("last_name", 0.06, skew=1.1),
    ColumnSpec("first_name", 0.02, skew=1.6, dominant=0.08),
    ColumnSpec("middle_name", 0.015, skew=1.2, dominant=0.70),
    ColumnSpec("phone_num", 0.85, skew=0.3),
    # Residence geography: zip drives city, county, precinct and (via
    # county) every district column; desc/abbrv pairs are exact renames.
    ColumnSpec("zip_code", 0.30, skew=1.0),
    ColumnSpec("res_city_desc", 0.30, skew=1.0, derived_from="zip_code"),
    ColumnSpec("county_id", 0.05, skew=0.8, derived_from="zip_code"),
    ColumnSpec("county_desc", 0.05, skew=0.8, derived_from="county_id"),
    ColumnSpec("state_cd", 1, skew=0.0),
    ColumnSpec("full_street_addr", 0.55, skew=0.8, derived_from="voter_reg_num"),
    ColumnSpec("mail_addr1", 0.55, skew=0.8, derived_from="full_street_addr"),
    # Mail fields are empty for most voters in the real file.
    ColumnSpec("mail_city", 0.30, skew=1.1, derived_from="res_city_desc", dominant=0.90),
    ColumnSpec("mail_zipcode", 0.30, skew=1.0, derived_from="zip_code", dominant=0.90),
    ColumnSpec("birth_age", 90, skew=0.6),
    ColumnSpec("birth_year", 90, skew=0.6, derived_from="birth_age"),
    ColumnSpec("age_group", 8, skew=0.7, derived_from="birth_age", dominant=0.70),
    ColumnSpec("registr_dt", 0.04, skew=0.8),
    # Precincts nest inside the residence geography: a function of zip.
    ColumnSpec("precinct_abbrv", 0.30, skew=1.0, derived_from="zip_code"),
    ColumnSpec("precinct_desc", 0.30, skew=1.0, derived_from="precinct_abbrv"),
    ColumnSpec("munic_abbrv", 0.05, skew=1.0, derived_from="county_id"),
    # Dominated flag / code columns: one value covers nearly all rows
    # (empty strings, default codes), as in the real voter file.
    ColumnSpec("status_cd", 4, skew=1.3, dominant=0.95),
    ColumnSpec("voter_status_desc", 4, skew=1.3, dominant=0.95),
    ColumnSpec("reason_cd", 15, skew=1.2, dominant=0.95),
    ColumnSpec("drivers_lic", 2, skew=0.4, dominant=0.94),
    ColumnSpec("race_code", 7, skew=1.2, dominant=0.90),
    ColumnSpec("ethnic_code", 3, skew=1.0, dominant=0.93),
    ColumnSpec("party_cd", 5, skew=1.1, dominant=0.85),
    ColumnSpec("gender_code", 3, skew=0.5, dominant=0.85),
    ColumnSpec("absent_ind", 2, skew=0.5, dominant=0.97),
    ColumnSpec("name_prefx_cd", 6, skew=1.4, dominant=0.985),
    ColumnSpec("name_suffix_lbl", 8, skew=1.4, dominant=0.96),
    ColumnSpec("birth_place", 60, skew=1.2, dominant=0.93),
    ColumnSpec("confidential_ind", 2, skew=0.3, dominant=0.995),
    ColumnSpec("load_dt", 4, skew=0.5, dominant=0.95),
    ColumnSpec("cancellation_dt", 50, skew=1.0, dominant=0.985),
    ColumnSpec("registr_src", 12, skew=1.2, dominant=0.95),
    ColumnSpec("mail_addr2", 0.02, skew=1.0, dominant=0.97),
    ColumnSpec("mail_addr3", 0.005, skew=1.0, dominant=0.99),
]

_DISTRICT_KINDS = [
    ("ward", 90),
    ("cong_dist", 13),
    ("super_court", 50),
    ("judic_dist", 40),
    ("nc_senate", 50),
    ("nc_house", 120),
    ("fire_dist", 35),
    ("water_dist", 25),
    ("school_dist", 115),
    ("rescue_dist", 20),
    ("sanit_dist", 12),
    ("township", 60),
    ("city_sch", 18),
]


def _tail_specs() -> list[ColumnSpec]:
    """District columns 41..94: functions of residence location, with
    the sparser district types dominated by 'not applicable'."""
    specs: list[ColumnSpec] = []
    position = 0
    while len(_LEADING_SPECS) + len(specs) < N_COLUMNS:
        kind, cardinality = _DISTRICT_KINDS[position % len(_DISTRICT_KINDS)]
        suffix = "_abbrv" if position % 2 else "_desc"
        # District membership is sparse in the real file: most voters
        # lie outside any given special district, so the 'not
        # applicable' value dominates every district column.
        dominant = 0.97 + (position % 3) * 0.01
        specs.append(
            ColumnSpec(
                f"{kind}{position // len(_DISTRICT_KINDS)}{suffix}",
                cardinality,
                skew=1.0 + (position % 5) * 0.1,
                derived_from="county_id",
                dominant=dominant,
            )
        )
        position += 1
    return specs


def ncvoter_specs(n_columns: int = 40) -> list[ColumnSpec]:
    """The first ``n_columns`` column specs (<= 94)."""
    if not 1 <= n_columns <= N_COLUMNS:
        raise ValueError(f"NCVoter has up to {N_COLUMNS} columns, got {n_columns}")
    all_specs = _LEADING_SPECS + _tail_specs()
    return all_specs[:n_columns]


def ncvoter_relation(n_rows: int, n_columns: int = 40, seed: int = 0) -> Relation:
    """Generate an NCVoter-like relation (first ``n_columns`` columns)."""
    return generate_relation(ncvoter_specs(n_columns), n_rows, seed=seed)
