"""TPC-H lineitem generator (dbgen semantics, configurable scale).

Implements the ``lineitem`` population rules of the TPC-H specification
closely enough for profiling workloads: each order carries 1-7 line
items numbered 1..k, part/supplier keys are uniform draws, quantities,
discounts and taxes come from the spec's discrete ranges, prices derive
from the part key, and the three dates are chained (ship -> commit ->
receipt) within the 1992-1998 window. ``(l_orderkey, l_linenumber)`` is
the relation's key, exactly as in TPC-H.

All 16 columns are emitted as strings (consistent with the other
generators and the CSV-backed table store).
"""

from __future__ import annotations

import random
from datetime import date, timedelta

from repro.storage.relation import Relation
from repro.storage.schema import Column, Schema

LINEITEM_COLUMNS = [
    "l_orderkey",
    "l_partkey",
    "l_suppkey",
    "l_linenumber",
    "l_quantity",
    "l_extendedprice",
    "l_discount",
    "l_tax",
    "l_returnflag",
    "l_linestatus",
    "l_shipdate",
    "l_commitdate",
    "l_receiptdate",
    "l_shipinstruct",
    "l_shipmode",
    "l_comment",
]

_SHIP_INSTRUCT = ["DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"]
_SHIP_MODE = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"]
_COMMENT_WORDS = [
    "carefully", "quickly", "furiously", "slyly", "blithely", "deposits",
    "packages", "requests", "accounts", "instructions", "foxes", "pending",
    "ironic", "express", "regular", "final", "bold", "silent", "even", "idle",
]
_EPOCH = date(1992, 1, 1)
_SHIP_WINDOW_DAYS = (date(1998, 8, 2) - _EPOCH).days


def lineitem_schema() -> Schema:
    return Schema([Column(name, "str") for name in LINEITEM_COLUMNS])


def _part_retail_price(part_key: int) -> float:
    # TPC-H: p_retailprice = (90000 + (partkey/10 % 20001) + 100*(partkey % 1000)) / 100
    return (90000 + (part_key // 10) % 20001 + 100 * (part_key % 1000)) / 100.0


def lineitem_rows(n_rows: int, seed: int = 0):
    """Yield lineitem rows until ``n_rows`` have been produced."""
    rng = random.Random(seed)
    # Scale the key spaces with the target size, mirroring dbgen ratios
    # (SF-1: 1.5M orders, 200k parts, 10k suppliers, ~6M lineitems).
    n_parts = max(200, n_rows // 30)
    n_suppliers = max(10, n_rows // 600)
    produced = 0
    order_key = 0
    while produced < n_rows:
        order_key += 1
        n_lines = rng.randint(1, 7)
        for line_number in range(1, n_lines + 1):
            if produced == n_rows:
                return
            part_key = rng.randint(1, n_parts)
            supp_key = rng.randint(1, n_suppliers)
            quantity = rng.randint(1, 50)
            extended_price = round(quantity * _part_retail_price(part_key), 2)
            discount = rng.randint(0, 10) / 100.0
            tax = rng.randint(0, 8) / 100.0
            ship_days = rng.randint(0, _SHIP_WINDOW_DAYS)
            ship_date = _EPOCH + timedelta(days=ship_days)
            commit_date = ship_date + timedelta(days=rng.randint(-60, 60))
            receipt_date = ship_date + timedelta(days=rng.randint(1, 30))
            if ship_date <= date(1995, 6, 17):
                return_flag = rng.choice(["R", "A"])
                line_status = "F"
            else:
                return_flag = "N"
                line_status = "O"
            comment = " ".join(
                rng.choice(_COMMENT_WORDS) for _ in range(rng.randint(2, 5))
            )
            yield (
                str(order_key),
                str(part_key),
                str(supp_key),
                str(line_number),
                str(quantity),
                f"{extended_price:.2f}",
                f"{discount:.2f}",
                f"{tax:.2f}",
                return_flag,
                line_status,
                ship_date.isoformat(),
                commit_date.isoformat(),
                receipt_date.isoformat(),
                rng.choice(_SHIP_INSTRUCT),
                rng.choice(_SHIP_MODE),
                comment,
            )
            produced += 1


def lineitem_relation(n_rows: int, n_columns: int = 16, seed: int = 0) -> Relation:
    """Generate a lineitem relation (optionally a column prefix)."""
    if not 1 <= n_columns <= 16:
        raise ValueError(f"lineitem has 16 columns, got {n_columns}")
    relation = Relation.from_rows(lineitem_schema(), lineitem_rows(n_rows, seed))
    if n_columns < 16:
        relation = relation.restrict_columns(n_columns)
    return relation


ORDERS_COLUMNS = [
    "o_orderkey",
    "o_custkey",
    "o_orderstatus",
    "o_totalprice",
    "o_orderdate",
    "o_orderpriority",
    "o_clerk",
    "o_shippriority",
    "o_comment",
]

_ORDER_PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"]


def orders_schema() -> Schema:
    return Schema([Column(name, "str") for name in ORDERS_COLUMNS])


def tpch_tables(n_lineitem_rows: int, seed: int = 0) -> tuple[Relation, Relation]:
    """Generate consistent (lineitem, orders) relations.

    Every ``l_orderkey`` in lineitem references an ``o_orderkey`` in
    orders -- the referential integrity dbgen guarantees and the
    foreign-key discovery example rediscovers from the data alone.
    Order attributes derive from the same seeded stream so the pair is
    deterministic.
    """
    lineitem = Relation.from_rows(
        lineitem_schema(), lineitem_rows(n_lineitem_rows, seed)
    )
    key_column = LINEITEM_COLUMNS.index("l_orderkey")
    date_column = LINEITEM_COLUMNS.index("l_shipdate")
    order_keys: dict[str, str] = {}
    for row in lineitem.iter_rows():
        earliest = order_keys.get(row[key_column])
        if earliest is None or row[date_column] < earliest:
            order_keys[row[key_column]] = row[date_column]
    rng = random.Random(f"orders|{seed}")
    n_customers = max(10, n_lineitem_rows // 40)
    rows = []
    for order_key in sorted(order_keys, key=int):
        ship_date = date.fromisoformat(order_keys[order_key])
        order_date = ship_date - timedelta(days=rng.randint(1, 121))
        rows.append(
            (
                order_key,
                str(rng.randint(1, n_customers)),
                rng.choice(["O", "F", "P"]),
                f"{rng.uniform(850.0, 555000.0):.2f}",
                order_date.isoformat(),
                rng.choice(_ORDER_PRIORITIES),
                f"Clerk#{rng.randint(1, max(2, n_customers // 3)):09d}",
                "0",
                " ".join(rng.choice(_COMMENT_WORDS) for _ in range(rng.randint(2, 4))),
            )
        )
    return lineitem, Relation.from_rows(orders_schema(), rows)
