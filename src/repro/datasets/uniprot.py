"""Uniprot-like synthetic dataset.

The Universal Protein Resource export the paper uses (539k curated
records, 223 columns) is duplicate-heavy: besides the accession-style
identifiers, most annotation columns have low cardinality and are
*sparse* -- the typical protein has no EC number, no pathway entry,
empty cross-reference fields -- so one (empty/default) value dominates
them. Index look-ups on insert batches therefore hit large candidate
sets; the paper attributes SWAN's smaller margin on Uniprot exactly to
this ("the Uniprot dataset has more duplicates resulting into much more
index look-ups ... having 1k increment SWAN retrieves 97801 tuples,
which is nearly the complete dataset").

This generator reproduces that regime: two identifiers (entry name a
function of accession), a few mid-cardinality sequence attributes with
*lower* cardinalities than NCVoter's (more duplicates), organism-driven
functional dependencies, and a long dominated annotation tail.
"""

from __future__ import annotations

from repro.datasets.synthetic import ColumnSpec, generate_relation
from repro.storage.relation import Relation

N_COLUMNS = 223

_LEADING_SPECS = [
    ColumnSpec("accession", 0.99, skew=0.2),
    ColumnSpec("entry_name", 0.99, skew=0.2, derived_from="accession"),
    ColumnSpec("protein_family", 0.12, skew=1.4),
    ColumnSpec("protein_name", 0.05, skew=1.3),
    # Gene symbols follow the protein naming (near-FD in curated data).
    ColumnSpec("gene_name", 0.05, skew=1.3, derived_from="protein_name"),
    ColumnSpec("organism", 0.20, skew=1.5),
    ColumnSpec("organism_id", 0.20, skew=1.5, derived_from="organism"),
    ColumnSpec("taxonomic_lineage", 0.20, skew=1.4, derived_from="organism"),
    ColumnSpec("sequence_length", 0.35, skew=1.0),
    ColumnSpec("sequence_mass", 0.35, skew=1.0, derived_from="sequence_length"),
    ColumnSpec("sequence_crc", 0.25, skew=0.6),
    ColumnSpec("created_date", 0.012, skew=0.9),
    ColumnSpec("modified_date", 0.018, skew=0.9),
    ColumnSpec("annotation_score", 5, skew=0.8, dominant=0.90),
    ColumnSpec("protein_existence", 5, skew=1.2, dominant=0.92),
    ColumnSpec("reviewed_flag", 2, skew=0.3, dominant=0.90),
    ColumnSpec("fragment_flag", 3, skew=1.5, dominant=0.95),
    # Annotation columns are sparse: most entries carry no EC number,
    # curated keyword or pathway assignment (the empty value dominates).
    ColumnSpec("ec_number", 120, skew=1.4, derived_from="protein_family", dominant=0.94),
    ColumnSpec("keyword_primary", 100, skew=1.3, derived_from="protein_family", dominant=0.90),
    ColumnSpec("pathway", 80, skew=1.3, derived_from="protein_family", dominant=0.92),
]

_TAIL_KINDS = [
    ("go_term", 60, "protein_family", 0.92),
    ("interpro", 80, "protein_family", 0.93),
    ("pfam", 70, "protein_family", 0.92),
    ("feature_count", 25, None, 0.93),
    ("evidence_code", 12, None, 0.94),
    ("keyword", 30, "protein_family", 0.92),
    ("xref_count", 18, None, 0.93),
    ("comment_flag", 2, None, 0.94),
    ("isoform_count", 8, None, 0.93),
    ("domain", 45, "protein_family", 0.92),
    ("ptm_flag", 4, None, 0.94),
    ("tissue", 35, "organism", 0.93),
]


def _tail_specs() -> list[ColumnSpec]:
    specs: list[ColumnSpec] = []
    position = 0
    while len(_LEADING_SPECS) + len(specs) < N_COLUMNS:
        kind, cardinality, parent, dominant = _TAIL_KINDS[position % len(_TAIL_KINDS)]
        specs.append(
            ColumnSpec(
                f"{kind}_{position // len(_TAIL_KINDS)}",
                cardinality,
                skew=1.1 + (position % 4) * 0.15,
                derived_from=parent,
                dominant=min(0.95, dominant + 0.04 * (position // len(_TAIL_KINDS))),
            )
        )
        position += 1
    return specs


def uniprot_specs(n_columns: int = 40) -> list[ColumnSpec]:
    """The first ``n_columns`` column specs (<= 223)."""
    if not 1 <= n_columns <= N_COLUMNS:
        raise ValueError(f"Uniprot has up to {N_COLUMNS} columns, got {n_columns}")
    all_specs = _LEADING_SPECS + _tail_specs()
    return all_specs[:n_columns]


def uniprot_relation(n_rows: int, n_columns: int = 40, seed: int = 0) -> Relation:
    """Generate a Uniprot-like relation (first ``n_columns`` columns)."""
    return generate_relation(uniprot_specs(n_columns), n_rows, seed=seed)
