"""Dataset generators and workload builders for the experiments.

The paper evaluates on two real datasets (NCVoter, Uniprot) and the
TPC-H lineitem relation. The real files are not redistributable, so
this package generates synthetic stand-ins that preserve the properties
the experiments exercise (DESIGN.md section 5): per-column distinct
counts following a Zipfian distribution (as the paper states for all
its datasets), a mix of key-like and low-cardinality columns (NCVoter),
a duplicate-heavy regime (Uniprot), and dbgen's lineitem semantics
(TPC-H).
"""

from repro.datasets.ncvoter import ncvoter_relation
from repro.datasets.synthetic import ColumnSpec, generate_relation
from repro.datasets.tpch import lineitem_relation
from repro.datasets.uniprot import uniprot_relation
from repro.datasets.workload import (
    DynamicWorkload,
    delete_batch_ids,
    split_initial_and_inserts,
)

__all__ = [
    "ColumnSpec",
    "DynamicWorkload",
    "delete_batch_ids",
    "generate_relation",
    "lineitem_relation",
    "ncvoter_relation",
    "split_initial_and_inserts",
    "uniprot_relation",
]
