"""Synthetic relation generator with Zipfian value frequencies.

Each column is described by a :class:`ColumnSpec` giving its target
cardinality (absolute, or as a fraction of the row count) and a Zipf
skew for how often each distinct value appears. The paper notes that
"for all datasets the number of unique values per column approximately
follows a Zipfian distribution" -- the NCVoter/Uniprot stand-ins draw
their *cardinality profiles* from a Zipfian series too.

All cell values are strings (``"{prefix}{i}"``) so relations round-trip
losslessly through the CSV-backed :class:`~repro.storage.table_file.TableFile`.
"""

from __future__ import annotations

import random
from bisect import bisect_right
from dataclasses import dataclass
from itertools import accumulate

from repro.storage.relation import Relation
from repro.storage.schema import Column, Schema


@dataclass(frozen=True)
class ColumnSpec:
    """Recipe for one synthetic column.

    ``cardinality`` >= 1 is an absolute distinct count; < 1.0 is a
    fraction of the row count (so specs scale with the dataset).
    ``skew`` is the Zipf exponent of the value-frequency distribution
    (0 = uniform; ~1 = classic Zipf head-heavy).

    ``derived_from`` names another column this one functionally depends
    on: each cell becomes a deterministic function of the parent cell
    (folded to ``cardinality`` distinct values). Real tables are full of
    such dependencies (code -> description, id -> name).

    ``dominant`` is the fraction of rows holding the single most common
    value (on top of the Zipf skew). Real wide tables are full of
    columns dominated by one value -- empty mail-address lines, 'N'
    flags, default codes -- and such columns almost never participate
    in minimal uniques. Without this, dozens of independent
    low-cardinality columns combine into combinatorially many minimal
    uniques that no real dataset exhibits.
    """

    name: str
    cardinality: float
    skew: float = 1.0
    dtype: str = "str"
    derived_from: str | None = None
    dominant: float = 0.0

    def resolved_cardinality(self, n_rows: int) -> int:
        if self.cardinality >= 1.0:
            target = int(self.cardinality)
        else:
            target = int(round(self.cardinality * n_rows))
        return max(1, min(target, max(n_rows, 1)))


class ZipfSampler:
    """Draws value indices 0..n-1 with P(i) proportional to 1/(i+1)^skew."""

    __slots__ = ("_cumulative", "_total")

    def __init__(self, n_values: int, skew: float) -> None:
        weights = [1.0 / (rank + 1.0) ** skew for rank in range(n_values)]
        self._cumulative = list(accumulate(weights))
        self._total = self._cumulative[-1]

    def sample(self, rng: random.Random) -> int:
        point = rng.random() * self._total
        return bisect_right(self._cumulative, point)


def generate_column(
    spec: ColumnSpec, n_rows: int, rng: random.Random, prefix: str
) -> list[str]:
    """One column's values honouring cardinality and skew.

    Every one of the ``cardinality`` distinct values appears at least
    once (so measured cardinality matches the spec), the remaining rows
    are Zipf draws, and the column is shuffled so value positions are
    independent across columns.
    """
    cardinality = spec.resolved_cardinality(n_rows)
    values = [f"{prefix}{index}" for index in range(cardinality)]
    cells = list(values[:n_rows])
    remaining = n_rows - len(cells)
    if remaining > 0:
        sampler = ZipfSampler(cardinality, spec.skew) if spec.skew > 0 else None

        def draw() -> str:
            if spec.dominant and rng.random() < spec.dominant:
                return values[0]
            if sampler is None:
                return values[rng.randrange(cardinality)]
            return values[sampler.sample(rng)]

        cells.extend(draw() for _ in range(remaining))
    rng.shuffle(cells)
    return cells


def derive_column(
    spec: ColumnSpec, parent: list[str], n_rows: int, prefix: str
) -> list[str]:
    """A column functionally dependent on ``parent``.

    Each distinct parent value maps (via a seeded hash) to one of the
    ``cardinality`` child values, so parent -> child is a true FD. When
    the requested cardinality is at least the parent's distinct count,
    the mapping is an injective rename -- an exact bijection (think
    code -> description), which keeps the child from spawning *extra*
    minimal uniques beyond the parent's.
    """
    cardinality = spec.resolved_cardinality(n_rows)
    parent_distinct = len(set(parent))
    rename = cardinality >= parent_distinct and not spec.dominant
    mapping: dict[str, str] = {}
    cells: list[str] = []
    for value in parent:
        child = mapping.get(value)
        if child is None:
            if rename:
                child = f"{prefix}{len(mapping)}"
            else:
                rng = random.Random(f"{prefix}|{value}")
                if spec.dominant and rng.random() < spec.dominant:
                    bucket = 0
                else:
                    bucket = rng.randrange(cardinality)
                child = f"{prefix}{bucket}"
            mapping[value] = child
        cells.append(child)
    return cells


def generate_relation(
    specs: list[ColumnSpec],
    n_rows: int,
    seed: int = 0,
) -> Relation:
    """Materialize a relation from column specs, deterministically.

    Base columns are generated independently; derived columns are
    computed from their (already generated) parents, so ``derived_from``
    may only reference a column that appears earlier in ``specs``.
    """
    schema = Schema([Column(spec.name, spec.dtype) for spec in specs])
    columns: list[list[str]] = []
    by_name: dict[str, list[str]] = {}
    for position, spec in enumerate(specs):
        prefix = f"c{position}_"
        if spec.derived_from is not None:
            parent = by_name.get(spec.derived_from)
            if parent is None:
                raise ValueError(
                    f"column {spec.name!r} derives from {spec.derived_from!r}, "
                    "which does not precede it"
                )
            cells = derive_column(spec, parent, n_rows, prefix)
        else:
            rng = random.Random(f"{seed}|{position}|{spec.name}")
            cells = generate_column(spec, n_rows, rng, prefix=prefix)
        columns.append(cells)
        by_name[spec.name] = cells
    rows = zip(*columns) if columns else iter(())
    return Relation.from_rows(schema, rows)


def zipfian_cardinality_profile(
    n_columns: int,
    n_key_like: int,
    max_fraction: float,
    min_cardinality: int,
    seed: int = 0,
) -> list[float]:
    """Per-column cardinalities following a Zipfian series.

    The first ``n_key_like`` columns get near-row-count cardinality
    fractions; the rest decay as 1/rank down to ``min_cardinality``
    absolute values, shuffled so key-like and categorical columns
    interleave like a real table.
    """
    fractions: list[float] = []
    for rank in range(n_columns):
        if rank < n_key_like:
            fractions.append(max_fraction)
        else:
            decayed = max_fraction / (rank - n_key_like + 2)
            fractions.append(decayed)
    rng = random.Random(seed)
    tail = fractions[n_key_like:]
    rng.shuffle(tail)
    fractions[n_key_like:] = tail
    return [
        fraction if fraction * 1000 >= min_cardinality else float(min_cardinality)
        for fraction in fractions
    ]
