"""Dynamic-data workload builders for the experiments.

The paper's experiments all share one shape: generate a dataset, hold
out part of it as the *initial* relation, and replay the remainder as
insert batches (or sample live tuples as delete batches). This module
packages those splits deterministically so every system in a comparison
sees the exact same tuples.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Hashable, Sequence

from repro.errors import WorkloadError
from repro.storage.relation import Relation

Row = tuple[Hashable, ...]


@dataclass(frozen=True)
class DynamicWorkload:
    """An initial relation plus the batches to replay against it."""

    initial: Relation
    insert_batches: tuple[tuple[Row, ...], ...]

    @property
    def n_inserts(self) -> int:
        return sum(len(batch) for batch in self.insert_batches)


def split_initial_and_inserts(
    relation: Relation,
    initial_rows: int,
    batch_fractions: Sequence[float],
    seed: int = 0,
) -> DynamicWorkload:
    """Split a generated relation into initial data plus insert batches.

    ``batch_fractions`` are relative to ``initial_rows`` (the paper's
    "batch size in relation to initial dataset size", e.g.
    ``[0.01, 0.05, 0.10, 0.20]``); batches are disjoint and drawn in
    order from the shuffled held-out rows.
    """
    rows = list(relation.iter_rows())
    needed = initial_rows + sum(
        int(round(fraction * initial_rows)) for fraction in batch_fractions
    )
    if needed > len(rows):
        raise WorkloadError(
            f"workload needs {needed} rows but the relation has {len(rows)}"
        )
    rng = random.Random(seed)
    rng.shuffle(rows)
    initial = Relation.from_rows(relation.schema, rows[:initial_rows])
    batches: list[tuple[Row, ...]] = []
    cursor = initial_rows
    for fraction in batch_fractions:
        size = int(round(fraction * initial_rows))
        batches.append(tuple(rows[cursor : cursor + size]))
        cursor += size
    return DynamicWorkload(initial=initial, insert_batches=tuple(batches))


def delete_batch_ids(
    relation: Relation,
    fraction: float,
    seed: int = 0,
) -> list[int]:
    """A deterministic sample of live tuple IDs to delete.

    ``fraction`` is relative to the current live row count (the paper's
    "amount of deleted tuples in %").
    """
    if not 0 <= fraction <= 1:
        raise WorkloadError(f"delete fraction must be in [0, 1], got {fraction}")
    live = list(relation.iter_ids())
    size = int(round(fraction * len(live)))
    rng = random.Random(seed)
    return sorted(rng.sample(live, size))


def interleaved_workload(
    relation: Relation,
    initial_rows: int,
    n_operations: int,
    insert_probability: float = 0.5,
    batch_size: int = 10,
    seed: int = 0,
) -> tuple[Relation, list[tuple[str, object]]]:
    """A mixed insert/delete script for integration tests and examples.

    Returns the initial relation and a list of operations, each either
    ``("insert", rows)`` or ``("delete", fraction)``; the caller decides
    which live IDs a delete fraction resolves to at replay time.
    """
    rows = list(relation.iter_rows())
    if initial_rows > len(rows):
        raise WorkloadError("initial_rows exceeds relation size")
    rng = random.Random(seed)
    rng.shuffle(rows)
    initial = Relation.from_rows(relation.schema, rows[:initial_rows])
    pending = rows[initial_rows:]
    operations: list[tuple[str, object]] = []
    for _ in range(n_operations):
        if pending and rng.random() < insert_probability:
            batch, pending = pending[:batch_size], pending[batch_size:]
            operations.append(("insert", tuple(batch)))
        else:
            operations.append(("delete", batch_size))
    return initial, operations
