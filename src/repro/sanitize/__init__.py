"""Concurrency sanitizer and fork-safety registry.

Two layers with one entry point:

* :func:`make_lock` / :func:`make_rlock` are the project-wide lock
  factories. In normal runs they return raw ``threading`` primitives
  (zero overhead). With ``REPRO_SANITIZE=locks`` in the environment
  they return instrumented wrappers that maintain a global
  lock-acquisition order graph, raise :class:`LockOrderError` on order
  inversions *before* deadlocking, and report locks that a ``fork()``
  would strand in the held state (see :mod:`repro.sanitize.locks`).
* :func:`register_fork_owner` is always on: lock-owning classes
  register themselves and implement ``_reset_locks_after_fork()`` so
  forked children never inherit a held lock (see
  :mod:`repro.sanitize.forksafe`).

Lock *names* are stable site identifiers (``"tenants.queue"``,
``"storage.plicache"``); the sanitizer keys its order graph by name so
the runtime graph lines up with the static one built by lint rule R7.
"""

from __future__ import annotations

import os
import threading
from typing import cast

from repro.sanitize.forksafe import register_fork_owner, registered_owners
from repro.sanitize.locks import (
    ForkHeldLockError,
    LockOrderError,
    SanitizedLock,
    SanitizedRLock,
    assert_no_reports,
    reports,
    reset_order_state,
    reset_reports,
)

__all__ = [
    "ForkHeldLockError",
    "LockOrderError",
    "SanitizedLock",
    "SanitizedRLock",
    "assert_no_reports",
    "locks_enabled",
    "make_lock",
    "make_rlock",
    "register_fork_owner",
    "registered_owners",
    "reports",
    "reset_order_state",
    "reset_reports",
]


def locks_enabled() -> bool:
    """True when ``REPRO_SANITIZE`` contains the ``locks`` flag."""
    raw = os.environ.get("REPRO_SANITIZE", "")
    return "locks" in {part.strip() for part in raw.split(",")}


def make_lock(name: str) -> threading.Lock:
    """A mutex for lock site ``name``: raw, or sanitized under
    ``REPRO_SANITIZE=locks``."""
    if locks_enabled():
        return cast(threading.Lock, SanitizedLock(name))
    return threading.Lock()


def make_rlock(name: str) -> "threading.RLock":
    """A reentrant mutex for lock site ``name``: raw, or sanitized
    under ``REPRO_SANITIZE=locks``."""
    if locks_enabled():
        return cast("threading.RLock", SanitizedRLock(name))
    return threading.RLock()
