"""Runtime lock-order sanitizer: instrumented ``Lock``/``RLock``.

The static rules (R7--R9) reason about lock order from the AST; this
module checks the same invariant at runtime, on the real interleavings
the test suite and the chaos sweep actually produce.

Every sanitized lock acquisition is recorded into one global
*order graph*: an edge ``A -> B`` means "some thread acquired ``B``
while holding ``A``", together with the call site that created the
edge. Before a thread blocks on a lock the sanitizer asks whether the
new edge would close a cycle -- if it would, the acquisition raises
:class:`LockOrderError` *instead of deadlocking*, and the error message
replays both conflicting acquisition sites.

Fork safety is policed at the same layer. ``os.register_at_fork``
hooks:

* **before fork (parent)** -- any sanitized lock currently held by a
  thread *other than the forking thread* is recorded as a report: the
  child would inherit that lock in the held state with nobody left to
  release it (the PR 8 ``PartitionCache`` bug). The forking thread's
  own holdings are legitimate -- it keeps running in the parent and
  releases them normally.
* **after fork (child)** -- every sanitized lock is re-armed (fresh
  inner lock, cleared hold bookkeeping), so the child starts from a
  released state no matter what the parent's threads were doing.

Reports accumulate in-process; harnesses call :func:`assert_no_reports`
(pytest session finish, end of a chaos sweep) to fail loudly. Cycle
detection raises immediately -- a cycle is thread-local causal evidence
and never a false alarm worth deferring.

Identity is by *name*, not by instance: ``make_lock("tenants.queue")``
sites share one node per name, so two tenants' queue locks land on the
same graph node. That matches the static analysis (R7 keys locks by
``Class.attr``) and keeps the graph small; it also means the sanitizer
cannot order two instances of the same site against each other
(acquiring tenant A's lock inside tenant B's is invisible -- same
blind spot as the static pass, documented in docs/operations.md).
"""

from __future__ import annotations

import os
import threading
import traceback
import weakref
from typing import Iterator


class LockOrderError(RuntimeError):
    """Two code paths acquire the same locks in conflicting orders."""


class ForkHeldLockError(RuntimeError):
    """fork() happened while a non-forking thread held a sanitized lock."""


_MAX_WITNESS_FRAMES = 3

# Raw (uninstrumented) lock guarding the graph, reports and live list.
_state_lock = threading.Lock()
# _edges[a][b] == call site witnessing "b acquired while a held".
_edges: dict[str, dict[str, str]] = {}
_reports: list[str] = []
_live: list["weakref.ref[_SanitizedBase]"] = []
_held_local = threading.local()


def _held_stack() -> list["_SanitizedBase"]:
    stack = getattr(_held_local, "stack", None)
    if stack is None:
        stack = []
        _held_local.stack = stack
    return stack


def _call_site() -> str:
    """A short ``file:line in func`` chain for the caller, skipping
    sanitizer-internal frames."""
    frames = [
        frame
        for frame in traceback.extract_stack()
        if not frame.filename.endswith(("sanitize/locks.py", "sanitize\\locks.py"))
    ]
    tail = frames[-_MAX_WITNESS_FRAMES:]
    return " <- ".join(
        f"{os.path.basename(frame.filename)}:{frame.lineno} in {frame.name}"
        for frame in reversed(tail)
    )


def _iter_live() -> Iterator["_SanitizedBase"]:
    for ref in list(_live):
        lock = ref()
        if lock is not None:
            yield lock


class _SanitizedBase:
    """Shared machinery for the Lock and RLock wrappers.

    Deliberately does *not* define ``_release_save`` /
    ``_acquire_restore`` / ``_is_owned``: ``threading.Condition`` then
    falls back to plain ``acquire``/``release`` on the wrapper, keeping
    the hold bookkeeping consistent across ``Condition.wait``.
    """

    reentrant = False

    def __init__(self, name: str) -> None:
        self.name = name
        self._inner = self._make_inner()
        self._holders: dict[int, int] = {}
        self._acquire_sites: dict[int, str] = {}
        with _state_lock:
            _live.append(weakref.ref(self))
            if len(_live) > 512:
                _live[:] = [ref for ref in _live if ref() is not None]

    def _make_inner(self):  # type: ignore[no-untyped-def]
        raise NotImplementedError

    # -- acquisition ---------------------------------------------------
    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        tid = threading.get_ident()
        count = self._holders.get(tid, 0)
        if count:
            if not self.reentrant:
                if not blocking:
                    # A non-blocking probe by the holder (this is how
                    # Condition._is_owned asks "do I own the lock?")
                    # simply fails, exactly like a raw Lock.
                    return False
                raise LockOrderError(
                    f"thread {tid} re-acquires non-reentrant lock "
                    f"{self.name!r} it already holds (first acquired at "
                    f"{self._acquire_sites.get(tid, '?')}): guaranteed "
                    "self-deadlock"
                )
            acquired = self._inner.acquire(blocking, timeout)
            if acquired:
                self._holders[tid] = count + 1
            return acquired
        held = _held_stack()
        self._check_order(held)
        acquired = self._inner.acquire(blocking, timeout)
        if not acquired:
            return False
        site = _call_site()
        self._holders[tid] = 1
        self._acquire_sites[tid] = site
        self._record_edges(held, site)
        held.append(self)
        return True

    def release(self) -> None:
        tid = threading.get_ident()
        count = self._holders.get(tid, 0)
        if count > 1:
            self._holders[tid] = count - 1
        elif count == 1:
            del self._holders[tid]
            self._acquire_sites.pop(tid, None)
            stack = _held_stack()
            if self in stack:
                stack.remove(self)
        self._inner.release()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    def locked(self) -> bool:
        return bool(self._holders)

    def __repr__(self) -> str:
        state = "held" if self._holders else "unlocked"
        return f"<{type(self).__name__} {self.name!r} {state}>"

    # -- order graph ---------------------------------------------------
    def _check_order(self, held: list["_SanitizedBase"]) -> None:
        """Raise before blocking if ``held -> self`` closes a cycle."""
        with _state_lock:
            for other in held:
                if other.name == self.name:
                    continue
                path = _find_path(self.name, other.name)
                if path is not None:
                    cycle = " -> ".join(
                        [other.name, self.name, *(b for _, b in path)]
                    )
                    witnesses = "\n".join(
                        f"  edge {a!r} -> {b!r} first seen at "
                        f"{_edges[a][b]}"
                        for a, b in path
                    )
                    raise LockOrderError(
                        f"lock-order cycle: acquiring {self.name!r} while "
                        f"holding {other.name!r} (held since "
                        f"{other._acquire_sites.get(threading.get_ident(), '?')}; "
                        f"this acquire at {_call_site()}) inverts the "
                        f"established order {cycle}\n{witnesses}"
                    )

    def _record_edges(self, held: list["_SanitizedBase"], site: str) -> None:
        with _state_lock:
            for other in held:
                if other.name == self.name:
                    continue
                _edges.setdefault(other.name, {}).setdefault(self.name, site)

    # -- fork support --------------------------------------------------
    def _reset_for_child(self) -> None:
        self._inner = self._make_inner()
        self._holders.clear()
        self._acquire_sites.clear()


def _find_path(start: str, goal: str) -> list[tuple[str, str]] | None:
    """DFS over ``_edges`` (caller holds ``_state_lock``). Returns the
    edge list of one ``start -> ... -> goal`` path, or ``None``."""
    stack: list[tuple[str, list[tuple[str, str]]]] = [(start, [])]
    seen = {start}
    while stack:
        node, path = stack.pop()
        for successor in _edges.get(node, ()):
            if successor == goal:
                return path + [(node, successor)]
            if successor not in seen:
                seen.add(successor)
                stack.append((successor, path + [(node, successor)]))
    return None


class SanitizedLock(_SanitizedBase):
    reentrant = False

    def _make_inner(self):  # type: ignore[no-untyped-def]
        return threading.Lock()


class SanitizedRLock(_SanitizedBase):
    reentrant = True

    def _make_inner(self):  # type: ignore[no-untyped-def]
        return threading.RLock()


# ---------------------------------------------------------------------
# Reports
# ---------------------------------------------------------------------
def _record_report(message: str) -> None:
    with _state_lock:
        _reports.append(message)


def reports() -> list[str]:
    """All fork-held reports recorded so far (copies)."""
    with _state_lock:
        return list(_reports)


def reset_reports() -> None:
    with _state_lock:
        _reports.clear()


def reset_order_state() -> None:
    """Drop the accumulated order graph (test isolation only)."""
    with _state_lock:
        _edges.clear()


def assert_no_reports() -> None:
    """Raise :class:`ForkHeldLockError` if any fork-held report exists."""
    pending = reports()
    if pending:
        detail = "\n".join(f"  - {message}" for message in pending)
        raise ForkHeldLockError(
            f"{len(pending)} sanitizer report(s):\n{detail}"
        )


# ---------------------------------------------------------------------
# Fork hooks
# ---------------------------------------------------------------------
def _before_fork() -> None:
    forking = threading.get_ident()
    for lock in _iter_live():
        for holder, count in list(lock._holders.items()):
            if holder != forking and count > 0:
                _record_report(
                    f"fork() while lock {lock.name!r} was held by thread "
                    f"{holder} (acquired at "
                    f"{lock._acquire_sites.get(holder, '?')}): the child "
                    "inherits a lock nobody can release"
                )


def _after_fork_child() -> None:
    global _state_lock
    _state_lock = threading.Lock()
    for lock in _iter_live():
        lock._reset_for_child()
    _held_stack().clear()


if hasattr(os, "register_at_fork"):  # pragma: no branch
    os.register_at_fork(before=_before_fork, after_in_child=_after_fork_child)
