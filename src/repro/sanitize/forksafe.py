"""Always-on at-fork lock reset registry.

PR 8 fixed a real bug -- :class:`~repro.storage.plicache.PartitionCache`
instances forked by the process pool inherited their ``threading.Lock``
in whatever state the parent's threads had it, so a child could
deadlock on its first cache probe -- with a module-private
``weakref.WeakSet`` and an ``os.register_at_fork`` hook local to
``plicache``. This module generalizes that fix into one registry every
lock-owning class uses:

* a class that owns locks implements ``_reset_locks_after_fork()``,
  re-creating each of its locks (and any ``Condition`` wrapping one);
* its ``__init__`` calls :func:`register_fork_owner`, which keeps a
  weak reference and replays every owner's reset in each forked child.

The static rule R9 (``fork-safety``) checks the convention: any class
whose state is reachable from a ``ProcessFanOut`` task closure and
holds a lock must call ``register_fork_owner``.

Weak references (not a ``WeakSet``) so unhashable owners -- dataclasses
with ``eq=True`` such as ``Tenant`` and ``IngestQueue`` -- register
without ceremony; dead refs are pruned opportunistically.
"""

from __future__ import annotations

import os
import threading
import weakref

_registry_lock = threading.Lock()
_owners: list["weakref.ref[object]"] = []
_PRUNE_THRESHOLD = 1024


def register_fork_owner(owner: object) -> None:
    """Register ``owner`` for at-fork lock reset in forked children.

    ``owner`` must define ``_reset_locks_after_fork()``; it is held
    weakly, so registration does not extend its lifetime.
    """
    reset = getattr(owner, "_reset_locks_after_fork", None)
    if not callable(reset):
        raise TypeError(
            f"{type(owner).__name__} must define _reset_locks_after_fork() "
            "to be registered with register_fork_owner()"
        )
    with _registry_lock:
        _owners.append(weakref.ref(owner))
        if len(_owners) > _PRUNE_THRESHOLD:
            _owners[:] = [ref for ref in _owners if ref() is not None]


def registered_owners() -> list[object]:
    """Live registered owners (for tests and diagnostics)."""
    with _registry_lock:
        return [owner for ref in _owners for owner in (ref(),) if owner is not None]


def _after_fork_child() -> None:
    global _registry_lock
    _registry_lock = threading.Lock()
    for ref in list(_owners):
        owner = ref()
        if owner is not None:
            owner._reset_locks_after_fork()  # type: ignore[attr-defined]


if hasattr(os, "register_at_fork"):  # pragma: no branch
    os.register_at_fork(after_in_child=_after_fork_child)
