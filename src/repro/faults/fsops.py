"""Instrumented filesystem operations and the fault-site registry.

Durability-critical modules route their filesystem calls through these
wrappers instead of calling ``open``/``os.fsync``/``os.replace``
directly, naming the **site** each call belongs to::

    fsops.write(CHANGELOG_APPEND_WRITE, handle, frame)
    fsops.fsync(CHANGELOG_APPEND_FSYNC, handle)

With no active injector (the production case) each wrapper is the bare
operation plus one function call. Under :func:`repro.faults.active` the
installed :class:`~repro.faults.injector.FaultInjector` sees every hit
and may turn it into an ``OSError``, a short write, or a crash point.

Sites are registered at import time via :func:`register_site`, so
:func:`registered_sites` enumerates the complete fault surface -- the
chaos sweep iterates exactly this list and never goes stale.
"""

from __future__ import annotations

import os
from typing import IO, Any, AnyStr

from repro.faults.injector import current_injector

_REGISTRY: dict[str, str] = {}


def register_site(name: str, description: str) -> str:
    """Declare a fault site; returns ``name`` for assignment at import."""
    if name in _REGISTRY and _REGISTRY[name] != description:
        raise ValueError(f"fault site {name!r} registered twice")
    _REGISTRY[name] = description
    return name


def registered_sites() -> tuple[str, ...]:
    """Every fault site declared by instrumented modules, sorted."""
    return tuple(sorted(_REGISTRY))


def site_description(name: str) -> str:
    return _REGISTRY.get(name, "")


def check(site: str) -> None:
    """Report a hit of ``site`` to the active injector, if any."""
    injector = current_injector()
    if injector is not None:
        injector.check(site)


def open_(site: str, path: str, mode: str = "r", **kwargs: Any) -> IO[Any]:
    check(site)
    return open(path, mode, **kwargs)


def write(site: str, handle: IO[AnyStr], data: AnyStr) -> None:
    injector = current_injector()
    if injector is not None:
        injector.write(site, handle, data)
    else:
        handle.write(data)


def fsync(site: str, handle_or_fd: IO | int) -> None:
    check(site)
    fd = (
        handle_or_fd
        if isinstance(handle_or_fd, int)
        else handle_or_fd.fileno()
    )
    os.fsync(fd)


def replace(site: str, src: str, dst: str) -> None:
    check(site)
    os.replace(src, dst)


def rename(site: str, src: str, dst: str) -> None:
    check(site)
    os.rename(src, dst)


def remove(site: str, path: str) -> None:
    check(site)
    os.remove(path)
