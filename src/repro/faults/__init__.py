"""Deterministic fault injection for the durability stack.

The profiling service promises to survive I/O faults: transient errors
are retried, poison batches are quarantined, crashes recover from the
changelog, and silent profile drift is caught by the invariant
sentinel. Those promises are only worth something if faults are
*injected systematically* rather than waited for, so this package
provides:

* :class:`FaultInjector` / :class:`FaultPlan` -- a seeded, deterministic
  fault source that fires at **named sites** (``changelog.append.fsync``,
  ``snapshot.publish.rename``, ...) threaded through every filesystem
  operation of :mod:`repro.service.changelog`,
  :mod:`repro.service.snapshots`, :mod:`repro.storage.table_file` and
  the spool-acknowledgement path. Supported fault shapes: one-shot and
  persistent ``OSError``, seeded intermittent errors, short writes, and
  hard crash points (:class:`CrashPoint`).
* :mod:`repro.faults.fsops` -- the instrumented ``open`` / ``read`` /
  ``write`` / ``fsync`` / ``rename`` / ``unlink`` wrappers and the site
  registry (:func:`registered_sites`).
* :mod:`repro.faults.chaos` -- a sweep runner that injects every fault
  shape at every registered site across a seed matrix and asserts the
  service either retries, degrades-and-quarantines, or recovers to a
  profile that passes :func:`repro.profiling.verify.verify_profile`
  (``python -m repro.faults.chaos --seeds 0 1 2``).

Production code pays one dictionary lookup per instrumented operation
when no injector is active.
"""

from repro.faults.fsops import registered_sites, site_description
from repro.faults.injector import (
    CRASH,
    ERROR,
    SHORT_WRITE,
    CrashPoint,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedIOError,
    active,
    current_injector,
)

__all__ = [
    "CRASH",
    "ERROR",
    "SHORT_WRITE",
    "CrashPoint",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "InjectedIOError",
    "active",
    "current_injector",
    "registered_sites",
    "site_description",
]
