"""The chaos sweep: every fault shape at every registered site.

For each ``(site, mode, seed)`` triple the runner boots a small
profiling service on a throwaway state directory, injects the fault
while the service starts, serves batches, restarts, and serves more --
then removes the injector, restarts cleanly, drains whatever the fault
left behind, and verifies the final profile **exhaustively** against
the live relation (:func:`repro.profiling.verify.verify_profile` via
``ProfilingService.run_sentinel(full=True)``).

The acceptance invariant is the one that matters for the paper's
deployment story: whatever the fault did, the service must have either

* **retried** through it (transient error, loop kept going),
* **degraded and quarantined** (health left SERVING, evidence kept), or
* **recovered on restart** (crash point, torn write, exhausted retries),

and in every case the MUCS/MNUCS finally served must be exactly right
-- a wrong answer at verification is a sweep failure, not an outcome.

``table.*`` sites belong to the storage layer rather than the service,
so they get their own scenario: fault the on-disk tuple store, then
rebuild cleanly and verify every tuple round-trips by byte offset.

Beyond the per-site sweep there are two composite gates:
``--multi-tenant`` (fault isolation: a faulted tenant degrades alone)
and ``--supervised-fleet`` (the fleet supervisor recovers dead writer
threads, parks a crash-looping tenant on its restart budget, and the
server shrugs off network-layer faults -- every tenant ends SERVING a
bit-correct profile or PARKED with a persisted reason record).

Run it directly (CI runs one seed per matrix job)::

    PYTHONPATH=src python -m repro.faults.chaos --seeds 0 1 2
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import socket
import sys
import tempfile
from dataclasses import dataclass, field
from http import client as http_client
from typing import Any, Callable

from repro.errors import ReproError, TenantError, TenantParkedError
from repro.faults.injector import (
    CRASH,
    ERROR,
    SHORT_WRITE,
    CrashPoint,
    FaultInjector,
    FaultPlan,
    active,
)
from repro.faults.fsops import registered_sites
from repro.profiling.persistence import dump_profile, load_profile
from repro.server.app import ReproServerApp
from repro.server.http import serve_in_thread
from repro.service.retry import RetryPolicy
from repro.service.server import (
    CHANGELOG_NAME,
    ProfilingService,
    ServiceConfig,
    SpoolDirectorySource,
)
from repro.storage.relation import Relation
from repro.storage.schema import Schema
from repro.storage.table_file import TableFile
from repro.tenants.config import TenantConfig
from repro.tenants.manager import TenantManager
from repro.tenants.supervisor import FleetSupervisor, SupervisorConfig

MODES = ("transient", "short_write", "intermittent", "persistent", "crash")

_COLUMNS = ["Name", "Phone", "Age"]
_INITIAL_ROWS = [
    ("Lee", "345", "20"),
    ("Payne", "245", "30"),
    ("Lee", "234", "30"),
]
# Four spool batches; phase A serves the first two, phase B (after a
# mid-sweep restart, so recovery paths sit inside the fault window) the
# rest. Final live rows: 3 + 2 + 1 - 1 + 1 = 6.
_BATCHES = [
    ("b1.json", {"kind": "insert", "rows": [["Ada", "111", "9"], ["Bob", "222", "8"]]}),
    ("b2.json", {"kind": "insert", "rows": [["Cal", "333", "7"]]}),
    ("b3.json", {"kind": "delete", "ids": [0]}),
    ("b4.json", {"kind": "insert", "rows": [["Dee", "444", "6"]]}),
]
# One deliberately unparseable spool file (sorted after the batches):
# every scenario exercises the quarantine path, so the deadletter.*
# fault sites fire and a faulted quarantine is itself swept.
_POISON_NAME = "z-poison.json"
_POISON_BODY = b"{not json"
_EXPECTED_ROWS = 6


def _initial_relation() -> Relation:
    return Relation.from_rows(Schema(list(_COLUMNS)), list(_INITIAL_ROWS))


def _holistic_fallback() -> tuple[Relation, list[int], list[int]]:
    from repro.baselines.bruteforce import discover_bruteforce

    relation = _initial_relation()
    mucs, mnucs = discover_bruteforce(relation)
    return relation, list(mucs), list(mnucs)


def _config(seed: int = 0) -> ServiceConfig:
    # Odd seeds run the process-pool fan-out, so the sweep's invariants
    # cover both execution modes (even seeds keep the serial default),
    # and every third seed runs K=2 sharded profiling so the cross-shard
    # merge sits inside the fault window too; results are bit-identical
    # in every combination, which is exactly what the exhaustive
    # verification at the end of each scenario checks.
    process = bool(seed % 2)
    return ServiceConfig(
        algorithm="bruteforce",
        snapshot_every=2,
        status_every=2,
        sentinel_every=2,
        coalesce_rows=1,  # keep batch boundaries deterministic
        health_reset_batches=2,
        fsync=True,
        parallelism=2 if process else 0,
        execution_mode="process" if process else "thread",
        shards=2 if seed % 3 == 2 else 1,
        retry=RetryPolicy(
            max_attempts=3, base_delay=0.0, multiplier=2.0, max_delay=0.0
        ),
    )


def _plan_for(site: str, mode: str, seed: int) -> FaultPlan:
    at = seed % 3 + 1  # vary which hit of the site misbehaves
    if mode == "transient":
        return FaultPlan.one_shot(site, ERROR, at=at, seed=seed)
    if mode == "short_write":
        return FaultPlan.one_shot(site, SHORT_WRITE, at=at, seed=seed)
    if mode == "intermittent":
        return FaultPlan.intermittent(site, probability=0.5, seed=seed)
    if mode == "persistent":
        return FaultPlan.persistent(site, ERROR, at=at, seed=seed)
    if mode == "crash":
        return FaultPlan.one_shot(site, CRASH, at=at, seed=seed)
    raise ValueError(f"unknown chaos mode {mode!r}")


@dataclass
class ScenarioResult:
    site: str
    mode: str
    seed: int
    outcome: str  # not-hit | survived | recovered | crash-recovered
    fired: int
    detail: str = ""


@dataclass
class ChaosFailure(Exception):
    site: str
    mode: str
    seed: int
    detail: str

    def __str__(self) -> str:
        return (
            f"chaos scenario failed: site={self.site} mode={self.mode} "
            f"seed={self.seed}: {self.detail}"
        )


@dataclass
class SweepReport:
    results: list[ScenarioResult] = field(default_factory=list)
    failures: list[ChaosFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def outcome_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for result in self.results:
            counts[result.outcome] = counts.get(result.outcome, 0) + 1
        return counts

    def never_fired_sites(self) -> list[str]:
        fired = {r.site for r in self.results if r.fired}
        return sorted({r.site for r in self.results} - fired)


def _abandon(service: ProfilingService) -> None:
    """Drop a faulted service the way a dead process would."""
    try:
        service.simulate_crash()
    except OSError:  # pragma: no cover - close() noise under faults
        pass


def run_service_scenario(
    site: str, mode: str, seed: int, workdir: str
) -> ScenarioResult:
    """One service lifetime under injection, then a verified clean run."""
    state = os.path.join(workdir, "state")
    spool = os.path.join(workdir, "spool")
    for name, body in _BATCHES:
        SpoolDirectorySource.write_batch(spool, name, body)
    with open(os.path.join(spool, _POISON_NAME), "wb") as poison:
        poison.write(_POISON_BODY)
    injector = FaultInjector(_plan_for(site, mode, seed))
    crashed = False
    first_error: str | None = None
    with active(injector):
        service = ProfilingService(
            state, config=_config(seed), sleep=lambda _s: None
        )
        try:
            # Phase A: first boot, serve half the spool, clean stop.
            service.start(
                initial=_initial_relation(),
                holistic_fallback=_holistic_fallback,
            )
            service.serve(SpoolDirectorySource(spool), max_batches=2)
            service.stop()
            if site == "changelog.rotate.replace":
                # Lose the changelog entirely: phase B recovers from a
                # snapshot ahead of the (fresh, empty) log and must
                # rotate it -- the only path through this site.
                changelog_path = os.path.join(state, CHANGELOG_NAME)
                if os.path.exists(changelog_path):
                    os.remove(changelog_path)
            # Phase B: restart (recovery paths now inside the fault
            # window) and drain the rest. ``archive=False`` acks by
            # unlinking, covering the other ack site.
            service = ProfilingService(
                state, config=_config(seed), sleep=lambda _s: None
            )
            service.start(holistic_fallback=_holistic_fallback)
            service.serve(SpoolDirectorySource(spool, archive=False))
            service.stop()
        except CrashPoint as exc:
            crashed = True
            first_error = str(exc)
            _abandon(service)
        except (ReproError, OSError) as exc:
            first_error = f"{type(exc).__name__}: {exc}"
            _abandon(service)

    # Verification: no injector, cold start, drain leftovers, exhaustive
    # ground-truth check. A failure here means a wrong profile survived.
    recovery = ProfilingService(
        state, config=_config(seed), sleep=lambda _s: None
    )
    try:
        recovery.start(
            initial=_initial_relation() if not recovery.has_state() else None,
            holistic_fallback=_holistic_fallback,
        )
        recovery.serve(SpoolDirectorySource(spool))
        live_rows = len(recovery.profiler.relation)
        if live_rows != _EXPECTED_ROWS:
            raise ChaosFailure(
                site, mode, seed,
                f"expected {_EXPECTED_ROWS} live rows after recovery, "
                f"found {live_rows} (first error: {first_error})",
            )
        if not recovery.run_sentinel(full=True):
            raise ChaosFailure(
                site, mode, seed,
                "recovered profile failed exhaustive verification "
                f"(first error: {first_error})",
            )
        recovery.stop()
    except ChaosFailure:
        _abandon(recovery)
        raise
    except (ReproError, OSError) as exc:
        _abandon(recovery)
        raise ChaosFailure(
            site, mode, seed,
            f"clean recovery run failed: {type(exc).__name__}: {exc} "
            f"(first error: {first_error})",
        ) from exc

    if not injector.fired:
        outcome = "not-hit"
    elif crashed:
        outcome = "crash-recovered"
    elif first_error is not None:
        outcome = "recovered"
    else:
        outcome = "survived"
    return ScenarioResult(
        site, mode, seed, outcome, len(injector.fired), detail=first_error or ""
    )


def run_table_scenario(
    site: str, mode: str, seed: int, workdir: str
) -> ScenarioResult:
    """Fault the on-disk tuple store, then rebuild and verify round-trip."""
    path = os.path.join(workdir, "table.csv")
    relation = _initial_relation()
    injector = FaultInjector(_plan_for(site, mode, seed))
    crashed = False
    first_error: str | None = None
    with active(injector):
        table = None
        try:
            table = TableFile.create(path, relation)
            offset = 0
            for _ in range(len(relation)):
                _tid, _row, offset = table.seek_read(offset)
        except CrashPoint as exc:
            crashed = True
            first_error = str(exc)
        except (ReproError, OSError) as exc:
            first_error = f"{type(exc).__name__}: {exc}"
        finally:
            if table is not None:
                table.close()

    # Verification: a fresh create must fully round-trip every tuple.
    try:
        with TableFile.create(path, relation) as table:
            seen = {}
            offset = 0
            for _ in range(len(relation)):
                tuple_id, row, offset = table.seek_read(offset)
                seen[tuple_id] = row
        expected = {
            tuple_id: tuple(str(cell) for cell in row)
            for tuple_id, row in relation.iter_items()
        }
        if seen != expected:
            raise ChaosFailure(
                site, mode, seed,
                f"rebuilt table round-trip mismatch: {seen!r} != "
                f"{expected!r} (first error: {first_error})",
            )
    except ChaosFailure:
        raise
    except (ReproError, OSError) as exc:
        raise ChaosFailure(
            site, mode, seed,
            f"clean table rebuild failed: {type(exc).__name__}: {exc} "
            f"(first error: {first_error})",
        ) from exc

    if not injector.fired:
        outcome = "not-hit"
    elif crashed:
        outcome = "crash-recovered"
    elif first_error is not None:
        outcome = "recovered"
    else:
        outcome = "survived"
    return ScenarioResult(
        site, mode, seed, outcome, len(injector.fired), detail=first_error or ""
    )


def run_relation_scenario(
    site: str, mode: str, seed: int, workdir: str
) -> ScenarioResult:
    """Fault a CSV export/load round-trip, then redo it cleanly."""
    path = os.path.join(workdir, "relation.csv")
    relation = _initial_relation()
    injector = FaultInjector(_plan_for(site, mode, seed))
    crashed = False
    first_error: str | None = None
    with active(injector):
        try:
            relation.to_csv(path)
            Relation.from_csv(path)
        except CrashPoint as exc:
            crashed = True
            first_error = str(exc)
        except (ReproError, OSError) as exc:
            first_error = f"{type(exc).__name__}: {exc}"

    # Verification: a clean export must load back value-identical.
    try:
        relation.to_csv(path)
        loaded = Relation.from_csv(path)
        expected = [
            tuple(str(cell) for cell in row) for _tid, row in relation.iter_items()
        ]
        got = [tuple(row) for _tid, row in loaded.iter_items()]
        if got != expected:
            raise ChaosFailure(
                site, mode, seed,
                f"CSV round-trip mismatch: {got!r} != {expected!r} "
                f"(first error: {first_error})",
            )
    except ChaosFailure:
        raise
    except (ReproError, OSError) as exc:
        raise ChaosFailure(
            site, mode, seed,
            f"clean CSV round-trip failed: {type(exc).__name__}: {exc} "
            f"(first error: {first_error})",
        ) from exc

    if not injector.fired:
        outcome = "not-hit"
    elif crashed:
        outcome = "crash-recovered"
    else:
        outcome = "recovered" if first_error is not None else "survived"
    return ScenarioResult(
        site, mode, seed, outcome, len(injector.fired), detail=first_error or ""
    )


def run_profile_scenario(
    site: str, mode: str, seed: int, workdir: str
) -> ScenarioResult:
    """Fault a profile JSON dump/load round-trip, then redo it cleanly."""
    from repro.core.repository import Profile

    path = os.path.join(workdir, "profile.json")
    relation, mucs, mnucs = _holistic_fallback()
    profile = Profile.from_masks(mucs, mnucs)
    injector = FaultInjector(_plan_for(site, mode, seed))
    crashed = False
    first_error: str | None = None
    with active(injector):
        try:
            dump_profile(relation.schema, profile, path)
            load_profile(path)
        except CrashPoint as exc:
            crashed = True
            first_error = str(exc)
        # ValueError: a short write tears the JSON mid-document.
        except (ReproError, OSError, ValueError) as exc:
            first_error = f"{type(exc).__name__}: {exc}"

    # Verification: a clean dump must load back mask-identical.
    try:
        dump_profile(relation.schema, profile, path)
        stored = load_profile(path)
        got_mucs, got_mnucs = stored.masks_for(relation.schema)
        if sorted(got_mucs) != sorted(mucs) or sorted(got_mnucs) != sorted(mnucs):
            raise ChaosFailure(
                site, mode, seed,
                f"profile round-trip mismatch: {got_mucs!r}/{got_mnucs!r} != "
                f"{mucs!r}/{mnucs!r} (first error: {first_error})",
            )
    except ChaosFailure:
        raise
    except (ReproError, OSError, ValueError) as exc:
        raise ChaosFailure(
            site, mode, seed,
            f"clean profile round-trip failed: {type(exc).__name__}: {exc} "
            f"(first error: {first_error})",
        ) from exc

    if not injector.fired:
        outcome = "not-hit"
    elif crashed:
        outcome = "crash-recovered"
    else:
        outcome = "recovered" if first_error is not None else "survived"
    return ScenarioResult(
        site, mode, seed, outcome, len(injector.fired), detail=first_error or ""
    )


def run_producer_scenario(
    site: str, mode: str, seed: int, workdir: str
) -> ScenarioResult:
    """Fault the producer-side spool write; the spool must never hold a
    torn batch file (write-then-rename is the producer contract)."""
    spool = os.path.join(workdir, "spool")
    body = {"kind": "insert", "rows": [["Eve", "555", "5"]]}
    injector = FaultInjector(_plan_for(site, mode, seed))
    crashed = False
    first_error: str | None = None
    with active(injector):
        try:
            for attempt in range(4):
                SpoolDirectorySource.write_batch(spool, f"p{attempt}.json", body)
        except CrashPoint as exc:
            crashed = True
            first_error = str(exc)
        except (ReproError, OSError) as exc:
            first_error = f"{type(exc).__name__}: {exc}"

    # Verification: every *published* batch file must parse; tmp files
    # are invisible to the source (dotfiles are skipped by _pending).
    try:
        source = SpoolDirectorySource(spool)
        batches = list(source)
        for batch in batches:
            if batch.kind != "insert" or batch.rows != (("Eve", "555", "5"),):
                raise ChaosFailure(
                    site, mode, seed,
                    f"torn batch visible in spool: {batch!r} "
                    f"(first error: {first_error})",
                )
    except ChaosFailure:
        raise
    except (ReproError, OSError) as exc:
        raise ChaosFailure(
            site, mode, seed,
            f"spool re-read failed: {type(exc).__name__}: {exc} "
            f"(first error: {first_error})",
        ) from exc

    if not injector.fired:
        outcome = "not-hit"
    elif crashed:
        outcome = "crash-recovered"
    else:
        outcome = "recovered" if first_error is not None else "survived"
    return ScenarioResult(
        site, mode, seed, outcome, len(injector.fired), detail=first_error or ""
    )


def _tenant_config() -> TenantConfig:
    return TenantConfig(
        columns=tuple(_COLUMNS),
        algorithm="bruteforce",
        snapshot_every=2,
        sentinel_every=2,
        health_reset_batches=2,
        fsync=True,
        retry=RetryPolicy(
            max_attempts=3, base_delay=0.0, multiplier=2.0, max_delay=0.0
        ),
    )


def _abandon_fleet(manager: TenantManager) -> None:
    """Drop a faulted fleet the way a dead process would."""
    for tenant in list(manager):
        try:
            tenant.worker.stop(drain=False, timeout=2.0)
        except Exception:  # pragma: no cover - teardown noise under faults
            pass
        _abandon(tenant.service)


def run_tenant_fleet_scenario(
    site: str, mode: str, seed: int, workdir: str
) -> ScenarioResult:
    """Fault the tenant registry/lifecycle paths, then reopen and verify.

    The invariant mirrors the single-service scenarios, lifted to the
    fleet: whatever the fault did to ``create``/``drop``/park/reopen,
    the registry is never torn (its publish is write-tmp-fsync-replace),
    every tenant it still lists must come back up and serve an
    exhaustively verified profile -- and a tenant that *cannot* come
    back (an orphan state dir) must sit in PARKED with a reason record,
    never be silently dropped or double-assigned.
    """
    root = os.path.join(workdir, "fleet")
    config = _tenant_config()
    injector = FaultInjector(_plan_for(site, mode, seed))
    crashed = False
    first_error: str | None = None
    manager: TenantManager | None = None
    with active(injector):
        try:
            manager = TenantManager(root, sleep=lambda _s: None)
            for tenant_id in ("alpha", "beta"):
                manager.create(tenant_id, config, initial_rows=_INITIAL_ROWS)
            manager.ingest(
                "alpha", "insert", rows=[("Ada", "111", "9")], token="fleet-a1"
            )
            manager.flush_all(timeout=10.0)
            # Park / recover round-trip: the parked-record durability
            # sites (tenants.parked.*) only fire on these paths.
            manager.park("beta", "chaos drill", by="chaos")
            manager.recover("beta")
            manager.drop("beta")
            # Park alpha across a manager restart: the record must be
            # read back on reopen and recovery must clear it.
            manager.park("alpha", "chaos drill: survives reopen", by="chaos")
            manager.close_all()
            # Reopen inside the fault window: registry read, parked
            # record read-back and tenant recovery paths are part of
            # the lifecycle under test.
            manager = TenantManager(root, sleep=lambda _s: None)
            manager.recover("alpha")
            manager.open_all()
            manager.close_all()
        except CrashPoint as exc:
            crashed = True
            first_error = str(exc)
            if manager is not None:
                _abandon_fleet(manager)
        except (ReproError, OSError) as exc:
            first_error = f"{type(exc).__name__}: {exc}"
            if manager is not None:
                _abandon_fleet(manager)

    # Verification: no injector; every registered tenant must reopen
    # (un-parking it first if a fault left it parked) and serve an
    # exhaustively verified profile. Orphan state dirs have no config
    # to reopen with: staying PARKED with a reason record is their
    # contract, and reconcile must never have double-assigned them.
    recovery = TenantManager(root, sleep=lambda _s: None)
    try:
        for tenant_id in recovery.parked_ids():
            record = recovery.parked_record(tenant_id) or {}
            try:
                recovery.recover(tenant_id)
            except TenantError:
                if record.get("registered", False):
                    raise
        opened = recovery.open_all()
        for tenant in opened:
            if not tenant.service.run_sentinel(full=True):
                raise ChaosFailure(
                    site, mode, seed,
                    f"tenant {tenant.tenant_id!r} recovered with a profile "
                    f"that failed exhaustive verification "
                    f"(first error: {first_error})",
                )
        recovery.close_all()
    except ChaosFailure:
        _abandon_fleet(recovery)
        raise
    except (ReproError, OSError) as exc:
        _abandon_fleet(recovery)
        raise ChaosFailure(
            site, mode, seed,
            f"clean fleet reopen failed: {type(exc).__name__}: {exc} "
            f"(first error: {first_error})",
        ) from exc

    if not injector.fired:
        outcome = "not-hit"
    elif crashed:
        outcome = "crash-recovered"
    else:
        outcome = "recovered" if first_error is not None else "survived"
    return ScenarioResult(
        site, mode, seed, outcome, len(injector.fired), detail=first_error or ""
    )


ISOLATION_SITE = "changelog.append.write"


def run_isolation_scenario(seed: int, workdir: str) -> ScenarioResult:
    """Multi-tenant blast-radius check: a faulted tenant degrades alone.

    Three tenants share one process. The target tenant (rotated by
    seed) takes a transient changelog fault and then a poison batch;
    it must end up off SERVING with the poison quarantined -- while
    both siblings keep SERVING, apply their own batches, and pass
    exhaustive verification. Any cross-tenant bleed is a failure.
    """
    site, mode = ISOLATION_SITE, "isolation"
    root = os.path.join(workdir, "fleet")
    tenant_ids = ("alpha", "beta", "gamma")
    target = tenant_ids[seed % len(tenant_ids)]
    siblings = tuple(t for t in tenant_ids if t != target)
    manager = TenantManager(root, sleep=lambda _s: None)
    injector = FaultInjector(
        FaultPlan.one_shot(ISOLATION_SITE, ERROR, at=1, seed=seed)
    )
    try:
        for tenant_id in tenant_ids:
            manager.create(tenant_id, _tenant_config(), initial_rows=_INITIAL_ROWS)

        # The fault window: only the target writes, so the one-shot
        # changelog fault lands on the target's changelog and nowhere
        # else (the injector is process-global and site-keyed).
        with active(injector):
            manager.ingest(
                target, "insert", rows=[("Eve", "555", "5")], token="iso-fault"
            )
            if not manager.flush(target, timeout=10.0):
                raise ChaosFailure(
                    site, mode, seed, "target flush timed out under fault"
                )
        if not injector.fired:
            raise ChaosFailure(
                site, mode, seed, "the changelog fault never fired"
            )
        # A poison batch on top: delete of a tuple id that never
        # existed must be quarantined, not applied.
        manager.ingest(target, "delete", tuple_ids=[9999], token="iso-poison")
        manager.flush(target, timeout=10.0)

        target_service = manager.get(target).service
        if target_service.health.state.value == "serving":
            raise ChaosFailure(
                site, mode, seed,
                "target tenant shrugged off the fault without degrading "
                "(scenario lost its subject)",
            )
        if target_service.dead_letters.count() < 1:
            raise ChaosFailure(
                site, mode, seed, "poison batch was not quarantined"
            )
        # The target must still answer reads.
        profile = manager.query_profile(target)
        if not profile["mucs"]:
            raise ChaosFailure(
                site, mode, seed, "degraded target stopped serving reads"
            )

        # Siblings: unaffected, writable, and exactly right.
        for sibling in siblings:
            manager.ingest(
                sibling, "insert",
                rows=[("Sib", "777", "4")], token=f"iso-{sibling}",
            )
            if not manager.flush(sibling, timeout=10.0):
                raise ChaosFailure(
                    site, mode, seed, f"sibling {sibling!r} flush timed out"
                )
            service = manager.get(sibling).service
            if service.health.state.value != "serving":
                raise ChaosFailure(
                    site, mode, seed,
                    f"sibling {sibling!r} left SERVING "
                    f"({service.health.state.value}): blast radius leaked",
                )
            if service.dead_letters.count() != 0:
                raise ChaosFailure(
                    site, mode, seed,
                    f"sibling {sibling!r} grew dead letters it never earned",
                )
            if len(service.profiler.relation) != len(_INITIAL_ROWS) + 1:
                raise ChaosFailure(
                    site, mode, seed,
                    f"sibling {sibling!r} has wrong row count",
                )
            if not service.run_sentinel(full=True):
                raise ChaosFailure(
                    site, mode, seed,
                    f"sibling {sibling!r} failed exhaustive verification",
                )
        manager.close_all()
    except ChaosFailure:
        _abandon_fleet(manager)
        raise
    except (ReproError, OSError) as exc:
        _abandon_fleet(manager)
        raise ChaosFailure(
            site, mode, seed,
            f"isolation scenario errored: {type(exc).__name__}: {exc}",
        ) from exc
    return ScenarioResult(
        site, mode, seed, "isolated", len(injector.fired),
        detail=f"target={target}",
    )


def _fast_supervisor(
    manager: TenantManager, max_restarts: int = 3
) -> FleetSupervisor:
    """A supervisor tuned for deterministic, single-threaded driving:
    no backoff, a small restart budget, and ``check_once`` called by
    the harness instead of the background thread."""
    return FleetSupervisor(
        manager,
        config=SupervisorConfig(
            poll_interval=0.01,
            backoff_base=0.0,
            backoff_max=0.0,
            max_restarts=max_restarts,
            budget_window_seconds=300.0,
            breaker_retry_after=0.01,
        ),
    )


def _supervise_until_settled(
    manager: TenantManager,
    supervisor: FleetSupervisor,
    tenant_id: str,
    tokens: dict[str, tuple[str, ...]],
    rounds: int = 16,
) -> None:
    """Drive supervision passes and token re-ingest until every token is
    committed with a live writer -- or the supervisor parks the tenant.

    Each round is two ``check_once`` passes (the first restarts an
    unhealthy tenant, the second observes it healthy and lifts the
    circuit breaker) followed by a re-ingest of every token: committed
    tokens dedup to no-ops, lost ones replay exactly once.
    """
    for _ in range(rounds):
        if tenant_id in manager.parked_ids():
            return
        supervisor.check_once()
        supervisor.check_once()
        if tenant_id in manager.parked_ids():
            return
        try:
            for token, row in tokens.items():
                manager.ingest(tenant_id, "insert", rows=[row], token=token)
            manager.flush(tenant_id, timeout=0.5)
            tenant = manager.get(tenant_id)
            if tenant.worker.alive and all(
                tenant.service.is_token_known(token) for token in tokens
            ):
                return
        except (ReproError, OSError):
            continue


def run_worker_death_scenario(
    site: str, mode: str, seed: int, workdir: str
) -> ScenarioResult:
    """Kill a tenant's writer thread mid-drain; the supervisor recovers.

    The thread is the failure domain here, not a file: any fault kind
    at ``tenants.worker.apply`` kills the writer with its batch
    un-applied (the token never committed). The supervisor must notice
    the dead thread, restart the tenant through snapshot+replay, and
    re-ingested tokens must land exactly once. A *persistent* death
    loop must exhaust the restart budget and park the tenant with a
    persisted reason record -- which an operator recover then clears.
    """
    root = os.path.join(workdir, "fleet")
    tenant_id = "victim"
    tokens: dict[str, tuple[str, ...]] = {
        f"wd-{i}": (f"Wd{i}", f"8{i}{i}", str(i)) for i in range(4)
    }
    injector = FaultInjector(_plan_for(site, mode, seed))
    manager = TenantManager(root, sleep=lambda _s: None)
    supervisor = _fast_supervisor(manager)
    parked_seen = False
    try:
        manager.create(tenant_id, _tenant_config(), initial_rows=_INITIAL_ROWS)
        with active(injector):
            for token, row in tokens.items():
                try:
                    manager.ingest(tenant_id, "insert", rows=[row], token=token)
                except (ReproError, OSError):
                    pass
            manager.flush(tenant_id, timeout=0.5)
            _supervise_until_settled(manager, supervisor, tenant_id, tokens)
        # Injector gone. A parked tenant must hold a budget-exhausted
        # record, refuse traffic with a typed error, and come back on
        # operator recovery.
        if tenant_id in manager.parked_ids():
            parked_seen = True
            record = manager.parked_record(tenant_id) or {}
            if "restart budget exhausted" not in str(record.get("reason", "")):
                raise ChaosFailure(
                    site, mode, seed,
                    f"parked without a budget-exhausted reason: {record!r}",
                )
            try:
                manager.ingest(
                    tenant_id, "insert",
                    rows=[("Nope", "000", "0")], token="wd-parked",
                )
            except TenantParkedError:
                pass
            else:
                raise ChaosFailure(
                    site, mode, seed, "parked tenant accepted ingest"
                )
            manager.recover(tenant_id)
        _supervise_until_settled(manager, supervisor, tenant_id, tokens)
        tenant = manager.get(tenant_id)
        if not manager.flush(tenant_id, timeout=10.0):
            raise ChaosFailure(site, mode, seed, "clean drain timed out")
        live_rows = len(tenant.service.profiler.relation)
        expected = len(_INITIAL_ROWS) + len(tokens)
        if live_rows != expected:
            raise ChaosFailure(
                site, mode, seed,
                f"expected {expected} live rows, found {live_rows}: a "
                "token-keyed batch was lost or double-applied",
            )
        if not tenant.service.run_sentinel(full=True):
            raise ChaosFailure(
                site, mode, seed,
                "recovered profile failed exhaustive verification",
            )
        manager.close_all()
    except ChaosFailure:
        _abandon_fleet(manager)
        raise
    except (ReproError, OSError) as exc:
        _abandon_fleet(manager)
        raise ChaosFailure(
            site, mode, seed,
            f"worker-death scenario errored: {type(exc).__name__}: {exc}",
        ) from exc
    if not injector.fired:
        outcome = "not-hit"
    elif any(kind == CRASH for _, kind, _ in injector.fired):
        outcome = "crash-recovered"
    else:
        outcome = "recovered"
    return ScenarioResult(
        site, mode, seed, outcome, len(injector.fired),
        detail="parked then recovered" if parked_seen else "",
    )


def _http_request(
    host: str,
    port: int,
    method: str,
    path: str,
    body: bytes | None = None,
    timeout: float = 5.0,
) -> tuple[int, dict[str, Any]] | None:
    """One HTTP request; ``None`` when the transport failed (reset,
    torn response, timeout) -- the client-side face of a network fault."""
    conn = http_client.HTTPConnection(host, port, timeout=timeout)
    try:
        conn.request(
            method, path, body=body,
            headers={"Content-Type": "application/json"},
        )
        response = conn.getresponse()
        payload = response.read()
        document = json.loads(payload.decode("utf-8")) if payload else {}
        if not isinstance(document, dict):
            document = {"raw": document}
        return response.status, document
    except (OSError, http_client.HTTPException, json.JSONDecodeError):
        return None
    finally:
        conn.close()


def run_http_fault_scenario(
    site: str, mode: str, seed: int, workdir: str
) -> ScenarioResult:
    """Fault the network layer under a live server.

    Body reads and response writes tear mid-request; the server must
    drop (and count) the connection instead of dispatching a truncated
    payload or wedging a handler thread -- and token-keyed retries must
    land every batch exactly once, even when the *response* died after
    the batch applied.
    """
    root = os.path.join(workdir, "fleet")
    tenant_id = "web"
    tokens: dict[str, list[str]] = {
        f"hf-{i}": [f"Hf{i}", f"9{i}{i}", str(i)] for i in range(6)
    }
    injector = FaultInjector(_plan_for(site, mode, seed))
    manager = TenantManager(root, sleep=lambda _s: None)
    try:
        manager.create(tenant_id, _tenant_config(), initial_rows=_INITIAL_ROWS)
        app = ReproServerApp(manager)
        handle = serve_in_thread(app, request_timeout=2.0)
        host, port = handle.address
        try:
            transport_failures = 0
            with active(injector):
                for token, row in tokens.items():
                    body = json.dumps(
                        {"kind": "insert", "rows": [row], "token": token}
                    ).encode("utf-8")
                    if (
                        _http_request(
                            host, port, "POST",
                            f"/tenants/{tenant_id}/batches", body=body,
                        )
                        is None
                    ):
                        transport_failures += 1
            # Clean retries: every token lands exactly once -- either it
            # already applied (duplicate) or it applies now.
            for token, row in tokens.items():
                body = json.dumps(
                    {"kind": "insert", "rows": [row], "token": token}
                ).encode("utf-8")
                result = _http_request(
                    host, port, "POST",
                    f"/tenants/{tenant_id}/batches", body=body,
                )
                if result is None or result[0] not in (200, 202):
                    raise ChaosFailure(
                        site, mode, seed,
                        f"clean retry of {token!r} failed: {result!r}",
                    )
            flushed = _http_request(
                host, port, "POST", f"/tenants/{tenant_id}/flush",
                body=b'{"timeout": 10}',
            )
            if flushed is None or flushed[0] != 200:
                raise ChaosFailure(
                    site, mode, seed, f"clean flush failed: {flushed!r}"
                )
            status = _http_request(
                host, port, "GET", f"/tenants/{tenant_id}/status"
            )
            if status is None or status[0] != 200:
                raise ChaosFailure(
                    site, mode, seed, "server did not survive the faults"
                )
            if injector.fired and transport_failures:
                counters = app.metrics.to_dict().get("counters", {})
                dropped = 0.0
                if isinstance(counters, dict):
                    for name, value in counters.items():
                        if str(name).startswith("http_") and isinstance(
                            value, (int, float)
                        ):
                            dropped += float(value)
                if dropped < 1:
                    raise ChaosFailure(
                        site, mode, seed,
                        "injected transport faults left no trace on the "
                        f"transport counters: {counters!r}",
                    )
        finally:
            handle.close()
        tenant = manager.get(tenant_id)
        live_rows = len(tenant.service.profiler.relation)
        expected = len(_INITIAL_ROWS) + len(tokens)
        if live_rows != expected:
            raise ChaosFailure(
                site, mode, seed,
                f"expected {expected} live rows, found {live_rows}: a "
                "token-keyed batch was lost or double-applied",
            )
        if not tenant.service.run_sentinel(full=True):
            raise ChaosFailure(
                site, mode, seed,
                "profile failed exhaustive verification after network faults",
            )
        manager.close_all()
    except ChaosFailure:
        _abandon_fleet(manager)
        raise
    except (ReproError, OSError) as exc:
        _abandon_fleet(manager)
        raise ChaosFailure(
            site, mode, seed,
            f"http fault scenario errored: {type(exc).__name__}: {exc}",
        ) from exc
    if not injector.fired:
        outcome = "not-hit"
    elif any(kind == CRASH for _, kind, _ in injector.fired):
        outcome = "crash-recovered"
    else:
        outcome = "recovered"
    return ScenarioResult(
        site, mode, seed, outcome, len(injector.fired)
    )


def run_supervised_fleet_scenario(seed: int, workdir: str) -> ScenarioResult:
    """The whole robustness story in one run (the ``--supervised-fleet``
    gate): a three-tenant fleet under the supervisor takes a writer
    thread death, a deterministic durable-I/O crash loop, and
    network-layer faults -- and must end with every tenant SERVING a
    bit-correct profile or PARKED with a persisted explanatory record.
    Serving a wrong profile is the one outcome that fails the scenario.
    """
    from repro.baselines.bruteforce import discover_bruteforce

    site, mode = "supervised-fleet", "composite"
    root = os.path.join(workdir, "fleet")
    tenant_ids = ("alpha", "beta", "gamma")
    victim_worker = tenant_ids[seed % 3]
    victim_durable = tenant_ids[(seed + 1) % 3]
    victim_net = tenant_ids[(seed + 2) % 3]
    manager = TenantManager(root, sleep=lambda _s: None)
    supervisor = _fast_supervisor(manager, max_restarts=3)
    expected_rows = {tid: len(_INITIAL_ROWS) for tid in tenant_ids}
    fired_total = 0

    def fail(detail: str) -> ChaosFailure:
        return ChaosFailure(site, mode, seed, detail)

    try:
        for tenant_id in tenant_ids:
            manager.create(
                tenant_id, _tenant_config(), initial_rows=_INITIAL_ROWS
            )

        # --- Act 1: writer-thread death, supervised recovery ----------
        death = FaultInjector(
            FaultPlan.one_shot("tenants.worker.apply", CRASH, at=1, seed=seed)
        )
        with active(death):
            manager.ingest(
                victim_worker, "insert",
                rows=[("Wkr", "901", "1")], token="sf-worker",
            )
            manager.flush(victim_worker, timeout=1.0)
        if not death.fired:
            raise fail("worker-death fault never fired")
        fired_total += len(death.fired)
        if manager.get(victim_worker).worker.alive:
            raise fail("writer thread survived a CrashPoint")
        supervisor.check_once()  # sees the dead worker, restarts
        supervisor.check_once()  # observes it healthy, lifts the breaker
        tenant = manager.get(victim_worker)
        if not tenant.worker.alive:
            raise fail("supervisor did not restart the dead-writer tenant")
        if tenant.service.health.state.value != "serving":
            raise fail(
                f"recovered tenant is {tenant.service.health.state.value}, "
                "not serving"
            )
        if tenant.service.metrics.gauge("restarts_total").value < 1:
            raise fail("restarts_total gauge did not survive the restart")
        # The killed batch's token never committed; the replay is exact.
        manager.ingest(
            victim_worker, "insert",
            rows=[("Wkr", "901", "1")], token="sf-worker",
        )
        if not manager.flush(victim_worker, timeout=5.0):
            raise fail("post-recovery flush timed out")
        expected_rows[victim_worker] += 1

        # --- Act 2: deterministic durable fault -> crash loop ->
        # restart budget -> PARKED with a persisted record -------------
        durable = FaultInjector(
            FaultPlan.persistent("changelog.append.fsync", ERROR, at=1, seed=seed)
        )
        with active(durable):
            for _ in range(8):
                if victim_durable in manager.parked_ids():
                    break
                supervisor.check_once()
                supervisor.check_once()
                if victim_durable in manager.parked_ids():
                    break
                try:
                    manager.ingest(
                        victim_durable, "insert",
                        rows=[("Dur", "902", "2")], token="sf-durable",
                    )
                    manager.flush(victim_durable, timeout=2.0)
                except (ReproError, OSError):
                    pass
        if not durable.fired:
            raise fail("durable fault never fired")
        fired_total += len(durable.fired)
        if victim_durable not in manager.parked_ids():
            raise fail(
                "restart budget never parked the crash-looping tenant"
            )
        record = manager.parked_record(victim_durable) or {}
        if record.get("by") != "supervisor" or (
            "restart budget exhausted" not in str(record.get("reason", ""))
        ):
            raise fail(f"parked record does not explain the parking: {record!r}")
        restarts = record.get("restarts")
        if not isinstance(restarts, list) or len(restarts) != 3:
            raise fail(f"parked record lost the restart history: {record!r}")
        record_path = os.path.join(root, "parked", victim_durable + ".json")
        if not os.path.exists(record_path):
            raise fail("parked reason record was not persisted to disk")
        try:
            manager.ingest(
                victim_durable, "insert",
                rows=[("Dur", "902", "2")], token="sf-durable-parked",
            )
        except TenantParkedError:
            pass
        else:
            raise fail("parked tenant accepted ingest")
        # The operator fixed the disk (injector gone): recover revives
        # it through the same snapshot+replay path, and the batch the
        # fault kept rejecting finally lands -- exactly once.
        manager.recover(victim_durable)
        manager.ingest(
            victim_durable, "insert",
            rows=[("Dur", "902", "2")], token="sf-durable",
        )
        if not manager.flush(victim_durable, timeout=5.0):
            raise fail("post-recover flush timed out")
        expected_rows[victim_durable] += 1

        # --- Act 3: network-layer faults under a live server ----------
        app = ReproServerApp(manager)
        app.supervisor = supervisor
        handle = serve_in_thread(app, request_timeout=2.0)
        host, port = handle.address
        try:
            batches_path = f"/tenants/{victim_net}/batches"
            # (a) malformed JSON is a typed 400, not a wedged thread
            result = _http_request(
                host, port, "POST", batches_path, body=b"{not json"
            )
            if result is None or result[0] != 400:
                raise fail(f"malformed JSON was not a 400: {result!r}")
            # (b) a torn request body: the read fault drops the
            # connection; the token retry lands the batch exactly once
            body0 = json.dumps(
                {"kind": "insert", "rows": [["Net", "903", "3"]],
                 "token": "sf-net-0"}
            ).encode("utf-8")
            reset = FaultInjector(
                FaultPlan.one_shot("http.body.read", ERROR, at=1, seed=seed)
            )
            with active(reset):
                torn = _http_request(host, port, "POST", batches_path, body=body0)
            if torn is not None:
                raise fail(f"torn body still produced a response: {torn!r}")
            fired_total += len(reset.fired)
            retried = _http_request(host, port, "POST", batches_path, body=body0)
            if retried is None or retried[0] not in (200, 202):
                raise fail(f"retry after body fault failed: {retried!r}")
            # (c) a torn *response*: the batch applied but the response
            # died on the wire -- the token retry reports a duplicate
            body1 = json.dumps(
                {"kind": "insert", "rows": [["Net", "904", "4"]],
                 "token": "sf-net-1"}
            ).encode("utf-8")
            tear = FaultInjector(
                FaultPlan.one_shot("http.response.write", ERROR, at=1, seed=seed)
            )
            with active(tear):
                torn = _http_request(host, port, "POST", batches_path, body=body1)
            if torn is not None:
                raise fail(f"torn response still reached the client: {torn!r}")
            fired_total += len(tear.fired)
            retried = _http_request(host, port, "POST", batches_path, body=body1)
            if retried is None or retried[0] not in (200, 202):
                raise fail(f"retry after response fault failed: {retried!r}")
            # (d) a client that lies about Content-Length and hangs up:
            # dropped and counted, never dispatched as a truncated batch
            raw = socket.create_connection((host, port), timeout=5.0)
            try:
                raw.sendall(
                    b"POST " + batches_path.encode("ascii") + b" HTTP/1.1\r\n"
                    b"Host: chaos\r\nContent-Type: application/json\r\n"
                    b"Content-Length: 4096\r\n\r\n{\"kind\": \"ins"
                )
            finally:
                raw.close()
            # (e) the server still answers: flush, then fleet status
            # (which carries the supervisor's event log)
            flushed = _http_request(
                host, port, "POST", f"/tenants/{victim_net}/flush",
                body=b'{"timeout": 10}',
            )
            if flushed is None or flushed[0] != 200:
                raise fail(f"flush after network faults failed: {flushed!r}")
            fleet = _http_request(host, port, "GET", "/fleet/status")
            if fleet is None or fleet[0] != 200:
                raise fail("fleet status unavailable after network faults")
        finally:
            handle.close()
        expected_rows[victim_net] += 2

        # --- Final verification: correct or parked, never wrong -------
        actions = {event.action for event in supervisor.events}
        for wanted in ("restarted", "recovered", "parked"):
            if wanted not in actions:
                raise fail(
                    f"supervisor event log has no {wanted!r} event: "
                    f"{sorted(actions)!r}"
                )
        for tenant_id in tenant_ids:
            tenant = manager.get(tenant_id)
            if not manager.flush(tenant_id, timeout=5.0):
                raise fail(f"{tenant_id}: final flush timed out")
            state = tenant.service.health.state.value
            if state != "serving":
                raise fail(f"{tenant_id} ended {state}, not serving")
            live_rows = len(tenant.service.profiler.relation)
            if live_rows != expected_rows[tenant_id]:
                raise fail(
                    f"{tenant_id}: expected {expected_rows[tenant_id]} live "
                    f"rows, found {live_rows}: a batch was lost or "
                    "double-applied"
                )
            if not tenant.service.run_sentinel(full=True):
                raise fail(
                    f"{tenant_id}: profile failed exhaustive verification"
                )
            # Bit-identity: the served masks must equal a from-scratch
            # discovery over the live relation.
            mucs, mnucs = discover_bruteforce(tenant.service.profiler.relation)
            snapshot = tenant.service.profiler.snapshot()
            if set(snapshot.mucs) != set(mucs) or set(snapshot.mnucs) != set(
                mnucs
            ):
                raise fail(
                    f"{tenant_id}: served profile is not bit-identical to a "
                    "from-scratch discovery"
                )
        manager.close_all()
    except ChaosFailure:
        _abandon_fleet(manager)
        raise
    except (ReproError, OSError) as exc:
        _abandon_fleet(manager)
        raise ChaosFailure(
            site, mode, seed,
            f"supervised fleet scenario errored: {type(exc).__name__}: {exc}",
        ) from exc
    return ScenarioResult(
        site, mode, seed, "supervised", fired_total,
        detail=(
            f"worker={victim_worker} durable={victim_durable} "
            f"net={victim_net}"
        ),
    )


def _runner_for(
    site: str,
) -> "Callable[[str, str, int, str], ScenarioResult]":
    """The scenario runner responsible for a fault site."""
    if site.startswith("table."):
        return run_table_scenario
    if site.startswith("relation."):
        return run_relation_scenario
    if site.startswith("profile."):
        return run_profile_scenario
    if site.startswith("spool.write."):
        return run_producer_scenario
    if site.startswith("tenants.worker."):
        return run_worker_death_scenario
    if site.startswith("http."):
        return run_http_fault_scenario
    if site.startswith("tenants."):
        return run_tenant_fleet_scenario
    return run_service_scenario


def run_sweep(
    seeds: list[int],
    sites: list[str] | None = None,
    modes: list[str] | None = None,
    root: str | None = None,
    keep: bool = False,
    verbose: bool = False,
) -> SweepReport:
    """Run every (site, mode, seed) scenario; never stops at a failure."""
    sweep_sites = list(sites) if sites else list(registered_sites())
    sweep_modes = list(modes) if modes else list(MODES)
    unknown = set(sweep_sites) - set(registered_sites())
    if unknown:
        raise ValueError(f"unknown fault sites: {sorted(unknown)}")
    report = SweepReport()
    base = root or tempfile.mkdtemp(prefix="repro-chaos-")
    os.makedirs(base, exist_ok=True)
    try:
        for site in sweep_sites:
            runner = _runner_for(site)
            for mode in sweep_modes:
                for seed in seeds:
                    workdir = os.path.join(
                        base, f"{site.replace('.', '_')}-{mode}-s{seed}"
                    )
                    os.makedirs(workdir, exist_ok=True)
                    try:
                        result = runner(site, mode, seed, workdir)
                        report.results.append(result)
                        if verbose:
                            print(
                                f"  {site:28s} {mode:12s} seed={seed} "
                                f"-> {result.outcome}"
                                + (
                                    f" ({result.fired} fired)"
                                    if result.fired
                                    else ""
                                )
                            )
                    except ChaosFailure as failure:
                        report.failures.append(failure)
                        print(f"FAIL: {failure}", file=sys.stderr)
                    if not keep:
                        shutil.rmtree(workdir, ignore_errors=True)
    finally:
        if not keep and root is None:
            shutil.rmtree(base, ignore_errors=True)
    return report


def _sanitizer_verdict() -> int:
    """End-of-sweep lock-sanitizer check (``REPRO_SANITIZE=locks``).

    Lock-order violations raise inside the offending scenario already;
    fork-held observations are recorded by the at-fork hook and drained
    here, turning a silent fork hazard into a sweep failure.
    """
    from repro.sanitize import (
        ForkHeldLockError,
        assert_no_reports,
        locks_enabled,
    )

    if not locks_enabled():
        return 0
    try:
        assert_no_reports()
    except ForkHeldLockError as exc:
        print(f"LOCK SANITIZER: {exc}", file=sys.stderr)
        return 1
    print(
        "lock sanitizer: no order violations, no locks held across fork"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.faults.chaos",
        description="Sweep seeded faults over every registered fault site "
        "and verify the service never serves a wrong profile.",
    )
    parser.add_argument(
        "--seeds", type=int, nargs="+", default=[0, 1, 2],
        help="seed matrix (default: 0 1 2)",
    )
    parser.add_argument(
        "--sites", nargs="+", default=None,
        help="restrict to these fault sites (default: all registered)",
    )
    parser.add_argument(
        "--modes", nargs="+", default=None, choices=MODES,
        help="restrict to these fault shapes (default: all)",
    )
    parser.add_argument(
        "--root", default=None,
        help="run scenarios under this directory instead of a temp dir",
    )
    parser.add_argument(
        "--keep", action="store_true",
        help="keep scenario state directories for forensics",
    )
    parser.add_argument(
        "--list-sites", action="store_true",
        help="print the registered fault sites and exit",
    )
    parser.add_argument(
        "--multi-tenant", action="store_true",
        help="run only the multi-tenant fault-isolation scenario "
        "(one run per seed, target tenant rotated by seed)",
    )
    parser.add_argument(
        "--supervised-fleet", action="store_true",
        help="run only the supervised-fleet recovery scenario: worker "
        "deaths, a durable-fault crash loop into the restart budget, "
        "and network faults under the fleet supervisor (one run per "
        "seed, victim roles rotated by seed)",
    )
    parser.add_argument("-v", "--verbose", action="store_true")
    args = parser.parse_args(argv)

    if args.list_sites:
        from repro.faults.fsops import site_description

        for site in registered_sites():
            print(f"{site:30s} {site_description(site)}")
        return 0

    if args.supervised_fleet:
        base = args.root or tempfile.mkdtemp(prefix="repro-chaos-sf-")
        os.makedirs(base, exist_ok=True)
        failures = 0
        try:
            for seed in args.seeds:
                workdir = os.path.join(base, f"supervised-s{seed}")
                os.makedirs(workdir, exist_ok=True)
                try:
                    result = run_supervised_fleet_scenario(seed, workdir)
                    print(
                        f"  supervised-fleet seed={seed} -> {result.outcome} "
                        f"({result.detail}, {result.fired} fired)"
                    )
                except ChaosFailure as failure:
                    failures += 1
                    print(f"FAIL: {failure}", file=sys.stderr)
                if not args.keep:
                    shutil.rmtree(workdir, ignore_errors=True)
        finally:
            if not args.keep and args.root is None:
                shutil.rmtree(base, ignore_errors=True)
        if failures:
            print(f"{failures} FAILURE(S)", file=sys.stderr)
            return 1
        print(
            "supervised fleet verified: dead writers were restarted, the "
            "crash-looping tenant was parked by its restart budget with a "
            "persisted record, and every tenant ended serving a "
            "bit-correct profile"
        )
        return _sanitizer_verdict()

    if args.multi_tenant:
        base = args.root or tempfile.mkdtemp(prefix="repro-chaos-mt-")
        os.makedirs(base, exist_ok=True)
        failures = 0
        try:
            for seed in args.seeds:
                workdir = os.path.join(base, f"isolation-s{seed}")
                os.makedirs(workdir, exist_ok=True)
                try:
                    result = run_isolation_scenario(seed, workdir)
                    print(
                        f"  isolation seed={seed} -> {result.outcome} "
                        f"({result.detail}, {result.fired} fired)"
                    )
                except ChaosFailure as failure:
                    failures += 1
                    print(f"FAIL: {failure}", file=sys.stderr)
                if not args.keep:
                    shutil.rmtree(workdir, ignore_errors=True)
        finally:
            if not args.keep and args.root is None:
                shutil.rmtree(base, ignore_errors=True)
        if failures:
            print(f"{failures} FAILURE(S)", file=sys.stderr)
            return 1
        print(
            "multi-tenant isolation verified: faulted tenants degraded "
            "alone; every sibling kept serving a correct profile"
        )
        return _sanitizer_verdict()

    report = run_sweep(
        args.seeds,
        sites=args.sites,
        modes=args.modes,
        root=args.root,
        keep=args.keep,
        verbose=args.verbose,
    )
    counts = report.outcome_counts()
    total = len(report.results) + len(report.failures)
    print(
        f"chaos sweep: {total} scenarios over {len(args.seeds)} seed(s): "
        + ", ".join(f"{k}={v}" for k, v in sorted(counts.items()))
    )
    never = report.never_fired_sites()
    if never:
        print(f"note: sites never fired by any scenario: {', '.join(never)}")
    if report.failures:
        print(f"{len(report.failures)} FAILURE(S)", file=sys.stderr)
        return 1
    print("all scenarios verified: no wrong profile was ever served")
    return _sanitizer_verdict()


if __name__ == "__main__":
    sys.exit(main())
