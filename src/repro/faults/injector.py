"""Seeded, deterministic fault plans and the injector that executes them.

A :class:`FaultPlan` is a list of :class:`FaultSpec` entries, each
naming a fault **site** (see :mod:`repro.faults.fsops`), a fault
*kind*, and a firing window over that site's hit counter. A
:class:`FaultInjector` executes the plan: instrumented code calls
:meth:`FaultInjector.check` (or :meth:`FaultInjector.write`) at each
site, and the injector decides -- deterministically, given the plan and
its seed -- whether the operation fails, fails partially, or "crashes
the process".

Every decision is a pure function of the plan, the seed, and the hit
counters, so a failing chaos scenario replays exactly from
``(site, seed, mode)``.
"""

from __future__ import annotations

import errno
import random
from contextlib import contextmanager
from dataclasses import dataclass
from typing import IO, AnyStr, Iterator, Sequence

ERROR = "error"  # raise InjectedIOError, nothing written
SHORT_WRITE = "short_write"  # write a prefix, then raise InjectedIOError
CRASH = "crash"  # raise CrashPoint (simulated hard process death)

_KINDS = (ERROR, SHORT_WRITE, CRASH)


class InjectedIOError(OSError):
    """An injected I/O failure (distinguishable from organic OSErrors)."""

    def __init__(self, site: str, hit: int, detail: str = "") -> None:
        message = f"injected fault at {site} (hit {hit})"
        if detail:
            message += f": {detail}"
        super().__init__(errno.EIO, message)
        self.site = site
        self.hit = hit


class CrashPoint(BaseException):
    """Simulated hard process death at a fault site.

    Derives from :class:`BaseException` on purpose: production code that
    retries transient ``OSError``s or degrades on ``Exception`` must
    *not* be able to absorb a crash -- a real ``kill -9`` cannot be
    caught either. Harnesses catch it explicitly, abandon the service
    object without clean shutdown, and exercise cold recovery.
    """

    def __init__(self, site: str, hit: int) -> None:
        super().__init__(f"injected crash at {site} (hit {hit})")
        self.site = site
        self.hit = hit


@dataclass(frozen=True)
class FaultSpec:
    """When and how one site misbehaves.

    The site's hit counter starts at 1. A spec *arms* at hit ``at`` and
    fires on each armed hit until it has fired ``times`` times
    (``times=None`` means forever). With ``probability`` set, an armed
    hit fires only with that probability, drawn from the injector's
    seeded RNG -- deterministic per seed, intermittent in shape.
    """

    site: str
    kind: str = ERROR
    at: int = 1
    times: int | None = 1
    probability: float | None = None

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.at < 1:
            raise ValueError(f"'at' is a 1-based hit index, got {self.at}")
        if self.times is not None and self.times < 1:
            raise ValueError(f"'times' must be >= 1 or None, got {self.times}")
        if self.probability is not None and not 0.0 < self.probability <= 1.0:
            raise ValueError(
                f"'probability' must be in (0, 1], got {self.probability}"
            )


class FaultPlan:
    """An immutable set of fault specs plus the seed that resolves them."""

    def __init__(self, specs: Sequence[FaultSpec] = (), seed: int = 0) -> None:
        self.specs = tuple(specs)
        self.seed = seed

    @classmethod
    def one_shot(
        cls, site: str, kind: str = ERROR, at: int = 1, seed: int = 0
    ) -> "FaultPlan":
        """Fail exactly once, on the ``at``-th hit of ``site``."""
        return cls([FaultSpec(site, kind=kind, at=at, times=1)], seed=seed)

    @classmethod
    def persistent(
        cls, site: str, kind: str = ERROR, at: int = 1, seed: int = 0
    ) -> "FaultPlan":
        """Fail on every hit of ``site`` from the ``at``-th onward."""
        return cls([FaultSpec(site, kind=kind, at=at, times=None)], seed=seed)

    @classmethod
    def intermittent(
        cls, site: str, probability: float, kind: str = ERROR, seed: int = 0
    ) -> "FaultPlan":
        """Fail each hit of ``site`` with ``probability`` (seeded)."""
        return cls(
            [FaultSpec(site, kind=kind, times=None, probability=probability)],
            seed=seed,
        )

    def specs_for(self, site: str) -> tuple[FaultSpec, ...]:
        return tuple(spec for spec in self.specs if spec.site == site)

    def __repr__(self) -> str:
        return f"FaultPlan({list(self.specs)!r}, seed={self.seed})"


class FaultInjector:
    """Executes a :class:`FaultPlan` against instrumented call sites.

    ``hits`` counts how often each site was reached; ``fired`` logs
    every fault actually raised as ``(site, kind, hit)`` so harnesses
    can tell "survived the fault" apart from "never hit the site".
    """

    def __init__(self, plan: FaultPlan | None = None) -> None:
        self.plan = plan or FaultPlan()
        self.hits: dict[str, int] = {}
        self.fired: list[tuple[str, str, int]] = []
        self._fired_per_spec: dict[int, int] = {}
        self._rng = random.Random(self.plan.seed)

    # ------------------------------------------------------------------
    # Decision core
    # ------------------------------------------------------------------
    def _due(self, site: str, hit: int) -> FaultSpec | None:
        for index, spec in enumerate(self.plan.specs):
            if spec.site != site or hit < spec.at:
                continue
            fired = self._fired_per_spec.get(index, 0)
            if spec.times is not None and fired >= spec.times:
                continue
            if (
                spec.probability is not None
                and self._rng.random() >= spec.probability
            ):
                continue
            self._fired_per_spec[index] = fired + 1
            return spec
        return None

    def _fire(self, spec: FaultSpec, site: str, hit: int) -> None:
        self.fired.append((site, spec.kind, hit))
        if spec.kind == CRASH:
            raise CrashPoint(site, hit)
        raise InjectedIOError(site, hit)

    # ------------------------------------------------------------------
    # Instrumentation entry points
    # ------------------------------------------------------------------
    def check(self, site: str) -> None:
        """Record a hit of ``site`` and fail if the plan says so."""
        hit = self.hits.get(site, 0) + 1
        self.hits[site] = hit
        spec = self._due(site, hit)
        if spec is not None:
            self._fire(spec, site, hit)

    def write(self, site: str, handle: IO[AnyStr], data: AnyStr) -> None:
        """Like :meth:`check`, but a due fault may leave a short write.

        ``SHORT_WRITE`` writes roughly half the payload before raising;
        ``CRASH`` at a write site also leaves a partial write behind --
        exactly the torn-frame artifact a real mid-write power cut
        produces, which the changelog scanner must truncate.
        """
        hit = self.hits.get(site, 0) + 1
        self.hits[site] = hit
        spec = self._due(site, hit)
        if spec is None:
            handle.write(data)
            return
        if spec.kind in (SHORT_WRITE, CRASH) and len(data) > 1:
            handle.write(data[: max(1, len(data) // 2)])
        self._fire(spec, site, hit)

    def fired_at(self, site: str) -> int:
        return sum(1 for fired_site, _, _ in self.fired if fired_site == site)

    def __repr__(self) -> str:
        return (
            f"FaultInjector(seed={self.plan.seed}, "
            f"hits={sum(self.hits.values())}, fired={len(self.fired)})"
        )


# ----------------------------------------------------------------------
# The active injector (what fsops wrappers consult)
# ----------------------------------------------------------------------
_ACTIVE: FaultInjector | None = None


def current_injector() -> FaultInjector | None:
    """The injector instrumented operations currently report to."""
    return _ACTIVE


@contextmanager
def active(injector: FaultInjector) -> Iterator[FaultInjector]:
    """Install ``injector`` as the process-wide active injector.

    Nested activations restore the previous injector on exit, so
    harnesses can layer scoped plans.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = injector
    try:
        yield injector
    finally:
        _ACTIVE = previous
