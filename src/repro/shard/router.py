"""Shard routing: arithmetic partitioning of the global tuple-ID space.

Global tuple IDs are allocated densely and sequentially (a relation
never reuses an ID), which makes round-robin placement a pure
computation instead of a routing table:

* ``shard_of(g) = g % K`` -- perfectly balanced by construction,
* ``local_id(g) = g // K`` -- dense and sequential *within* a shard,
* ``global_id(s, l) = l * K + s`` -- the exact inverse.

Density is the load-bearing invariant: shard ``s`` receives exactly the
global IDs congruent to ``s`` below the global high-water mark, so the
local ID a shard-local relation assigns at its next insert always
equals ``g // K`` of the global ID the facade hands out, and the sum of
the shards' ``next_tuple_id`` values *is* the global ``next_tuple_id``.
Re-partitioning the same global relation (e.g. after recovery) lands
every tuple on the same shard with the same local ID, bit for bit.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Sequence

Row = tuple[Hashable, ...]


class ShardRouter:
    """Pure-arithmetic round-robin placement over ``K`` shards."""

    __slots__ = ("_n_shards",)

    def __init__(self, shards: int) -> None:
        if shards < 1:
            raise ValueError(f"shard count must be >= 1, got {shards}")
        self._n_shards = int(shards)

    @property
    def n_shards(self) -> int:
        return self._n_shards

    def shard_of(self, global_id: int) -> int:
        """The shard holding ``global_id``."""
        return global_id % self._n_shards

    def local_id(self, global_id: int) -> int:
        """``global_id`` translated into its shard's ID space."""
        return global_id // self._n_shards

    def global_id(self, shard: int, local_id: int) -> int:
        """Inverse of (:meth:`shard_of`, :meth:`local_id`)."""
        return local_id * self._n_shards + shard

    def split_ids(self, global_ids: Iterable[int]) -> dict[int, list[int]]:
        """Group global IDs by shard, translated to local IDs.

        Input order is preserved within each shard; only shards that
        actually receive an ID appear in the result.
        """
        split: dict[int, list[int]] = {}
        for global_id in global_ids:
            split.setdefault(global_id % self._n_shards, []).append(
                global_id // self._n_shards
            )
        return split

    def split_rows(
        self, first_global_id: int, rows: Sequence[Row]
    ) -> dict[int, list[Row]]:
        """Per-shard sub-batches for rows assigned dense IDs.

        Row ``i`` receives global ID ``first_global_id + i``; each
        shard's list keeps the global insertion order, which (by the
        density invariant) is exactly the order its local relation will
        assign local IDs in.
        """
        split: dict[int, list[Row]] = {}
        for offset, row in enumerate(rows):
            split.setdefault(
                (first_global_id + offset) % self._n_shards, []
            ).append(row)
        return split

    def __repr__(self) -> str:
        return f"ShardRouter(shards={self._n_shards})"
