"""The sharded SWAN facade: K shard-local profilers, one exact profile.

:class:`ShardedSwanProfiler` is a drop-in :class:`SwanProfiler`: the
service layer drives it through the same ``analyze_* / commit_* /
handle_* / preview_*`` surface and reads the same introspection API.
Internally a batch is

1. **routed** -- :class:`~repro.shard.router.ShardRouter` splits it into
   per-shard sub-batches (pure arithmetic on the dense global IDs),
2. **analysed in parallel** -- each affected shard runs its read-only
   analysis on its own profiler; shards are independent single-writers,
   so the analyses fan out through the session's
   :class:`~repro.core.parallel.FanOutPool` (threads) or
   :class:`~repro.core.parallel.ProcessFanOut` (forked children, with
   only the small outcome objects pickled back),
3. **merged** -- :class:`~repro.shard.merger.GlobalProfileMerger`
   composes the shard outcomes into the exact global profile, probing
   for cross-shard duplicates only where shard-local knowledge cannot
   decide,
4. **committed serially** -- the facade applies the shard commits in
   shard order, then publishes the merged profile. Previews stop after
   step 3 and discard everything.

``insert_only=True`` builds the shards without PLIs and without delete
handlers: the delete path raises a typed
:class:`~repro.errors.ProfileStateError` (the service surfaces it as a
client error on ``!delete``), and bootstrap skips the PLI build
entirely -- the append-only fast path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Hashable, Iterable, Sequence

from repro.core.deletes import DeleteOutcome, DeleteStats
from repro.core.inserts import InsertOutcome, InsertStats
from repro.core.parallel import make_pool
from repro.core.repository import Profile, ProfileRepository
from repro.core.swan import DiscoveryAlgorithm, SwanProfiler
from repro.errors import ProfileStateError
from repro.profiling.stats import column_statistics
from repro.shard.merger import GlobalProfileMerger, Witnesses
from repro.shard.router import ShardRouter
from repro.shard.view import ShardedRelationView
from repro.storage.plicache import DEFAULT_BUDGET_BYTES
from repro.storage.relation import Relation
from repro.storage.value_index import ValueIndex

Row = tuple[Hashable, ...]

_INSERT_ONLY = (
    "this profiler runs sharded in insert-only mode (shard_insert_only): "
    "PLIs and the delete path are disabled, only inserts are supported"
)


@dataclass
class ShardInsertOutcome(InsertOutcome):
    """Global insert analysis: merged profile plus per-shard pieces."""

    shard_rows: dict[int, list[Row]] = field(default_factory=dict)
    shard_outcomes: dict[int, InsertOutcome] = field(default_factory=dict)
    witnesses: Witnesses = field(default_factory=dict)


@dataclass
class ShardDeleteOutcome(DeleteOutcome):
    """Global delete analysis: merged profile plus per-shard pieces."""

    shard_deleted: dict[int, dict[int, Row]] = field(default_factory=dict)
    shard_outcomes: dict[int, DeleteOutcome] = field(default_factory=dict)
    witnesses: Witnesses = field(default_factory=dict)
    pruned: list[int] = field(default_factory=list)


def _merge_insert_stats(parts: Iterable[InsertStats]) -> InsertStats:
    total = InsertStats()
    for part in parts:
        total.batch_size += part.batch_size
        total.index_lookups += part.index_lookups
        total.cache_hits += part.cache_hits
        total.candidate_ids += part.candidate_ids
        total.tuples_retrieved += part.tuples_retrieved
        total.fallback_scans += part.fallback_scans
        total.broken_mucs += part.broken_mucs
        total.duplicate_groups += part.duplicate_groups
        total.retrieval.merge(part.retrieval)
    return total


def _merge_delete_stats(parts: Iterable[DeleteStats]) -> DeleteStats:
    total = DeleteStats()
    for part in parts:
        total.batch_size += part.batch_size
        total.mnucs_checked += part.mnucs_checked
        total.unaffected_short_circuits += part.unaffected_short_circuits
        total.restricted_short_circuits += part.restricted_short_circuits
        total.survivor_short_circuits += part.survivor_short_circuits
        total.complete_checks += part.complete_checks
        total.turned_mnucs += part.turned_mnucs
        total.lattice_checks += part.lattice_checks
    return total


class ShardedSwanProfiler(SwanProfiler):
    """K shard-local SWAN profilers behind one exact global facade."""

    def __init__(
        self,
        router: ShardRouter,
        profilers: Sequence[SwanProfiler],
        mucs: Iterable[int],
        mnucs: Iterable[int],
        *,
        insert_only: bool = False,
        parallelism: int = 0,
        execution_mode: str = "thread",
    ) -> None:
        # Deliberately no super().__init__: the facade owns no storage
        # of its own. It carries the merged read view, the global
        # repository and the fan-out pool; everything else lives in the
        # shard profilers, and every base method that would touch an
        # unsharded structure is overridden below.
        if not profilers:
            raise ValueError("at least one shard profiler is required")
        self._shard_profilers = tuple(profilers)
        self._router = router
        self._insert_only = insert_only
        schema = self._shard_profilers[0].relation.schema
        self._relation: Relation = ShardedRelationView(
            schema, router, [p.relation for p in self._shard_profilers]
        )
        self._repository = ProfileRepository(mucs, mnucs)
        self._stats = column_statistics(self._relation)
        # With an explicit parallelism the pool honours it; otherwise
        # one slot per shard -- the natural width, since shard analyses
        # are the unit of fan-out.
        width = parallelism if parallelism >= 2 else router.n_shards
        self._pool = make_pool(execution_mode, width)
        self._merger = GlobalProfileMerger(
            router, self._shard_profilers, self._relation.n_columns
        )
        self._generation = 0
        self.last_insert_stats: InsertStats | None = None
        self.last_delete_stats: DeleteStats | None = None

    # ------------------------------------------------------------------
    # Bootstrap
    # ------------------------------------------------------------------
    @classmethod
    def partition(
        cls,
        relation: Relation,
        *,
        shards: int,
        insert_only: bool = False,
        algorithm: DiscoveryAlgorithm | str = "ducc",
        global_profile: tuple[list[int], list[int]] | None = None,
        index_quota: int | None = None,
        parallelism: int = 0,
        execution_mode: str = "thread",
        cache_budget_bytes: int | None = DEFAULT_BUDGET_BYTES,
    ) -> "ShardedSwanProfiler":
        """Split ``relation`` across ``shards`` and wire the facade up.

        Tombstoned global IDs are re-created in their shard (placeholder
        insert + delete, exactly as snapshot recovery does), so
        re-partitioning a recovered relation is bit-identical to the
        fleet that wrote the snapshot. ``global_profile`` short-circuits
        the *global* discovery (recovery knows it from the snapshot);
        the per-shard profiles are always discovered, shard by shard.
        When ``algorithm`` is a callable it is invoked once per shard
        relation -- and once on ``relation`` itself unless
        ``global_profile`` is given.
        """
        router = ShardRouter(shards)
        parts = [Relation(relation.schema) for _ in range(router.n_shards)]
        placeholder: Row = ("",) * relation.n_columns
        dead: list[list[int]] = [[] for _ in range(router.n_shards)]
        for global_id in range(relation.next_tuple_id):
            shard = router.shard_of(global_id)
            if relation.is_live(global_id):
                parts[shard].insert(relation.row(global_id))
            else:
                parts[shard].insert(placeholder)
                dead[shard].append(router.local_id(global_id))
        for shard, local_ids in enumerate(dead):
            parts[shard].delete_many(local_ids)

        def run_discovery(target: Relation) -> tuple[list[int], list[int]]:
            if callable(algorithm):
                return algorithm(target)
            from repro.profiling.discovery import discover

            return discover(target, algorithm)

        if cache_budget_bytes is None or cache_budget_bytes == 0:
            shard_budget = cache_budget_bytes
        else:
            shard_budget = max(1, cache_budget_bytes // router.n_shards)
        profilers = []
        for part in parts:
            shard_mucs, shard_mnucs = run_discovery(part)
            profilers.append(
                SwanProfiler(
                    part,
                    shard_mucs,
                    shard_mnucs,
                    index_quota=index_quota,
                    maintain_plis=not insert_only,
                    parallelism=0,
                    execution_mode="thread",
                    cache_budget_bytes=shard_budget,
                )
            )
        if global_profile is None:
            global_profile = run_discovery(relation)
        facade = cls(
            router,
            profilers,
            global_profile[0],
            global_profile[1],
            insert_only=insert_only,
            parallelism=parallelism,
            execution_mode=execution_mode,
        )
        facade._merger.bootstrap(global_profile[1])
        return facade

    # ------------------------------------------------------------------
    # Introspection overrides
    # ------------------------------------------------------------------
    @property
    def shards(self) -> tuple[SwanProfiler, ...]:
        """The shard-local profilers, in shard order."""
        return self._shard_profilers

    @property
    def router(self) -> ShardRouter:
        return self._router

    @property
    def insert_only(self) -> bool:
        return self._insert_only

    @property
    def indexed_columns(self) -> frozenset[int]:
        """Union of the shards' index covers."""
        columns: set[int] = set()
        for profiler in self._shard_profilers:
            columns.update(profiler.indexed_columns)
        return frozenset(columns)

    def cache_stats(self) -> dict[str, int]:
        """Key-wise sum of the shards' partition-cache counters."""
        merged: dict[str, int] = {}
        for profiler in self._shard_profilers:
            for key, value in profiler.cache_stats().items():
                merged[key] = merged.get(key, 0) + value
        return merged

    def encoding_stats(self) -> dict[str, int]:
        """Key-wise sum of the shards' dictionary-encoding sizes."""
        merged: dict[str, int] = {}
        for profiler in self._shard_profilers:
            for key, value in profiler.encoding_stats().items():
                merged[key] = merged.get(key, 0) + value
        return merged

    def shard_stats(self) -> dict[str, object]:
        """Fleet gauges: shard count, row spread and merge counters."""
        stats: dict[str, object] = {
            "shard_count": self._router.n_shards,
            "insert_only": self._insert_only,
            "shard_rows": [
                len(profiler.relation) for profiler in self._shard_profilers
            ],
        }
        stats.update(self._merger.stats_dict())
        return stats

    def value_index(self, column: int) -> ValueIndex:
        raise ProfileStateError(
            "shard value indexes hold shard-local IDs; probe them through "
            "the shard profilers (facade.shards[i].value_index(column))"
        )

    def close(self) -> None:
        self._pool.close()
        for profiler in self._shard_profilers:
            profiler.close()

    def approximation_degree(self, columns: Iterable[str | int]) -> int:
        """Rows to remove for ``columns`` to be globally unique.

        Computed by value-level grouping across all shards (shard PLIs
        hold local IDs and shard-local codes, so they cannot be merged
        directly); unlike the unsharded path this also works in
        insert-only mode.
        """
        from repro.lattice.combination import columns_of

        mask = self._relation.schema.mask(columns)
        indices = columns_of(mask)
        counts: dict[Row, int] = {}
        total = 0
        for profiler in self._shard_profilers:
            for row in profiler.relation.iter_rows():
                key = tuple(row[index] for index in indices)
                counts[key] = counts.get(key, 0) + 1
                total += 1
        return total - len(counts)

    def compact_storage(self) -> int:
        """Compact every shard in place; local (hence global) IDs survive."""
        return sum(
            profiler.compact_storage() for profiler in self._shard_profilers
        )

    # ------------------------------------------------------------------
    # Split-phase batch application
    # ------------------------------------------------------------------
    def analyze_inserts(
        self, rows: Sequence[Sequence[Hashable]]
    ) -> ShardInsertOutcome:
        """Fan the insert analysis out to the affected shards and merge."""
        from repro.errors import ArityError

        arity = self._relation.n_columns
        materialized = [tuple(row) for row in rows]
        for position, row in enumerate(materialized):
            if len(row) != arity:
                raise ArityError(
                    f"batch row {position} has {len(row)} values, "
                    f"schema has {arity} columns"
                )
        first_id = self._relation.next_tuple_id
        new_rows = {
            first_id + offset: row
            for offset, row in enumerate(materialized)
        }
        shard_rows = self._router.split_rows(first_id, materialized)
        work = sorted(shard_rows)

        def analyze_one(shard: int) -> InsertOutcome:
            return self._shard_profilers[shard].analyze_inserts(
                shard_rows[shard]
            )

        outcomes = dict(zip(work, self._pool.map(analyze_one, work)))
        shard_mnucs: list[Sequence[int]] = []
        for shard, profiler in enumerate(self._shard_profilers):
            if shard in outcomes:
                shard_mnucs.append(outcomes[shard].mnucs)
            else:
                shard_mnucs.append(profiler.snapshot().mnucs)
        mucs, mnucs, witnesses = self._merger.merge_inserts(
            new_rows, self._repository.mucs, self._repository.mnucs, shard_mnucs
        )
        stats = _merge_insert_stats(
            outcome.stats for outcome in outcomes.values()
        )
        stats.batch_size = len(materialized)
        return ShardInsertOutcome(
            mucs=mucs,
            mnucs=mnucs,
            stats=stats,
            shard_rows=shard_rows,
            shard_outcomes=outcomes,
            witnesses=witnesses,
        )

    def commit_inserts(
        self, rows: Sequence[Sequence[Hashable]], outcome: InsertOutcome
    ) -> Profile:
        """Apply the shard commits in shard order, then publish."""
        if not isinstance(outcome, ShardInsertOutcome):
            raise ProfileStateError(
                "sharded commit requires the outcome of a sharded analysis"
            )
        for shard in sorted(outcome.shard_outcomes):
            self._shard_profilers[shard].commit_inserts(
                outcome.shard_rows[shard], outcome.shard_outcomes[shard]
            )
        self._merger.apply_witnesses(outcome.witnesses)
        self._repository.replace(outcome.mucs, outcome.mnucs)
        self.last_insert_stats = outcome.stats
        self._generation += 1
        return self._repository.snapshot()

    def analyze_deletes(
        self, tuple_ids: Iterable[int]
    ) -> tuple[dict[int, Row], ShardDeleteOutcome]:
        """Fan the delete analysis out to the affected shards and merge."""
        if self._insert_only:
            raise ProfileStateError(_INSERT_ONLY)
        # Capture through the view first: a bad ID rejects the whole
        # batch (TupleIdError) before any shard has analysed anything.
        deleted_rows: dict[int, Row] = {
            tuple_id: self._relation.row(tuple_id) for tuple_id in tuple_ids
        }
        split = self._router.split_ids(deleted_rows)
        work = sorted(split)

        def analyze_one(shard: int) -> tuple[dict[int, Row], DeleteOutcome]:
            return self._shard_profilers[shard].analyze_deletes(split[shard])

        results = dict(zip(work, self._pool.map(analyze_one, work)))
        shard_mnucs: list[Sequence[int]] = []
        for shard, profiler in enumerate(self._shard_profilers):
            if shard in results:
                shard_mnucs.append(results[shard][1].mnucs)
            else:
                shard_mnucs.append(profiler.snapshot().mnucs)
        mucs, mnucs, witnesses, pruned = self._merger.merge_deletes(
            frozenset(deleted_rows), shard_mnucs, self._repository.mucs
        )
        stats = _merge_delete_stats(
            outcome.stats for _, outcome in results.values()
        )
        stats.batch_size = len(deleted_rows)
        outcome = ShardDeleteOutcome(
            mucs=mucs,
            mnucs=mnucs,
            stats=stats,
            shard_deleted={
                shard: local_rows for shard, (local_rows, _) in results.items()
            },
            shard_outcomes={
                shard: shard_outcome
                for shard, (_, shard_outcome) in results.items()
            },
            witnesses=witnesses,
            pruned=pruned,
        )
        return deleted_rows, outcome

    def commit_deletes(
        self, deleted_rows: dict[int, Row], outcome: DeleteOutcome
    ) -> Profile:
        """Apply the shard commits in shard order, then publish."""
        if not isinstance(outcome, ShardDeleteOutcome):
            raise ProfileStateError(
                "sharded commit requires the outcome of a sharded analysis"
            )
        for shard in sorted(outcome.shard_outcomes):
            self._shard_profilers[shard].commit_deletes(
                outcome.shard_deleted[shard], outcome.shard_outcomes[shard]
            )
        self._merger.apply_witnesses(outcome.witnesses, outcome.pruned)
        self._repository.replace(outcome.mucs, outcome.mnucs)
        self.last_delete_stats = outcome.stats
        self._generation += 1
        return self._repository.snapshot()

    def __repr__(self) -> str:
        profile = self._repository.snapshot()
        mode = ", insert_only" if self._insert_only else ""
        return (
            f"ShardedSwanProfiler(shards={self._router.n_shards}{mode}, "
            f"rows={len(self._relation)}, |MUCS|={len(profile.mucs)}, "
            f"|MNUCS|={len(profile.mnucs)})"
        )

