"""A read-only global relation view over shard-local relations.

Service-layer code (snapshots, sentinel checks, status gauges, CSV
dumps, holistic re-discovery) is written against the
:class:`~repro.storage.relation.Relation` read API. The sharded
profiler satisfies all of it with this view: every read routes through
the :class:`~repro.shard.router.ShardRouter` arithmetic, iteration
merges the shards' ascending local streams into one ascending global ID
stream, and every mutator raises -- batches enter through the profiler
facade, never through the view.

Dictionary codes are shard-local (each shard relation interns its own
values), so the code-level API (``encoding``, ``codes_for_ids``) is
deliberately unavailable here; global consumers group by *values*,
which are comparable everywhere.
"""

from __future__ import annotations

import heapq
from typing import Hashable, Iterable, Iterator, NoReturn, Sequence

import numpy as np

from repro.errors import ProfileStateError, TupleIdError
from repro.lattice.combination import columns_of
from repro.shard.router import ShardRouter
from repro.storage.encoding import RelationEncoding
from repro.storage.relation import Relation
from repro.storage.schema import Schema

Row = tuple[Hashable, ...]

_READ_ONLY = (
    "the sharded relation view is read-only; apply batches through the "
    "sharded profiler"
)


class ShardedRelationView(Relation):
    """Merged read view over the shard-local relations of one fleet."""

    __slots__ = ("_router", "_parts")

    def __init__(
        self,
        schema: Schema,
        router: ShardRouter,
        parts: Sequence[Relation],
    ) -> None:
        if len(parts) != router.n_shards:
            raise ValueError(
                f"router expects {router.n_shards} shards, got {len(parts)}"
            )
        super().__init__(schema)
        self._router = router
        self._parts = tuple(parts)

    @property
    def parts(self) -> tuple[Relation, ...]:
        """The shard-local relations, in shard order."""
        return self._parts

    @property
    def router(self) -> ShardRouter:
        return self._router

    # ------------------------------------------------------------------
    # Mutation: forbidden on the view
    # ------------------------------------------------------------------
    def insert(self, row: Sequence[Hashable]) -> NoReturn:
        raise ProfileStateError(_READ_ONLY)

    def insert_many(self, rows: Iterable[Sequence[Hashable]]) -> NoReturn:
        raise ProfileStateError(_READ_ONLY)

    def delete(self, tuple_id: int) -> NoReturn:
        raise ProfileStateError(_READ_ONLY)

    def delete_many(self, tuple_ids: Iterable[int]) -> NoReturn:
        raise ProfileStateError(_READ_ONLY)

    def compact_in_place(self) -> NoReturn:
        # Per-shard compaction preserves local (hence global) IDs; the
        # facade's ``compact_storage`` drives it shard by shard.
        raise ProfileStateError(_READ_ONLY)

    # ------------------------------------------------------------------
    # Sizing
    # ------------------------------------------------------------------
    @property
    def next_tuple_id(self) -> int:
        # Density invariant (see router module): the global high-water
        # mark is exactly the sum of the shards' local ones.
        return sum(part.next_tuple_id for part in self._parts)

    @property
    def encoding(self) -> RelationEncoding:
        raise ProfileStateError(
            "shard-local dictionary codes are not comparable across "
            "shards; group by values, or use a shard relation's encoding"
        )

    @property
    def storage_rows(self) -> int:
        return sum(part.storage_rows for part in self._parts)

    @property
    def tombstone_count(self) -> int:
        return sum(part.tombstone_count for part in self._parts)

    @property
    def live_fraction(self) -> float:
        storage = self.storage_rows
        return len(self) / storage if storage else 1.0

    def __len__(self) -> int:
        return sum(len(part) for part in self._parts)

    # ------------------------------------------------------------------
    # Point access
    # ------------------------------------------------------------------
    def _route(self, tuple_id: int) -> tuple[Relation, int]:
        if not 0 <= tuple_id < self.next_tuple_id:
            raise TupleIdError(f"tuple ID {tuple_id} does not exist")
        return (
            self._parts[self._router.shard_of(tuple_id)],
            self._router.local_id(tuple_id),
        )

    def _route_live(self, tuple_id: int) -> tuple[Relation, int]:
        part, local_id = self._route(tuple_id)
        if not part.is_live(local_id):
            raise TupleIdError(f"tuple ID {tuple_id} was deleted")
        return part, local_id

    def is_live(self, tuple_id: int) -> bool:
        if not 0 <= tuple_id < self.next_tuple_id:
            return False
        part, local_id = self._route(tuple_id)
        return part.is_live(local_id)

    def row(self, tuple_id: int) -> Row:
        part, local_id = self._route_live(tuple_id)
        return part.row(local_id)

    def value(self, tuple_id: int, column: int) -> Hashable:
        part, local_id = self._route_live(tuple_id)
        return part.value(local_id, column)

    def project(self, tuple_id: int, mask: int) -> Row:
        part, local_id = self._route_live(tuple_id)
        return part.project(local_id, mask)

    def codes_for_ids(self, column: int, tuple_ids: np.ndarray) -> NoReturn:
        raise ProfileStateError(
            "shard-local dictionary codes are not comparable across "
            "shards; use value-level access on the view"
        )

    # ------------------------------------------------------------------
    # Iteration: K-way merge into ascending global IDs
    # ------------------------------------------------------------------
    def live_ids_array(self) -> np.ndarray:
        arrays = [
            part.live_ids_array() * np.int64(self._router.n_shards)
            + np.int64(shard)
            for shard, part in enumerate(self._parts)
        ]
        merged = np.concatenate(arrays) if arrays else np.empty(0, np.int64)
        merged.sort()
        return merged

    def iter_ids(self) -> Iterator[int]:
        def one_shard(shard: int, part: Relation) -> Iterator[int]:
            for local_id in part.iter_ids():
                yield self._router.global_id(shard, local_id)

        return heapq.merge(
            *(one_shard(shard, part) for shard, part in enumerate(self._parts))
        )

    def iter_items(self) -> Iterator[tuple[int, Row]]:
        def one_shard(shard: int, part: Relation) -> Iterator[tuple[int, Row]]:
            for local_id, row in part.iter_items():
                yield self._router.global_id(shard, local_id), row

        # Global IDs are unique, so the merge never compares the rows.
        return heapq.merge(
            *(one_shard(shard, part) for shard, part in enumerate(self._parts))
        )

    def iter_rows(self) -> Iterator[Row]:
        return (row for _, row in self.iter_items())

    def column_values(self, column: int) -> Iterator[tuple[int, Hashable]]:
        def one_shard(
            shard: int, part: Relation
        ) -> Iterator[tuple[int, Hashable]]:
            for local_id, value in part.column_values(column):
                yield self._router.global_id(shard, local_id), value

        return heapq.merge(
            *(one_shard(shard, part) for shard, part in enumerate(self._parts))
        )

    # ------------------------------------------------------------------
    # Whole-relation queries (value-level, shard-blind)
    # ------------------------------------------------------------------
    def cardinality(self, column: int) -> int:
        distinct: set[Hashable] = set()
        for part in self._parts:
            distinct.update(value for _, value in part.column_values(column))
        return len(distinct)

    def duplicate_exists(self, mask: int) -> bool:
        indices = columns_of(mask)
        seen: set[Row] = set()
        for part in self._parts:
            for row in part.iter_rows():
                key = tuple(row[index] for index in indices)
                if key in seen:
                    return True
                seen.add(key)
        return False

    def group_duplicates(self, mask: int) -> dict[Row, list[int]]:
        groups: dict[Row, list[int]] = {}
        indices = columns_of(mask)
        for tuple_id, row in self.iter_items():
            key = tuple(row[index] for index in indices)
            groups.setdefault(key, []).append(tuple_id)
        return {key: ids for key, ids in groups.items() if len(ids) >= 2}

    def restrict_columns(self, n_columns: int) -> Relation:
        projected = Relation(self.schema.prefix(n_columns))
        for row in self.iter_rows():
            projected.insert(row[:n_columns])
        return projected

    def copy(self) -> Relation:
        """Materialize a flat relation with the view's exact IDs.

        Tombstoned global IDs are re-created the same way snapshot
        recovery does (placeholder insert + delete), so the copy's ID
        space matches the view's bit for bit.
        """
        clone = Relation(self.schema)
        placeholder: Row = ("",) * len(self.schema)
        live = dict(self.iter_items())
        dead: list[int] = []
        for tuple_id in range(self.next_tuple_id):
            row = live.get(tuple_id)
            if row is None:
                clone.insert(placeholder)
                dead.append(tuple_id)
            else:
                clone.insert(row)
        clone.delete_many(dead)
        return clone

    def __repr__(self) -> str:
        return (
            f"ShardedRelationView({self._router.n_shards} shards, "
            f"{len(self)} live rows, {self.tombstone_count} tombstones)"
        )
