"""Exact fleet-wide (MUCS, MNUCS) maintenance over shard-local profiles.

The composition theorem this module implements (the shard analogue of
the paper's agree-set machinery):

* A combination is **globally unique** iff it is unique in *every*
  shard **and** no duplicate pair straddles two shards. Shard profiles
  are exact for intra-shard pairs, so the global verdict can only
  differ from the shard-local one for combinations that are
  shard-locally unique everywhere -- and only a *cross-shard* duplicate
  pair can flip it. Those are the only combinations this module ever
  probes.
* The **global MNUCS** are ``maximize(union of shard MNUCS + maximal
  cross-shard agree sets)``: every intra-shard duplicate pair is
  dominated by some shard MNUC, every cross-shard pair by its agree
  set, and each such mask is genuinely non-unique, so the maximized
  union is exactly the set of maximal non-unique combinations. The
  global MUCS follow by transversal duality (``repro.lattice``).

**Inserts** compose rather than re-derive: a batch can break a global
MUC through an intra-batch pair (the batch agree-set antichain), an
intra-shard pair (already inside that shard's *post-batch* MNUCS from
the shard analyses), or a *cross-shard* pair between an insert and a
resident of another shard. Only the last kind needs probing, and only
through one covering value index per (global MUC, shard) -- any cross
pair agreeing on a still-unique MUC must agree on that probe column,
so batching the foreign inserts' values against it finds every such
pair. Each pair's agree set is computed once and shared across every
MUC it breaks; the new MNUCS are the maximized union of all four
sources and the new MUCS follow per broken MUC via
``minimal_unique_supersets``. Pairs whose members live on different
shards are remembered in ``cross_sets`` as *witnesses*.

**Deletes** exploit "deletes never create duplicates": every surviving
shard MNUC and every witness mask whose pair survived the batch is
still non-unique, so they seed the border. The transversal-duality
fixpoint then mirrors the delete handler's hole detection: candidate
minimal uniques implied by the border that do not contain a pre-delete
global MUC are verified by a cross-shard duplicate probe; a found pair
feeds its agree set back into the border, and when no candidate fails
the border *is* the new MNUCS and the candidates are the new MUCS. The
probes share one :class:`_CrossProbe` context per merge: for a probed
column it materializes only the rows whose value occurs in two or more
shards (the only rows a cross-shard pair can touch), so repeated
candidates against the same region cost one index sweep, not one
relation scan each.

Both merge computations are pure analyses: they read the shards'
pre-commit state (delete probes filter the doomed IDs explicitly) and
return the new global profile plus witness edits, which the facade
applies only when the batch commits -- previews discard them.
"""

from __future__ import annotations

import time
from typing import Hashable, Iterable, Mapping, Sequence

import numpy as np

from repro.core.inserts import batch_agree_antichain
from repro.core.swan import SwanProfiler
from repro.lattice.antichain import MaximalAntichain, sorted_masks
from repro.lattice.combination import (
    columns_of,
    is_subset,
    maximize,
    minimize,
)
from repro.lattice.transversal import minimal_unique_supersets, mucs_from_mnucs
from repro.profiling.verify import agree_set
from repro.sanitize import make_lock, register_fork_owner
from repro.shard.router import ShardRouter
from repro.storage.encoding import encode_rows_local

Row = tuple[Hashable, ...]

Witnesses = dict[int, tuple[int, int]]


class GlobalProfileMerger:
    """Maintains the fleet-wide profile by exact cross-shard composition.

    ``cross_sets`` maps a maximal cross-shard agree-set mask to one
    *witness* duplicate pair (global IDs on different shards). Witnesses
    are a cache, not a correctness requirement: a delete that kills a
    witness simply forces the fixpoint to re-probe the affected region.
    """

    __slots__ = (
        "_router",
        "_profilers",
        "_n_columns",
        "_lock",
        "cross_sets",
        "merge_seconds",
        "cross_shard_probes",
        "cross_shard_fallbacks",
        "__weakref__",
    )

    def __init__(
        self,
        router: ShardRouter,
        profilers: Sequence[SwanProfiler],
        n_columns: int,
    ) -> None:
        self._router = router
        self._profilers = tuple(profilers)
        self._n_columns = n_columns
        # Witness map and merge stats are read by status/stats pollers
        # while the (single) applier thread commits witness edits.
        self._lock = make_lock("shard.merger")
        self.cross_sets: Witnesses = {}
        self.merge_seconds = 0.0
        self.cross_shard_probes = 0
        self.cross_shard_fallbacks = 0
        register_fork_owner(self)

    def _reset_locks_after_fork(self) -> None:
        self._lock = make_lock("shard.merger")

    # ------------------------------------------------------------------
    # Bootstrap
    # ------------------------------------------------------------------
    def bootstrap(self, global_mnucs: Iterable[int]) -> None:
        """Seed witnesses for MNUCs no single shard can account for.

        A global MNUC contained in some shard MNUC has an intra-shard
        duplicate pair and needs no witness. Any other global MNUC is
        unique inside every shard, so *every* duplicate pair on it is
        cross-shard -- the probe below is guaranteed to find one.
        """
        shard_mnucs = [
            profiler.snapshot().mnucs for profiler in self._profilers
        ]
        probe = _CrossProbe(self, frozenset())
        for mask in global_mnucs:
            if any(
                is_subset(mask, shard_mask)
                for mnucs in shard_mnucs
                for shard_mask in mnucs
            ):
                continue
            found = probe.find(mask)
            if found is not None:
                witness_mask, pair = found
                with self._lock:
                    self.cross_sets.setdefault(witness_mask, pair)

    # ------------------------------------------------------------------
    # Insert merge (compose batch, shard and cross-shard evidence)
    # ------------------------------------------------------------------
    def merge_inserts(
        self,
        new_rows: Mapping[int, Row],
        old_mucs: Sequence[int],
        old_mnucs: Sequence[int],
        shard_mnucs: Sequence[Sequence[int]],
    ) -> tuple[list[int], list[int], Witnesses]:
        """The post-insert global profile, computed pre-commit.

        ``new_rows`` maps the batch's *global* IDs to rows; the shard
        relations and indexes must still be in their pre-batch state.
        ``shard_mnucs`` holds each shard's *post-batch* MNUCS (from the
        shard analyses) -- they dominate every intra-shard duplicate
        pair, old-old and new-anything alike, so only pairs straddling
        shards are probed here. Returns ``(mucs, mnucs, new
        witnesses)`` without mutating ``cross_sets`` -- the facade
        applies the witnesses on commit.
        """
        started = time.perf_counter()
        try:
            if not new_rows:
                return list(old_mucs), list(old_mnucs), {}
            witnesses: Witnesses = {}
            non_unique: set[int] = set(old_mnucs)
            for mnucs in shard_mnucs:
                non_unique.update(mnucs)
            # Intra-batch pairs: the vectorized antichain when the batch
            # is small, otherwise per-MUC grouping (the same threshold
            # the single-node handler uses -- only pairs agreeing on a
            # still-unique MUC can carry new information).
            if len(new_rows) ** 2 < max(4096, len(old_mucs) * len(new_rows)):
                non_unique.update(
                    batch_agree_antichain(
                        list(new_rows.values()), self._n_columns
                    ).masks()
                )
            else:
                non_unique.update(
                    self._batch_pair_masks(new_rows, old_mucs, witnesses)
                )
            non_unique.update(
                self._cross_agree_masks(new_rows, old_mucs, witnesses)
            )
            new_mnucs = maximize(non_unique)
            new_mucs: list[int] = []
            for muc_mask in old_mucs:
                blockers = [
                    mask for mask in new_mnucs if is_subset(muc_mask, mask)
                ]
                if not blockers:
                    new_mucs.append(muc_mask)
                else:
                    new_mucs.extend(
                        minimal_unique_supersets(
                            muc_mask, blockers, self._n_columns
                        )
                    )
            return minimize(new_mucs), new_mnucs, witnesses
        finally:
            with self._lock:
                self.merge_seconds += time.perf_counter() - started

    def _batch_pair_masks(
        self,
        new_rows: Mapping[int, Row],
        old_mucs: Sequence[int],
        witnesses: Witnesses,
    ) -> set[int]:
        """Agree sets of intra-batch pairs that agree on some old MUC.

        A batch pair whose agree set contains no pre-batch global MUC
        was non-unique already (its mask sits under an old MNUC), so
        grouping the batch on each MUC's projection finds every pair
        that matters without enumerating all O(batch**2) of them.
        """
        masks: set[int] = set()
        shard_of = self._router.shard_of
        seen_pairs: set[tuple[int, int]] = set()
        ids = list(new_rows)
        rows = list(new_rows.values())
        codes = []
        duplicated = []
        for column in range(self._n_columns):
            column_codes = encode_rows_local(rows, column)
            codes.append(column_codes)
            # True where the row's value occurs at least twice in the
            # batch -- a necessary condition for membership in any
            # duplicate group touching this column.
            counts = np.bincount(column_codes)
            duplicated.append(counts[column_codes] >= 2)
        for muc_mask in old_mucs:
            # Rows lacking a batch-duplicated value in *some* MUC column
            # cannot pair on it; lexsort only the survivors -- one numpy
            # pass per MUC instead of one Python projection per row.
            indices = columns_of(muc_mask)
            flags = duplicated[indices[0]]
            for index in indices[1:]:
                flags = flags & duplicated[index]
            survivors = np.flatnonzero(flags)
            if survivors.size < 2:
                continue
            arrays = [codes[index][survivors] for index in indices]
            order = np.lexsort(arrays)
            keys = np.stack([array[order] for array in arrays], axis=1)
            change = np.concatenate(
                ([True], np.any(keys[1:] != keys[:-1], axis=1))
            )
            starts = np.flatnonzero(change)
            ends = np.concatenate((starts[1:], [len(order)]))
            for start, end in zip(starts, ends):
                if end - start < 2:
                    continue
                members = sorted(
                    int(slot) for slot in survivors[order[start:end]]
                )
                for offset, left_slot in enumerate(members):
                    left_id, left_row = ids[left_slot], rows[left_slot]
                    for right_slot in members[offset + 1 :]:
                        right_id = ids[right_slot]
                        pair = (left_id, right_id)
                        if pair in seen_pairs:
                            continue
                        seen_pairs.add(pair)
                        mask = agree_set(left_row, rows[right_slot])
                        masks.add(mask)
                        if mask not in witnesses and shard_of(
                            left_id
                        ) != shard_of(right_id):
                            witnesses[mask] = pair
        return masks

    def _cross_agree_masks(
        self,
        new_rows: Mapping[int, Row],
        old_mucs: Sequence[int],
        witnesses: Witnesses,
    ) -> set[int]:
        """Agree sets of insert/resident pairs that straddle shards.

        Only pairs agreeing on some pre-batch global MUC can carry new
        information (any other cross pair's agree set was already
        non-unique and sits under an old MNUC), so per shard it
        suffices to probe one covering value index per MUC -- the most
        selective one -- with the values of the inserts routed
        *elsewhere*. Each discovered pair's agree set is computed once
        and shared by every MUC it breaks. Shards with no covering
        index for some MUC (possible only with < 2 live rows, or a
        momentarily stale cover) fall back to pairing all their
        residents against the foreign inserts, which is counted.
        """
        masks: set[int] = set()
        shard_of = self._router.shard_of
        global_id_of = self._router.global_id
        # The batch grouped by value, once per column (shards share it;
        # inserts routed to the probed shard are skipped at hit time).
        grouped: dict[int, dict[Hashable, list[tuple[int, Row]]]] = {}

        def grouped_on(column: int) -> dict[Hashable, list[tuple[int, Row]]]:
            by_value = grouped.get(column)
            if by_value is None:
                by_value = {}
                for insert_id, insert_row in new_rows.items():
                    by_value.setdefault(insert_row[column], []).append(
                        (insert_id, insert_row)
                    )
                grouped[column] = by_value
            return by_value

        for shard, profiler in enumerate(self._profilers):
            part = profiler.relation
            indexed = profiler.indexed_columns
            probe_columns: set[int] = set()
            fallback = False
            for muc_mask in old_mucs:
                covering = [
                    column
                    for column in columns_of(muc_mask)
                    if column in indexed
                ]
                if not covering:
                    fallback = True
                    break
                # Highest distinct count = most selective probe.
                probe_columns.add(
                    max(
                        covering,
                        key=lambda column: len(profiler.value_index(column)),
                    )
                )
            row_cache: dict[int, Row] = {}
            seen_pairs: set[tuple[int, int]] = set()

            def note(local_id: int, insert_id: int, insert_row: Row) -> None:
                resident_id = global_id_of(shard, local_id)
                pair = (resident_id, insert_id)
                if pair in seen_pairs:
                    return
                seen_pairs.add(pair)
                resident_row = row_cache.get(local_id)
                if resident_row is None:
                    resident_row = part.row(local_id)
                    row_cache[local_id] = resident_row
                mask = agree_set(resident_row, insert_row)
                masks.add(mask)
                if mask not in witnesses:
                    witnesses[mask] = pair

            if fallback:
                with self._lock:
                    self.cross_shard_fallbacks += 1
                for local_id in part.iter_ids():
                    for insert_id, insert_row in new_rows.items():
                        if shard_of(insert_id) != shard:
                            note(local_id, insert_id, insert_row)
                continue
            for column in probe_columns:
                index = profiler.value_index(column)
                by_value = grouped_on(column)
                values = list(by_value)
                with self._lock:
                    self.cross_shard_probes += len(values)
                for value, posting in zip(values, index.lookup_batch(values)):
                    if not posting.size:
                        continue
                    local_ids = [int(local_id) for local_id in posting]
                    for insert_id, insert_row in by_value[value]:
                        if shard_of(insert_id) == shard:
                            continue
                        for local_id in local_ids:
                            note(local_id, insert_id, insert_row)
        return masks

    # ------------------------------------------------------------------
    # Delete merge (duality fixpoint over the composed border)
    # ------------------------------------------------------------------
    def merge_deletes(
        self,
        deleted: frozenset[int],
        shard_mnucs: Sequence[Sequence[int]],
        pre_mucs: Sequence[int],
    ) -> tuple[list[int], list[int], Witnesses, list[int]]:
        """The post-delete global profile, computed pre-commit.

        ``shard_mnucs`` holds each shard's *post-delete* MNUCS (from the
        shard analyses); the shard relations themselves must still be in
        their pre-delete state -- the cross-shard probes filter
        ``deleted`` explicitly. Returns ``(mucs, mnucs, new witnesses,
        pruned witness masks)``.
        """
        started = time.perf_counter()
        try:
            with self._lock:
                witness_edges = dict(self.cross_sets)
            pruned = [
                mask
                for mask, (left_id, right_id) in witness_edges.items()
                if left_id in deleted or right_id in deleted
            ]
            dead = set(pruned)
            border = MaximalAntichain()
            for mnucs in shard_mnucs:
                for mask in mnucs:
                    border.add(mask)
            for mask in witness_edges:
                if mask not in dead:
                    border.add(mask)
            witnesses: Witnesses = {}
            verified_unique: set[int] = set()
            probe = _CrossProbe(self, deleted)
            while True:
                candidates = mucs_from_mnucs(
                    sorted_masks(border.masks()), self._n_columns
                )
                progressed = False
                for candidate in candidates:
                    if candidate in verified_unique:
                        continue
                    if any(is_subset(muc, candidate) for muc in pre_mucs):
                        # Deletes never create duplicates: a combination
                        # that was unique stays unique, no probe needed.
                        verified_unique.add(candidate)
                        continue
                    found = probe.find(candidate)
                    if found is None:
                        verified_unique.add(candidate)
                    else:
                        witness_mask, pair = found
                        border.add(witness_mask)
                        witnesses.setdefault(witness_mask, pair)
                        progressed = True
                if not progressed:
                    return (
                        candidates,
                        sorted_masks(border.masks()),
                        witnesses,
                        pruned,
                    )
        finally:
            with self._lock:
                self.merge_seconds += time.perf_counter() - started

    # ------------------------------------------------------------------
    # Commit-side bookkeeping
    # ------------------------------------------------------------------
    def apply_witnesses(
        self, fresh: Witnesses, pruned: Iterable[int] = ()
    ) -> None:
        """Commit a merge's witness edits (prune first, then record)."""
        with self._lock:
            for mask in pruned:
                self.cross_sets.pop(mask, None)
            for mask, pair in fresh.items():
                self.cross_sets.setdefault(mask, pair)

    def stats_dict(self) -> dict[str, object]:
        with self._lock:
            return {
                "cross_sets": len(self.cross_sets),
                "merge_seconds": round(self.merge_seconds, 6),
                "cross_shard_probes": self.cross_shard_probes,
                "cross_shard_fallbacks": self.cross_shard_fallbacks,
            }

    def __repr__(self) -> str:
        return (
            f"GlobalProfileMerger(shards={self._router.n_shards}, "
            f"witnesses={len(self.cross_sets)})"
        )


class _CrossProbe:
    """One merge's (or bootstrap's) cross-shard duplicate-probe context.

    Callers only probe combinations that are unique inside every shard,
    so every duplicate pair on them is cross-shard -- both members must
    share a value on each probed column, and that value must therefore
    occur in at least two shards. Per probed column this context
    materializes exactly those *cross-candidate* rows once (via the
    shards' value indexes), and every probe touching that column grows
    into a grouping pass over the candidates instead of a full relation
    scan. Masks with no column indexed in every shard fall back to one
    shared full scan, cached across the whole merge.
    """

    __slots__ = ("_merger", "_deleted", "_common", "_shared", "_scan")

    def __init__(
        self, merger: GlobalProfileMerger, deleted: frozenset[int]
    ) -> None:
        self._merger = merger
        self._deleted = deleted
        self._shared: dict[int, list[tuple[int, Row]]] = {}
        self._scan: list[tuple[int, Row]] | None = None
        profilers = merger._profilers
        common: set[int] = set(profilers[0].indexed_columns)
        for profiler in profilers[1:]:
            common &= profiler.indexed_columns
        self._common = common

    def find(self, mask: int) -> tuple[int, tuple[int, int]] | None:
        """One surviving duplicate pair agreeing on all of ``mask``.

        The returned mask is the pair's full agree set -- a genuine
        non-unique superset of ``mask``.
        """
        merger = self._merger
        merger.cross_shard_probes += 1
        indices = columns_of(mask)
        usable = [column for column in indices if column in self._common]
        if not usable:
            merger.cross_shard_fallbacks += 1
            rows = self._full_scan()
        else:
            ready = [column for column in usable if column in self._shared]
            if ready:
                column = min(
                    ready, key=lambda column: len(self._shared[column])
                )
            else:
                column = max(usable, key=self._total_distinct)
            rows = self._shared_rows(column)
        seen: dict[Row, tuple[int, Row]] = {}
        for global_id, row in rows:
            key = tuple(row[index] for index in indices)
            other = seen.get(key)
            if other is not None:
                other_id, other_row = other
                return (agree_set(other_row, row), (other_id, global_id))
            seen[key] = (global_id, row)
        return None

    def _total_distinct(self, column: int) -> int:
        return sum(
            len(profiler.value_index(column))
            for profiler in self._merger._profilers
        )

    def _shared_rows(self, column: int) -> list[tuple[int, Row]]:
        rows = self._shared.get(column)
        if rows is None:
            rows = self._build_shared(column)
            self._shared[column] = rows
        return rows

    def _build_shared(self, column: int) -> list[tuple[int, Row]]:
        merger = self._merger
        presence: dict[Hashable, int] = {}
        per_shard: list[list[Hashable]] = []
        for profiler in merger._profilers:
            values = list(profiler.value_index(column).iter_values())
            per_shard.append(values)
            for value in values:
                presence[value] = presence.get(value, 0) + 1
        rows: list[tuple[int, Row]] = []
        for shard, profiler in enumerate(merger._profilers):
            wanted = [
                value for value in per_shard[shard] if presence[value] >= 2
            ]
            if not wanted:
                continue
            part = profiler.relation
            for posting in profiler.value_index(column).lookup_batch(wanted):
                for raw_id in posting:
                    local_id = int(raw_id)
                    global_id = merger._router.global_id(shard, local_id)
                    if global_id in self._deleted:
                        continue
                    rows.append((global_id, part.row(local_id)))
        return rows

    def _full_scan(self) -> list[tuple[int, Row]]:
        if self._scan is None:
            merger = self._merger
            rows: list[tuple[int, Row]] = []
            for shard, profiler in enumerate(merger._profilers):
                for local_id, row in profiler.relation.iter_items():
                    global_id = merger._router.global_id(shard, local_id)
                    if global_id in self._deleted:
                        continue
                    rows.append((global_id, row))
            self._scan = rows
        return self._scan
