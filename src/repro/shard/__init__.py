"""Horizontal scale-out: K-sharded SWAN profiles with exact merge.

The package splits one logical relation across ``K`` shard-local
:class:`~repro.core.swan.SwanProfiler` instances (each with its own
encoded relation, value indexes, PLIs and partition cache) and keeps
the *fleet-wide* MUCS/MNUCS exact by composition:

* :class:`ShardRouter` -- arithmetic round-robin placement of the dense
  global tuple-ID space (``shard = id % K``), no routing tables;
* :class:`ShardedRelationView` -- the read-only global
  :class:`~repro.storage.relation.Relation` view the service layer
  (snapshots, sentinel, gauges) consumes;
* :class:`GlobalProfileMerger` -- exact cross-shard merge: batched
  value-index probes and agree-set computation at the merge boundary,
  only for combinations that are shard-locally unique everywhere;
* :class:`ShardedSwanProfiler` -- the drop-in profiler facade that
  routes, fans analyses out (threads or forked processes), merges and
  commits serially; ``insert_only=True`` drops PLI maintenance and the
  delete path for append-only workloads.
"""

from repro.shard.merger import GlobalProfileMerger
from repro.shard.profiler import (
    ShardDeleteOutcome,
    ShardedSwanProfiler,
    ShardInsertOutcome,
)
from repro.shard.router import ShardRouter
from repro.shard.view import ShardedRelationView

__all__ = [
    "GlobalProfileMerger",
    "ShardDeleteOutcome",
    "ShardInsertOutcome",
    "ShardRouter",
    "ShardedRelationView",
    "ShardedSwanProfiler",
]
