"""Candidate generation utilities over the column-combination lattice.

Used by the levelwise baseline (HCA) and by tests that need to walk
lattice neighbourhoods explicitly. All functions operate on bitmasks
(see :mod:`repro.lattice.combination`).
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable, Iterator, Sequence

from repro.lattice.combination import (
    full_mask,
    immediate_subsets,
    is_subset,
    iter_bits,
    popcount,
)


def level(n_columns: int, size: int) -> Iterator[int]:
    """All combinations of exactly ``size`` of the first ``n_columns``."""
    for columns in combinations(range(n_columns), size):
        mask = 0
        for index in columns:
            mask |= 1 << index
        yield mask


def apriori_gen(previous_level: Sequence[int], size: int) -> list[int]:
    """Levelwise candidate generation (Mannila & Toivonen).

    Join pairs of ``size - 1``-masks sharing ``size - 2`` columns, then
    prune candidates with an immediate subset missing from
    ``previous_level``. The input must be the complete set of *relevant*
    masks of size ``size - 1`` (e.g. the non-uniques of that level, since
    a minimal unique of size k has only non-unique subsets).
    """
    if size < 2:
        raise ValueError("apriori_gen needs size >= 2")
    previous = set(previous_level)
    candidates: set[int] = set()
    ordered = sorted(previous_level)
    for left_index, left in enumerate(ordered):
        for right in ordered[left_index + 1 :]:
            joined = left | right
            if popcount(joined) != size:
                continue
            candidates.add(joined)
    pruned = [
        candidate
        for candidate in candidates
        if all(subset in previous for subset in immediate_subsets(candidate))
    ]
    pruned.sort()
    return pruned


def downset(masks: Iterable[int]) -> set[int]:
    """All subsets of all given masks (including the empty mask).

    Exponential; only sensible on small masks (test oracles).
    """
    closed: set[int] = set()
    stack = list(masks)
    while stack:
        mask = stack.pop()
        if mask in closed:
            continue
        closed.add(mask)
        stack.extend(immediate_subsets(mask))
    closed.add(0)
    return closed


def upset(masks: Iterable[int], n_columns: int) -> set[int]:
    """All supersets (within ``n_columns``) of all given masks.

    Exponential; only sensible on small universes (test oracles).
    """
    universe = full_mask(n_columns)
    closed: set[int] = set()
    stack = list(masks)
    while stack:
        mask = stack.pop()
        if mask in closed:
            continue
        closed.add(mask)
        for bit_index in iter_bits(universe & ~mask):
            stack.append(mask | (1 << bit_index))
    return closed


def is_antichain(masks: Sequence[int]) -> bool:
    """True iff no mask is a proper subset of another."""
    for left_index, left in enumerate(masks):
        for right in masks[left_index + 1 :]:
            if is_subset(left, right) or is_subset(right, left):
                return False
    return True
