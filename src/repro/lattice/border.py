"""Generic border discovery for monotone column-combination predicates.

Uniqueness is *upward-closed*: supersets of uniques are unique. Every
discovery problem in this repository -- exact uniques, post-delete
re-profiling, approximate uniques -- reduces to finding the border of
such a predicate: the minimal satisfying combinations and the maximal
violating ones.

:func:`discover_border` finds that border exactly for any upward-closed
predicate, using the duality fixpoint proven in DESIGN.md §2:

1. the minimal combinations not contained in any known-violating
   maximal element are the candidates the current border implies;
2. candidates that violate the predicate are holes; each is *ascended*
   to a maximal violating combination (recording un-ascended holes
   floods the border with incomparable mid-lattice elements and makes
   the dualization diverge);
3. when every candidate satisfies the predicate, candidates and the
   violating border are exactly the minimal-true / maximal-false sets.

The predicate is consulted through a memo and the UGraph/NUGraph
implication structures, so it is evaluated at most once per
combination.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.lattice.combination import iter_bits
from repro.lattice.graphs import CombinationGraph
from repro.lattice.transversal import mucs_from_mnucs


def discover_border(
    n_columns: int,
    predicate: Callable[[int], bool],
    known_true: Iterable[int] = (),
    known_false: Iterable[int] = (),
) -> tuple[list[int], list[int]]:
    """(minimal satisfying, maximal violating) sets of a monotone predicate.

    ``predicate(mask)`` must be upward-closed (true for every superset
    of a true mask); ``known_true`` / ``known_false`` seed the pruning
    structures (e.g. a stale profile), which must of course be
    consistent with the predicate.
    """
    universe = (1 << n_columns) - 1
    graph = CombinationGraph()
    for mask in known_true:
        graph.add_unique(mask)
    for mask in known_false:
        graph.add_non_unique(mask)

    memo: dict[int, bool] = {}

    def classify(mask: int) -> bool:
        known = memo.get(mask)
        if known is not None:
            return known
        implied = graph.classify(mask)
        if implied is None:
            implied = bool(predicate(mask))
            if implied:
                graph.add_unique(mask)
            else:
                graph.add_non_unique(mask)
        memo[mask] = implied
        return implied

    def ascend_to_maximal(mask: int) -> None:
        current = mask
        climbing = True
        while climbing:
            climbing = False
            for column in iter_bits(universe & ~current):
                if not classify(current | (1 << column)):
                    current |= 1 << column
                    climbing = True
                    break

    while True:
        border = graph.maximal_non_uniques()
        candidates = mucs_from_mnucs(border, n_columns)
        holes = [candidate for candidate in candidates if not classify(candidate)]
        if not holes:
            return candidates, border
        for hole in holes:
            ascend_to_maximal(hole)
