"""Minimal hitting sets (hypergraph transversals) and the UCC duality.

A column combination K is non-unique exactly when it contains no minimal
unique; equivalently, when the *complement* of K intersects ("hits")
every minimal unique. Hence:

* MNUCS = { complement(T) : T a minimal transversal of MUCS }
* MUCS  = minimal transversals of { complement(N) : N in MNUCS }

This duality is what GORDIAN uses to convert its discovered maximal
non-uniques into minimal uniques, what DUCC uses to detect unvisited
"holes" in the lattice, and what SWAN's insert path uses to turn the
agree sets of duplicate pairs into the new minimal uniques (DESIGN.md
section 2).

The enumeration algorithm is a depth-first branch-and-bound over
bitmasks with the *critical-edge* pruning of MMCS (Murakami & Uno):
every chosen vertex must stay critical (be the sole chosen hitter of
some edge), which guarantees that only minimal transversals are emitted.
Branches partition on the first chosen vertex of the selected uncovered
edge, so every minimal transversal is emitted exactly once.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.lattice.combination import full_mask, iter_bits, minimize, popcount

_LANE_MASK = (1 << 64) - 1


def _pack_edges(edges: Sequence[int], lanes: int) -> np.ndarray:
    """Pack edge masks into a (n_edges, lanes) uint64 bitset matrix."""
    planes = np.zeros((len(edges), lanes), dtype=np.uint64)
    for row, edge in enumerate(edges):
        lane = 0
        while edge:
            planes[row, lane] = edge & _LANE_MASK
            edge >>= 64
            lane += 1
    return planes


def complement_all(masks: Iterable[int], n_columns: int) -> list[int]:
    """Complement every mask within the first ``n_columns`` columns."""
    universe = full_mask(n_columns)
    return [universe & ~mask for mask in masks]


def minimal_hitting_sets(
    edges: Sequence[int],
    universe: int | None = None,
) -> list[int]:
    """Enumerate all minimal hitting sets of the given edge masks.

    A *hitting set* is a vertex set intersecting every edge; minimal
    means no proper subset is a hitting set. Returns masks in canonical
    (size, value) order.

    * no edges      -> ``[0]``   (the empty set hits everything vacuously)
    * an empty edge -> ``[]``    (nothing can hit the empty edge)

    ``universe`` restricts the vertices that may be used; by default it
    is the union of all edges.
    """
    reduced = minimize(edge for edge in edges)
    if not reduced:
        return [0]
    if 0 in reduced:
        return []
    edge_union = 0
    for edge in reduced:
        edge_union |= edge
    candidates = edge_union if universe is None else (universe & edge_union)

    results: list[int] = []
    n_edges = len(reduced)
    lanes = max(1, (max(edge.bit_length() for edge in reduced) + 63) // 64)
    # The edge bitset matrix: one vectorized pass replaces the per-edge
    # python popcount loop that used to pick the branching edge.
    planes = _pack_edges(reduced, lanes)

    def _has_vertex(edge_rows: np.ndarray, vertex: int) -> np.ndarray:
        lane, bit = divmod(vertex, 64)
        return (planes[edge_rows, lane] >> np.uint64(bit)) & np.uint64(1) != 0

    def recurse(
        chosen: int,
        cand: int,
        crit: dict[int, np.ndarray],
        uncovered: np.ndarray,
    ) -> None:
        if not uncovered.size:
            results.append(chosen)
            return
        # Branch on the uncovered edge with fewest available vertices,
        # counted across all uncovered edges in one bitwise pass.
        cand_row = _pack_edges([cand], lanes)[0]
        avail = planes[uncovered] & cand_row
        counts = np.bitwise_count(avail).sum(axis=1)
        best_pos = int(np.argmin(counts))
        if counts[best_pos] == 0:
            return  # dead branch: some edge can never be hit
        best_verts = 0
        for lane in range(lanes):
            best_verts |= int(avail[best_pos, lane]) << (64 * lane)
        local_cand = cand
        for vertex in iter_bits(best_verts):
            vertex_bit = 1 << vertex
            local_cand &= ~vertex_bit
            # Edges newly covered by this vertex are exactly its critical
            # edges; previously-chosen vertices lose any critical edge
            # that also contains it.
            covered = _has_vertex(uncovered, vertex)
            new_crit: dict[int, np.ndarray] = {vertex: uncovered[covered]}
            still_minimal = True
            for other, critical in crit.items():
                remaining = critical[~_has_vertex(critical, vertex)]
                if not remaining.size:
                    still_minimal = False
                    break
                new_crit[other] = remaining
            if still_minimal:
                recurse(
                    chosen | vertex_bit,
                    local_cand,
                    new_crit,
                    uncovered[~covered],
                )

    recurse(0, candidates, {}, np.arange(n_edges, dtype=np.intp))
    results.sort(key=lambda mask: (popcount(mask), mask))
    return results


def mnucs_from_mucs(mucs: Iterable[int], n_columns: int) -> list[int]:
    """Exact maximal non-uniques implied by a set of minimal uniques.

    ``mucs`` must be the complete set of minimal uniques of some
    relation over ``n_columns`` columns; the result is its complete set
    of maximal non-uniques, in canonical order.
    """
    universe = full_mask(n_columns)
    transversals = minimal_hitting_sets(list(mucs), universe)
    complements = [universe & ~transversal for transversal in transversals]
    complements.sort(key=lambda mask: (popcount(mask), mask))
    return complements


def mucs_from_mnucs(mnucs: Iterable[int], n_columns: int) -> list[int]:
    """Exact minimal uniques implied by a set of maximal non-uniques.

    This is GORDIAN's final conversion step: K is unique iff it is not a
    subset of any maximal non-unique, i.e. iff it hits every MNUC
    complement.
    """
    universe = full_mask(n_columns)
    edges = [universe & ~mask for mask in mnucs]
    return minimal_hitting_sets(edges, universe)


def minimal_unique_supersets(
    base: int,
    agree_sets: Iterable[int],
    n_columns: int,
) -> Iterator[int]:
    """Minimal unique supersets of ``base`` given its duplicate pairs.

    ``agree_sets`` are the agree-set masks of all duplicate pairs that
    coincide on ``base`` (each is a superset of ``base``). A superset
    K of ``base`` is unique iff no pair agrees on all of K, i.e. iff
    K hits the complement of every agree set. The minimal such K are
    ``base`` plus each minimal hitting set of those complements,
    restricted to columns outside ``base``.

    This is the exact core of the paper's Algorithm 5 (DESIGN.md §2).
    """
    universe = full_mask(n_columns)
    edges = [universe & ~agree for agree in agree_sets]
    for transversal in minimal_hitting_sets(edges, universe & ~base):
        yield base | transversal
