"""Antichain containers for minimal-unique / maximal-non-unique sets.

MUCS and MNUCS are antichains in the subset lattice: no member contains
another. The two containers here maintain that invariant under online
insertion, which is exactly the ``removeRedundant`` bookkeeping the
paper performs after each discovery step (Alg. 5 line 20/23, Alg. 6 via
UGraph/NUGraph).

Subset / superset *queries* against these containers are the hottest
operation in the whole library (every lattice-walk step asks "is this
combination implied by a recorded one?"), so members are indexed
column-verticaly, bitmap-style: each member gets a slot, and for every
column the container keeps one arbitrary-precision integer whose bit
*j* says whether member *j* contains that column. Then

* members **containing** probe  =  AND of the probe columns' bitmaps,
* members **contained in** probe = active AND NOT (OR of the bitmaps of
  the columns *outside* the probe),

which runs at C speed regardless of membership size. This mirrors the
paper's note that "a mapping of columns to column combinations enables
the fast discovery of previously discovered redundant combinations"
(Section IV-A), vectorized.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.lattice.combination import iter_bits, popcount


class _AntichainBase:
    """Shared machinery: slots, per-column bitmaps, queries."""

    __slots__ = ("_index_of", "_member_at", "_active", "_contains", "_free")

    def __init__(self, masks: Iterable[int] = ()) -> None:
        self._index_of: dict[int, int] = {}
        self._member_at: list[int] = []
        self._active = 0
        self._contains: dict[int, int] = {}
        self._free: list[int] = []
        for mask in masks:
            self.add(mask)

    def add(self, mask: int) -> bool:  # pragma: no cover - overridden
        raise NotImplementedError

    def _index_add(self, mask: int) -> None:
        if self._free:
            slot = self._free.pop()
            self._member_at[slot] = mask
        else:
            slot = len(self._member_at)
            self._member_at.append(mask)
        self._index_of[mask] = slot
        slot_bit = 1 << slot
        self._active |= slot_bit
        for column in iter_bits(mask):
            self._contains[column] = self._contains.get(column, 0) | slot_bit

    def _index_discard(self, mask: int) -> None:
        slot = self._index_of.pop(mask)
        slot_bit = 1 << slot
        self._active ^= slot_bit
        for column in iter_bits(mask):
            remaining = self._contains[column] & ~slot_bit
            if remaining:
                self._contains[column] = remaining
            else:
                del self._contains[column]
        self._free.append(slot)

    def discard(self, mask: int) -> bool:
        """Remove ``mask`` if present. Returns True when it was a member."""
        if mask not in self._index_of:
            return False
        self._index_discard(mask)
        return True

    def __contains__(self, mask: int) -> bool:
        return mask in self._index_of

    def __iter__(self) -> Iterator[int]:
        return iter(self._index_of)

    def __len__(self) -> int:
        return len(self._index_of)

    def __bool__(self) -> bool:
        return bool(self._index_of)

    def masks(self) -> frozenset[int]:
        """A snapshot of the member masks."""
        return frozenset(self._index_of)

    # ------------------------------------------------------------------
    # Bitmap queries
    # ------------------------------------------------------------------
    def _subset_slots(self, mask: int) -> int:
        """Slot bitmap of members that are (non-strict) subsets."""
        outside = 0
        for column, slots in self._contains.items():
            if not mask >> column & 1:
                outside |= slots
        return self._active & ~outside

    def _superset_slots(self, mask: int) -> int:
        """Slot bitmap of members that are (non-strict) supersets."""
        result = self._active
        for column in iter_bits(mask):
            slots = self._contains.get(column)
            if not slots:
                return 0
            result &= slots
            if not result:
                return 0
        return result

    def contains_subset_of(self, mask: int) -> bool:
        """True iff some member is a (non-strict) subset of ``mask``."""
        if mask in self._index_of:
            return True
        return self._subset_slots(mask) != 0

    def contains_superset_of(self, mask: int) -> bool:
        """True iff some member is a (non-strict) superset of ``mask``."""
        if mask in self._index_of:
            return True
        return self._superset_slots(mask) != 0

    def supersets_of(self, mask: int) -> list[int]:
        """All members that are (non-strict) supersets of ``mask``."""
        member_at = self._member_at
        return [member_at[slot] for slot in iter_bits(self._superset_slots(mask))]

    def subsets_of(self, mask: int) -> list[int]:
        """All members that are (non-strict) subsets of ``mask``."""
        member_at = self._member_at
        return [member_at[slot] for slot in iter_bits(self._subset_slots(mask))]


class MinimalAntichain(_AntichainBase):
    """Maintains the *minimal* elements of everything ever added.

    Adding a mask that contains an existing member is a no-op; adding a
    mask that is contained in existing members evicts them. This is the
    container backing the MUCS repository and the UGraph.
    """

    def add(self, mask: int) -> bool:
        """Insert ``mask``; returns True iff it is now a member."""
        if self.contains_subset_of(mask):
            return mask in self._index_of
        for dominated in self.supersets_of(mask):
            self._index_discard(dominated)
        self._index_add(mask)
        return True


class MaximalAntichain(_AntichainBase):
    """Maintains the *maximal* elements of everything ever added.

    The container backing the MNUCS repository and the NUGraph.
    """

    def add(self, mask: int) -> bool:
        """Insert ``mask``; returns True iff it is now a member."""
        if self.contains_superset_of(mask):
            return mask in self._index_of
        for dominated in self.subsets_of(mask):
            self._index_discard(dominated)
        self._index_add(mask)
        return True


def sorted_masks(masks: Iterable[int]) -> list[int]:
    """Masks sorted by (size, value): the canonical reporting order."""
    return sorted(masks, key=lambda mask: (popcount(mask), mask))
