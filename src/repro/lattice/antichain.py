"""Antichain containers for minimal-unique / maximal-non-unique sets.

MUCS and MNUCS are antichains in the subset lattice: no member contains
another. The two containers here maintain that invariant under online
insertion, which is exactly the ``removeRedundant`` bookkeeping the
paper performs after each discovery step (Alg. 5 line 20/23, Alg. 6 via
UGraph/NUGraph).

Subset / superset *queries* against these containers are the hottest
operation in the whole library (every lattice-walk step asks "is this
combination implied by a recorded one?"), so members are stored as a
packed uint64 bitset matrix: row *j* holds member *j*'s column mask
split into 64-column lanes. Then, over all rows at once,

* members **containing** probe  =  rows with ``row AND probe == probe``,
* members **contained in** probe = rows with ``row AND NOT probe == 0``,

one vectorized pass per query regardless of membership size. This
mirrors the paper's note that "a mapping of columns to column
combinations enables the fast discovery of previously discovered
redundant combinations" (Section IV-A), with the per-column bitmaps
fused into numpy lanes so the probe runs in C rather than looping
Python-level big-ints per column.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from repro.lattice.combination import popcount

_LANE_MASK = (1 << 64) - 1
_INITIAL_SLOTS = 8


def _pack(mask: int, lanes: int) -> np.ndarray:
    """Split a python-int column mask into 64-column uint64 lanes."""
    row = np.zeros(lanes, dtype=np.uint64)
    lane = 0
    while mask:
        row[lane] = mask & _LANE_MASK
        mask >>= 64
        lane += 1
    return row


class _AntichainBase:
    """Shared machinery: the packed member matrix and its queries."""

    __slots__ = ("_index_of", "_member_at", "_members", "_live", "_free")

    def __init__(self, masks: Iterable[int] = ()) -> None:
        self._index_of: dict[int, int] = {}
        self._member_at: list[int] = []
        # Row j = member j's mask in 64-column lanes; _live flags the
        # rows whose slot is currently occupied (slots are recycled).
        self._members: np.ndarray = np.zeros((_INITIAL_SLOTS, 1), dtype=np.uint64)
        self._live: np.ndarray = np.zeros(_INITIAL_SLOTS, dtype=bool)
        self._free: list[int] = []
        for mask in masks:
            self.add(mask)

    def add(self, mask: int) -> bool:  # pragma: no cover - overridden
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Storage maintenance
    # ------------------------------------------------------------------
    def _ensure_lanes(self, lanes: int) -> None:
        have = self._members.shape[1]
        if lanes > have:
            grown = np.zeros((self._members.shape[0], lanes), dtype=np.uint64)
            grown[:, :have] = self._members
            self._members = grown

    def _index_add(self, mask: int) -> None:
        lanes = max(1, (mask.bit_length() + 63) // 64)
        self._ensure_lanes(lanes)
        if self._free:
            slot = self._free.pop()
        else:
            slot = len(self._member_at)
            self._member_at.append(0)
            if slot >= self._members.shape[0]:
                grown = np.zeros(
                    (2 * self._members.shape[0], self._members.shape[1]),
                    dtype=np.uint64,
                )
                grown[: self._members.shape[0]] = self._members
                self._members = grown
                self._live = np.r_[self._live, np.zeros(self._live.size, dtype=bool)]
        self._member_at[slot] = mask
        self._index_of[mask] = slot
        self._members[slot] = _pack(mask, self._members.shape[1])
        self._live[slot] = True

    def _index_discard(self, mask: int) -> None:
        slot = self._index_of.pop(mask)
        self._live[slot] = False
        self._members[slot] = 0
        self._free.append(slot)

    def discard(self, mask: int) -> bool:
        """Remove ``mask`` if present. Returns True when it was a member."""
        if mask not in self._index_of:
            return False
        self._index_discard(mask)
        return True

    def __contains__(self, mask: int) -> bool:
        return mask in self._index_of

    def __iter__(self) -> Iterator[int]:
        return iter(self._index_of)

    def __len__(self) -> int:
        return len(self._index_of)

    def __bool__(self) -> bool:
        return bool(self._index_of)

    def masks(self) -> frozenset[int]:
        """A snapshot of the member masks."""
        return frozenset(self._index_of)

    # ------------------------------------------------------------------
    # Bitset-matrix queries
    # ------------------------------------------------------------------
    def _probe_row(self, mask: int) -> np.ndarray:
        # A probe wider than every member cannot change comparisons in
        # the missing lanes for supersets (no member has bits there) but
        # must see member bits for subset checks, so the matrix -- not
        # the probe -- dictates the lane count; overflow lanes of the
        # probe are dropped for superset checks explicitly below.
        return _pack(mask, max(self._members.shape[1], (mask.bit_length() + 63) // 64))

    def _subset_slots(self, mask: int) -> np.ndarray:
        """Ascending slots of members that are (non-strict) subsets."""
        lanes = self._members.shape[1]
        probe = self._probe_row(mask)[:lanes]
        hits = (self._members & ~probe) == 0
        return np.flatnonzero(hits.all(axis=1) & self._live)

    def _superset_slots(self, mask: int) -> np.ndarray:
        """Ascending slots of members that are (non-strict) supersets."""
        lanes = self._members.shape[1]
        probe = self._probe_row(mask)
        if probe.size > lanes and probe[lanes:].any():
            # Probe has columns beyond every member: no supersets.
            return np.empty(0, dtype=np.intp)
        probe = probe[:lanes]
        hits = (self._members & probe) == probe
        return np.flatnonzero(hits.all(axis=1) & self._live)

    def contains_subset_of(self, mask: int) -> bool:
        """True iff some member is a (non-strict) subset of ``mask``."""
        if mask in self._index_of:
            return True
        return self._subset_slots(mask).size > 0

    def contains_superset_of(self, mask: int) -> bool:
        """True iff some member is a (non-strict) superset of ``mask``."""
        if mask in self._index_of:
            return True
        return self._superset_slots(mask).size > 0

    def supersets_of(self, mask: int) -> list[int]:
        """All members that are (non-strict) supersets of ``mask``."""
        member_at = self._member_at
        return [member_at[slot] for slot in self._superset_slots(mask)]

    def subsets_of(self, mask: int) -> list[int]:
        """All members that are (non-strict) subsets of ``mask``."""
        member_at = self._member_at
        return [member_at[slot] for slot in self._subset_slots(mask)]


class MinimalAntichain(_AntichainBase):
    """Maintains the *minimal* elements of everything ever added.

    Adding a mask that contains an existing member is a no-op; adding a
    mask that is contained in existing members evicts them. This is the
    container backing the MUCS repository and the UGraph.
    """

    def add(self, mask: int) -> bool:
        """Insert ``mask``; returns True iff it is now a member."""
        if self.contains_subset_of(mask):
            return mask in self._index_of
        for dominated in self.supersets_of(mask):
            self._index_discard(dominated)
        self._index_add(mask)
        return True


class MaximalAntichain(_AntichainBase):
    """Maintains the *maximal* elements of everything ever added.

    The container backing the MNUCS repository and the NUGraph.
    """

    def add(self, mask: int) -> bool:
        """Insert ``mask``; returns True iff it is now a member."""
        if self.contains_superset_of(mask):
            return mask in self._index_of
        for dominated in self.subsets_of(mask):
            self._index_discard(dominated)
        self._index_add(mask)
        return True


def sorted_masks(masks: Iterable[int]) -> list[int]:
    """Masks sorted by (size, value): the canonical reporting order."""
    return sorted(masks, key=lambda mask: (popcount(mask), mask))
