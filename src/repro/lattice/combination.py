"""Bitmask representation of column combinations.

Discovery algorithms spend most of their time asking subset/superset
questions about sets of column indices. Representing a combination as an
``int`` bitmask makes those questions single machine operations::

    K1 subset of K2      <=>  K1 & ~K2 == 0  <=>  K1 | K2 == K2
    K1 intersects K2     <=>  K1 & K2 != 0
    add column i         <=>  K | (1 << i)

The module-level functions operate on raw masks and are what the
algorithm internals use. :class:`ColumnCombination` wraps a mask together
with the schema's column names for the public API; it is hashable,
ordered, and iterable over column names.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence


def mask_of(columns: Iterable[int]) -> int:
    """Build a bitmask from an iterable of column indices.

    >>> mask_of([0, 2])
    5
    """
    mask = 0
    for index in columns:
        if index < 0:
            raise ValueError(f"column index must be non-negative, got {index}")
        mask |= 1 << index
    return mask


def columns_of(mask: int) -> tuple[int, ...]:
    """Return the sorted column indices present in ``mask``.

    >>> columns_of(5)
    (0, 2)
    """
    return tuple(iter_bits(mask))


def iter_bits(mask: int) -> Iterator[int]:
    """Yield the set bit positions of ``mask`` in ascending order."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def popcount(mask: int) -> int:
    """Number of columns in the combination."""
    return mask.bit_count()


def is_subset(inner: int, outer: int) -> bool:
    """True iff every column of ``inner`` is also in ``outer``."""
    return inner | outer == outer


def is_proper_subset(inner: int, outer: int) -> bool:
    """True iff ``inner`` is a subset of ``outer`` and not equal to it."""
    return inner != outer and inner | outer == outer


def full_mask(n_columns: int) -> int:
    """Mask with all of the first ``n_columns`` columns set."""
    if n_columns < 0:
        raise ValueError("n_columns must be non-negative")
    return (1 << n_columns) - 1


def immediate_supersets(mask: int, universe: int) -> Iterator[int]:
    """Yield all masks obtained by adding one column from ``universe``."""
    for bit_index in iter_bits(universe & ~mask):
        yield mask | (1 << bit_index)


def immediate_subsets(mask: int) -> Iterator[int]:
    """Yield all masks obtained by removing one column."""
    for bit_index in iter_bits(mask):
        yield mask & ~(1 << bit_index)


def minimize(masks: Iterable[int]) -> list[int]:
    """Return the minimal elements (no other element is a proper subset).

    Runs in O(k^2) subset tests over the k input masks, after sorting by
    popcount so each candidate is only compared against already-accepted
    smaller masks.
    """
    accepted: list[int] = []
    seen: set[int] = set()
    for mask in sorted(masks, key=popcount):
        if mask in seen:
            continue
        if any(is_subset(small, mask) for small in accepted):
            continue
        accepted.append(mask)
        seen.add(mask)
    return accepted


def maximize(masks: Iterable[int]) -> list[int]:
    """Return the maximal elements (no other element is a proper superset)."""
    accepted: list[int] = []
    seen: set[int] = set()
    for mask in sorted(masks, key=popcount, reverse=True):
        if mask in seen:
            continue
        if any(is_subset(mask, big) for big in accepted):
            continue
        accepted.append(mask)
        seen.add(mask)
    return accepted


class ColumnCombination:
    """An immutable set of columns of one relation, with readable names.

    Instances compare and hash by their bitmask, so they can be mixed
    freely in sets and dicts regardless of how they were constructed.
    Ordering is by (size, mask) which gives a stable, lattice-friendly
    sort order for reporting.
    """

    __slots__ = ("_mask", "_names")

    def __init__(self, mask: int, names: Sequence[str]) -> None:
        if mask < 0:
            raise ValueError("mask must be non-negative")
        if mask >> len(names):
            raise ValueError(
                f"mask {mask:#x} references columns beyond the {len(names)} named ones"
            )
        self._mask = mask
        self._names = tuple(names)

    @classmethod
    def of(cls, columns: Iterable[str], names: Sequence[str]) -> "ColumnCombination":
        """Build a combination from column *names* resolved against ``names``."""
        position = {name: index for index, name in enumerate(names)}
        mask = 0
        for column in columns:
            if column not in position:
                from repro.errors import UnknownColumnError

                raise UnknownColumnError(column, list(names))
            mask |= 1 << position[column]
        return cls(mask, names)

    @property
    def mask(self) -> int:
        """The raw bitmask (bit *i* set means column *i* is a member)."""
        return self._mask

    @property
    def indices(self) -> tuple[int, ...]:
        """Sorted member column indices."""
        return columns_of(self._mask)

    @property
    def names(self) -> tuple[str, ...]:
        """Member column names in schema order."""
        return tuple(self._names[index] for index in iter_bits(self._mask))

    def __len__(self) -> int:
        return popcount(self._mask)

    def __iter__(self) -> Iterator[str]:
        return iter(self.names)

    def __contains__(self, column: object) -> bool:
        if isinstance(column, int):
            return bool(self._mask >> column & 1)
        if isinstance(column, str):
            try:
                index = self._names.index(column)
            except ValueError:
                return False
            return bool(self._mask >> index & 1)
        return False

    def issubset(self, other: "ColumnCombination") -> bool:
        return is_subset(self._mask, other._mask)

    def issuperset(self, other: "ColumnCombination") -> bool:
        return is_subset(other._mask, self._mask)

    def union(self, other: "ColumnCombination") -> "ColumnCombination":
        return ColumnCombination(self._mask | other._mask, self._names)

    def intersection(self, other: "ColumnCombination") -> "ColumnCombination":
        return ColumnCombination(self._mask & other._mask, self._names)

    def difference(self, other: "ColumnCombination") -> "ColumnCombination":
        return ColumnCombination(self._mask & ~other._mask, self._names)

    def with_column(self, index: int) -> "ColumnCombination":
        return ColumnCombination(self._mask | (1 << index), self._names)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ColumnCombination):
            return self._mask == other._mask
        return NotImplemented

    def __lt__(self, other: "ColumnCombination") -> bool:
        return (len(self), self._mask) < (len(other), other._mask)

    def __hash__(self) -> int:
        return hash(self._mask)

    def __repr__(self) -> str:
        return "{" + ", ".join(self.names) + "}"


def bits_of(combination: "ColumnCombination | int") -> int:
    """Accept either a raw mask or a :class:`ColumnCombination`."""
    if isinstance(combination, ColumnCombination):
        return combination.mask
    return int(combination)
