"""UGraph / NUGraph: classification indexes for lattice traversals.

Section IV of the paper stores intermediate unique / non-unique
discoveries in two graph structures so that redundant combinations are
pruned "immediately as soon as a new minimal unique or maximal
non-unique is discovered":

* **UGraph** holds combinations known to be *unique*. A combination K is
  implied unique when UGraph contains a subset of K (supersets of
  uniques are unique).
* **NUGraph** holds combinations known to be *non-unique*. K is implied
  non-unique when NUGraph contains a superset of K (subsets of
  non-uniques are non-unique).

Because a dominated entry never adds pruning power (a unique superset of
a stored unique answers no query its subset cannot), each graph only
needs the minimal (resp. maximal) antichain of what was added --
which also makes ``minimal_uniques`` / ``maximal_non_uniques`` free.
"""

from __future__ import annotations

from typing import Iterable

from repro.lattice.antichain import MaximalAntichain, MinimalAntichain, sorted_masks


class CombinationGraph:
    """Joint UGraph + NUGraph with consistency checking.

    The same combination must never be recorded both unique and
    non-unique; :meth:`add_unique` / :meth:`add_non_unique` raise
    :class:`~repro.errors.InconsistentProfileError` if a caller tries.
    """

    __slots__ = ("_uniques", "_non_uniques")

    def __init__(
        self,
        uniques: Iterable[int] = (),
        non_uniques: Iterable[int] = (),
    ) -> None:
        self._uniques = MinimalAntichain()
        self._non_uniques = MaximalAntichain()
        for mask in uniques:
            self.add_unique(mask)
        for mask in non_uniques:
            self.add_non_unique(mask)

    def add_unique(self, mask: int) -> None:
        """Record that ``mask`` is unique."""
        if self.implies_non_unique(mask):
            from repro.errors import InconsistentProfileError

            raise InconsistentProfileError(
                f"combination {mask:#x} recorded unique but implied non-unique"
            )
        self._uniques.add(mask)

    def add_non_unique(self, mask: int) -> None:
        """Record that ``mask`` is non-unique."""
        if self.implies_unique(mask):
            from repro.errors import InconsistentProfileError

            raise InconsistentProfileError(
                f"combination {mask:#x} recorded non-unique but implied unique"
            )
        self._non_uniques.add(mask)

    def implies_unique(self, mask: int) -> bool:
        """True iff a recorded unique is a subset of ``mask``."""
        return self._uniques.contains_subset_of(mask)

    def implies_non_unique(self, mask: int) -> bool:
        """True iff a recorded non-unique is a superset of ``mask``."""
        return self._non_uniques.contains_superset_of(mask)

    def classify(self, mask: int) -> bool | None:
        """Return True (unique), False (non-unique) or None (unknown)."""
        if self.implies_unique(mask):
            return True
        if self.implies_non_unique(mask):
            return False
        return None

    def minimal_uniques(self) -> list[int]:
        """Minimal antichain of all recorded uniques, in canonical order."""
        return sorted_masks(self._uniques)

    def maximal_non_uniques(self) -> list[int]:
        """Maximal antichain of all recorded non-uniques, canonical order."""
        return sorted_masks(self._non_uniques)

    def __repr__(self) -> str:
        return (
            f"CombinationGraph(uniques={len(self._uniques)}, "
            f"non_uniques={len(self._non_uniques)})"
        )
