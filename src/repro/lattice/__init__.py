"""Column-combination lattice machinery.

A column combination is represented internally as an ``int`` bitmask over
column indices (bit *i* set means column *i* is a member). The helpers in
:mod:`repro.lattice.combination` operate on these raw masks; the
:class:`~repro.lattice.combination.ColumnCombination` wrapper adds column
names for the public API.

The subset lattice of a relation's columns is the search space of unique
discovery. This package provides:

* :mod:`repro.lattice.combination` -- bitmask operations and the public
  :class:`ColumnCombination` value type.
* :mod:`repro.lattice.antichain` -- containers maintaining *minimal* or
  *maximal* antichains under insertion (used for MUCS / MNUCS).
* :mod:`repro.lattice.graphs` -- the UGraph / NUGraph pruning indexes from
  the paper's delete workflow (Section IV).
* :mod:`repro.lattice.transversal` -- minimal hitting sets (hypergraph
  transversals) and the MUCS <-> MNUCS duality.
* :mod:`repro.lattice.enumeration` -- candidate generation utilities.
"""

from repro.lattice.antichain import MaximalAntichain, MinimalAntichain
from repro.lattice.combination import (
    ColumnCombination,
    bits_of,
    columns_of,
    is_proper_subset,
    is_subset,
    iter_bits,
    mask_of,
    popcount,
)
from repro.lattice.graphs import CombinationGraph
from repro.lattice.transversal import (
    complement_all,
    minimal_hitting_sets,
    mnucs_from_mucs,
    mucs_from_mnucs,
)

__all__ = [
    "ColumnCombination",
    "CombinationGraph",
    "MaximalAntichain",
    "MinimalAntichain",
    "bits_of",
    "columns_of",
    "complement_all",
    "is_proper_subset",
    "is_subset",
    "iter_bits",
    "mask_of",
    "minimal_hitting_sets",
    "mnucs_from_mucs",
    "mucs_from_mnucs",
    "popcount",
]
