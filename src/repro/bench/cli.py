"""``repro-bench``: regenerate the paper's figures from the command line.

Examples::

    repro-bench fig1a                    # one figure at default scale
    repro-bench fig7a fig7b --scale 2    # larger datasets
    repro-bench all --timeout 30         # everything, tight budget
    repro-bench --list                   # available experiment names
"""

from __future__ import annotations

import argparse
import csv
import sys
from typing import Sequence

from repro.bench.figures import FIGURES, run_figure
from repro.bench.harness import BenchConfig


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Regenerate the SWAN paper's evaluation figures.",
    )
    parser.add_argument(
        "figures",
        nargs="*",
        help="figure names (e.g. fig1a fig7c), or 'all'",
    )
    parser.add_argument("--list", action="store_true", help="list experiments")
    parser.add_argument(
        "--scale", type=float, default=1.0,
        help="dataset size multiplier over the scaled defaults (default 1.0)",
    )
    parser.add_argument(
        "--timeout", type=float, default=60.0,
        help="per-system per-point budget in seconds; a system exceeding "
        "it is aborted for the rest of the sweep (default 60)",
    )
    parser.add_argument("--seed", type=int, default=7, help="workload seed")
    parser.add_argument(
        "--no-verify", action="store_true",
        help="skip the cross-system MUCS agreement check",
    )
    parser.add_argument(
        "--csv", metavar="PATH", default=None,
        help="also append raw measurements to a CSV file",
    )
    parser.add_argument(
        "--markdown", metavar="PATH", default=None,
        help="also write a markdown report (EXPERIMENTS.md style)",
    )
    parser.add_argument(
        "--chart", action="store_true",
        help="render each figure as a log-scale ASCII chart too",
    )
    parser.add_argument(
        "--replay", metavar="CSV", default=None,
        help="re-render tables (and --chart/--markdown) from a recorded "
        "measurements CSV instead of running experiments",
    )
    parser.add_argument(
        "--compare", nargs=2, metavar=("BASELINE_CSV", "CANDIDATE_CSV"),
        default=None,
        help="diff two recorded runs and report >=1.5x slowdowns",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.compare:
        from repro.bench.replay import compare_runs

        findings = compare_runs(args.compare[0], args.compare[1])
        if not findings:
            print("no regressions at the 1.5x threshold")
            return 0
        print(f"{len(findings)} regression(s):")
        for finding in findings:
            print(f"  {finding.render()}")
        return 1
    if args.replay:
        from repro.bench.replay import load_measurements

        tables = load_measurements(args.replay)
        for table in tables:
            print(table.render())
            if args.chart:
                from repro.bench.chart import render_chart

                print()
                print(render_chart(table))
            print()
        if args.markdown:
            from repro.bench.report import render_report

            with open(args.markdown, "w") as handle:
                handle.write(
                    render_report(tables, "Replayed results", f"source: {args.replay}")
                )
            print(f"markdown report written to {args.markdown}")
        return 0
    if args.list or not args.figures:
        print("available experiments:")
        for name in sorted(FIGURES):
            print(f"  {name}")
        return 0
    names = sorted(FIGURES) if args.figures == ["all"] else args.figures
    unknown = [name for name in names if name not in FIGURES]
    if unknown:
        parser.error(f"unknown figures: {unknown}; use --list")
    config = BenchConfig(
        scale=args.scale,
        timeout_s=args.timeout,
        seed=args.seed,
        verify=not args.no_verify,
    )
    csv_rows: list[list[str]] = []
    tables = []
    for name in names:
        table = run_figure(name, config)
        tables.append(table)
        print(table.render())
        if args.chart:
            from repro.bench.chart import render_chart

            print()
            print(render_chart(table))
        print()
        rows = table.to_csv_rows()
        csv_rows.extend(rows[1:] if csv_rows else rows)
    if args.csv:
        with open(args.csv, "a", newline="") as handle:
            csv.writer(handle).writerows(csv_rows)
        print(f"raw measurements appended to {args.csv}")
    if args.markdown:
        from repro.bench.report import render_report

        preamble = (
            f"Configuration: scale={config.scale}, timeout={config.timeout_s}s, "
            f"seed={config.seed}."
        )
        with open(args.markdown, "w") as handle:
            handle.write(render_report(tables, "Measured results", preamble))
        print(f"markdown report written to {args.markdown}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
