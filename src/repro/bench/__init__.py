"""Benchmark harness regenerating every figure of the paper.

* :mod:`repro.bench.harness` -- timing, per-system abort budgets, and
  paper-style result tables.
* :mod:`repro.bench.figures` -- one experiment definition per figure
  (Fig. 1a .. Fig. 8) plus the ablations DESIGN.md calls out.
* :mod:`repro.bench.cli` -- the ``repro-bench`` command line.
"""

from repro.bench.figures import FIGURES, run_figure
from repro.bench.harness import BenchConfig, ResultTable

__all__ = ["FIGURES", "BenchConfig", "ResultTable", "run_figure"]
