"""ASCII charts for benchmark series.

The paper plots every experiment as log-scale execution-time series;
``repro-bench --chart`` renders the same shape in the terminal so the
orders-of-magnitude gaps are visible without leaving the shell::

    fig7a: NCVoter deletes                    (log10 seconds)
      31.62 |  D                D
      10.00 |  G   D  G    D  G    G
       3.16 |  I       I
       1.00 |          S   I  S S  I S
       0.31 |  S
            +---------------------------
               1%    5%    10%   20%
      S=Swan  D=Ducc  I=Ducc-Inc  G=Gordian-Inc

Aborted points render as the system letter on the top border row.
"""

from __future__ import annotations

import math

from repro.bench.harness import ResultTable

_HEIGHT = 12


def _letter_for(system: str, taken: dict[str, str]) -> str:
    for candidate in system.replace("-", " ").split():
        letter = candidate[0].upper()
        if letter not in taken.values():
            return letter
    for letter in system.upper():
        if letter.isalnum() and letter not in taken.values():
            return letter
    return "?"


def render_chart(table: ResultTable, height: int = _HEIGHT) -> str:
    """A log-scale scatter of one figure's series."""
    letters: dict[str, str] = {}
    for system in table.systems:
        letters[system] = _letter_for(system, letters)

    values = [
        cell.seconds
        for cell in table.cells.values()
        if cell.seconds is not None and cell.seconds > 0
    ]
    if not values:
        return f"{table.figure}: no data"
    low = math.floor(math.log10(min(values)) * 2) / 2
    high = math.ceil(math.log10(max(values)) * 2) / 2
    if high <= low:
        high = low + 0.5
    step = (high - low) / (height - 1)

    # Column layout: one slot per (x, system) pair, grouped by x.
    slot_width = 2
    group_gap = 2
    n_systems = len(table.systems)
    group_width = n_systems * slot_width + group_gap

    def column_of(x_index: int, system_index: int) -> int:
        return x_index * group_width + system_index * slot_width

    width = len(table.x_values) * group_width
    rows = [[" "] * width for _ in range(height)]
    aborted_row = [" "] * width
    for x_index, x in enumerate(table.x_values):
        for system_index, system in enumerate(table.systems):
            cell = table.cells.get((system, x))
            if cell is None:
                continue
            column = column_of(x_index, system_index)
            if cell.aborted or cell.seconds is None:
                if cell.aborted:
                    aborted_row[column] = letters[system]
                continue
            level = (math.log10(max(cell.seconds, 10 ** low)) - low) / step
            row = height - 1 - min(height - 1, max(0, round(level)))
            rows[row][column] = letters[system]

    lines = [f"{table.figure}: {table.title}  (log10 seconds)"]
    if any(mark != " " for mark in aborted_row):
        lines.append("   aborted |" + "".join(aborted_row))
    for row_index, row in enumerate(rows):
        level_value = 10 ** (high - row_index * step)
        label = f"{level_value:10.2f}" if level_value < 1000 else f"{level_value:10.0f}"
        lines.append(f"{label} |" + "".join(row))
    lines.append(" " * 11 + "+" + "-" * width)
    x_axis = [" "] * width
    for x_index, x in enumerate(table.x_values):
        text = str(x)[: group_width - 1]
        start = x_index * group_width
        x_axis[start : start + len(text)] = list(text)
    lines.append(" " * 12 + "".join(x_axis))
    legend = "  ".join(
        f"{letters[system]}={system}" for system in table.systems
    )
    lines.append(" " * 12 + legend)
    return "\n".join(lines)
