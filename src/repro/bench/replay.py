"""Replay and compare recorded benchmark measurements.

``repro-bench`` writes raw measurements to CSV; this module turns such
files back into :class:`~repro.bench.harness.ResultTable` objects so
tables and charts can be re-rendered without re-measuring
(``repro-bench --replay measurements.csv --chart``), and diffs two
recordings to flag regressions between library versions
(:func:`compare_runs`).
"""

from __future__ import annotations

import csv
from dataclasses import dataclass

from repro.bench.harness import Measurement, ResultTable
from repro.bench.figures import FIGURES


def load_measurements(path: str) -> list[ResultTable]:
    """Rebuild one ResultTable per figure from a measurements CSV."""
    tables: dict[str, ResultTable] = {}
    with open(path, newline="") as handle:
        reader = csv.DictReader(handle)
        required = {"figure", "x", "system", "seconds", "aborted"}
        if reader.fieldnames is None or not required <= set(reader.fieldnames):
            raise ValueError(
                f"{path} is not a repro-bench measurements CSV "
                f"(columns {reader.fieldnames})"
            )
        for row in reader:
            figure = row["figure"]
            table = tables.get(figure)
            if table is None:
                table = ResultTable(figure, figure, x_label="x")
                tables[figure] = table
            seconds = float(row["seconds"]) if row["seconds"] else None
            table.record(
                Measurement(
                    system=row["system"],
                    x=row["x"],
                    seconds=seconds,
                    aborted=row["aborted"] == "1",
                )
            )
    for table in tables.values():
        _restore_sweep_order(table)
    ordered = sorted(
        tables.values(),
        key=lambda table: (
            list(FIGURES).index(table.figure)
            if table.figure in FIGURES
            else len(FIGURES),
            table.figure,
        ),
    )
    return ordered


def _restore_sweep_order(table: ResultTable) -> None:
    """Sort x values numerically when they all look numeric.

    Older recordings were written in string-sorted order ('1%', '10%',
    '20%', '5%'); sweeps are always numeric, so a numeric key restores
    them. Non-numeric labels keep their encounter order.
    """

    def numeric_key(x: object) -> float | None:
        text = str(x).rstrip("%")
        try:
            return float(text)
        except ValueError:
            return None

    keys = [numeric_key(x) for x in table.x_values]
    if all(key is not None for key in keys):
        table.x_values.sort(key=numeric_key)


@dataclass(frozen=True)
class RegressionFinding:
    """One (figure, system, x) point that changed materially."""

    figure: str
    system: str
    x: str
    before: float | None
    after: float | None
    ratio: float | None

    def render(self) -> str:
        if self.before is None or self.after is None:
            change = "appeared/disappeared"
        else:
            change = f"{self.before:.3f}s -> {self.after:.3f}s ({self.ratio:.2f}x)"
        return f"{self.figure} {self.system} @ {self.x}: {change}"


def compare_runs(
    baseline_path: str,
    candidate_path: str,
    threshold: float = 1.5,
) -> list[RegressionFinding]:
    """Points where the candidate run is ``threshold``x slower (or a
    point appeared/disappeared). Speed-ups are not reported."""
    baseline = {
        (table.figure, system, str(x)): table.seconds(system, x)
        for table in load_measurements(baseline_path)
        for (system, x) in table.cells
    }
    candidate = {
        (table.figure, system, str(x)): table.seconds(system, x)
        for table in load_measurements(candidate_path)
        for (system, x) in table.cells
    }
    findings: list[RegressionFinding] = []
    for key in sorted(set(baseline) | set(candidate)):
        before = baseline.get(key)
        after = candidate.get(key)
        figure, system, x = key
        if (before is None) != (after is None):
            findings.append(
                RegressionFinding(figure, system, x, before, after, None)
            )
            continue
        if before is None or after is None or before == 0:
            continue
        ratio = after / before
        if ratio >= threshold:
            findings.append(
                RegressionFinding(figure, system, x, before, after, ratio)
            )
    return findings
