"""Experiment definitions: one runner per figure of the paper.

Every runner rebuilds the paper's setup at a scaled size (see
DESIGN.md section 4 for the mapping), replays the same batches through
every system, verifies that all systems that completed report identical
minimal uniques, and returns a :class:`~repro.bench.harness.ResultTable`
whose rows are the series the paper plots.

What is timed mirrors the paper exactly:

* DUCC -- a full static re-profile of the changed dataset;
* DUCC-INC -- deletes applied + rediscovery seeded with the old MUCS;
* GORDIAN-INC -- batch applied to the live prefix tree + seeded
  (inserts) or unseeded (deletes) rediscovery; the initial tree build
  is *not* timed, matching the paper's adaptation;
* SWAN -- ``handle_inserts`` / ``handle_deletes`` only; the initial
  profile and indexes exist already (except Fig. 6, which times SWAN
  end-to-end: static bootstrap + index build + increment, as the paper
  does for the holistic comparison);
* DBMS-X -- constraint validation of the batch against the declared
  minimal uniques (Fig. 1c only).
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.baselines.dbms import DbmsConstraintChecker
from repro.baselines.ducc import Ducc, discover_ducc
from repro.baselines.ducc_inc import DuccInc
from repro.baselines.gordian_inc import GordianInc
from repro.bench.harness import BenchConfig, Measurement, ResultTable, SystemRunner
from repro.core.swan import SwanProfiler
from repro.datasets.ncvoter import ncvoter_relation
from repro.datasets.tpch import lineitem_relation
from repro.datasets.uniprot import uniprot_relation
from repro.datasets.workload import delete_batch_ids, split_initial_and_inserts
from repro.storage.relation import Relation

BATCH_FRACTIONS = [0.01, 0.05, 0.10, 0.20]
DELETE_FRACTIONS = [0.01, 0.05, 0.10, 0.20]
COLUMN_SWEEP = [10, 20, 30, 40, 50, 60]

# Paper row counts -> scaled defaults (BenchConfig.scale multiplies).
SMALL_ROWS = 1000       # paper: 100k
LARGE_NCVOTER = 4000    # paper: 5M
LARGE_UNIPROT = 2000    # paper: 400k
LARGE_TPCH = 6000       # paper: 5M
HOLISTIC_ROWS = 3000    # paper: 5M (Fig. 5)

DatasetBuilder = Callable[[int, int, int], Relation]

_DATASETS: dict[str, DatasetBuilder] = {
    "ncvoter": ncvoter_relation,
    "uniprot": uniprot_relation,
    "tpch": lineitem_relation,
}


def _generate(
    dataset: str, n_rows: int, n_columns: int, seed: int
) -> Relation:
    return _DATASETS[dataset](n_rows, n_columns, seed)


def _check_agreement(
    table: ResultTable, x: object, profiles: dict[str, Sequence[int]]
) -> None:
    """All systems that completed a point must report the same MUCS."""
    reference: tuple[str, Sequence[int]] | None = None
    for system, mucs in profiles.items():
        if reference is None:
            reference = (system, mucs)
            continue
        if list(mucs) != list(reference[1]):
            table.notes.append(
                f"DISAGREEMENT at {x}: {system} vs {reference[0]} "
                f"({len(mucs)} vs {len(reference[1])} MUCS)"
            )


# ----------------------------------------------------------------------
# Figures 1 and 2: insert batches (small and large initial datasets)
# ----------------------------------------------------------------------
def _insert_batches_figure(
    figure: str,
    title: str,
    dataset: str,
    base_rows: int,
    n_columns: int,
    config: BenchConfig,
    include_dbms: bool = False,
    quota: int = 20,
) -> ResultTable:
    initial_rows = config.rows(base_rows)
    table = ResultTable(
        figure, title, x_label="batch_size", x_values=[], systems=[]
    )
    total = initial_rows + int(initial_rows * (sum(BATCH_FRACTIONS) + 0.05))
    relation = _generate(dataset, total, n_columns, config.seed)
    workload = split_initial_and_inserts(
        relation, initial_rows, BATCH_FRACTIONS, seed=config.seed
    )
    initial = workload.initial
    mucs, mnucs = discover_ducc(initial)
    table.notes.append(
        f"{dataset}: initial={initial_rows} rows x {n_columns} cols, "
        f"|MUCS|={len(mucs)}, |MNUCS|={len(mnucs)}"
    )

    ducc = SystemRunner("Ducc", config)
    gordian = SystemRunner("Gordian-Inc", config)
    swan = SystemRunner("Swan", config)
    dbms = SystemRunner("DBMS-X", config) if include_dbms else None

    gordian_inc = GordianInc(initial, mnucs, deadline_s=config.timeout_s)
    profiler = SwanProfiler(
        initial.copy(), mucs, mnucs, index_quota=quota, maintain_plis=False
    )
    checker = DbmsConstraintChecker(initial, mucs) if include_dbms else None
    cumulative = initial.copy()

    for fraction, batch in zip(BATCH_FRACTIONS, workload.insert_batches):
        label = f"{int(fraction * 100)}%"
        profiles: dict[str, Sequence[int]] = {}

        cumulative.insert_many(batch)
        measurement, ducc_result = ducc.measure(
            label, lambda: discover_ducc(cumulative, deadline_s=config.timeout_s)
        )
        table.record(measurement)
        if ducc_result is not None:
            profiles["Ducc"] = ducc_result[0]

        measurement, gordian_result = gordian.measure(
            label, lambda: gordian_inc.handle_inserts(batch)
        )
        table.record(measurement)
        if gordian_result is not None:
            profiles["Gordian-Inc"] = gordian_result[0]

        measurement, swan_result = swan.measure(
            label, lambda: profiler.handle_inserts(batch)
        )
        table.record(measurement)
        if swan_result is not None:
            profiles["Swan"] = list(swan_result.mucs)

        if dbms is not None and checker is not None:
            measurement, _ = dbms.measure(
                label, lambda: checker.insert_batch(batch)
            )
            table.record(measurement)

        if config.verify:
            _check_agreement(table, label, profiles)
    return table


def fig1a(config: BenchConfig) -> ResultTable:
    return _insert_batches_figure(
        "fig1a", "NCVoter inserts, small initial dataset",
        "ncvoter", SMALL_ROWS, 40, config,
    )


def fig1b(config: BenchConfig) -> ResultTable:
    return _insert_batches_figure(
        "fig1b", "Uniprot inserts, small initial dataset",
        "uniprot", SMALL_ROWS, 40, config,
    )


def fig1c(config: BenchConfig) -> ResultTable:
    return _insert_batches_figure(
        "fig1c", "TPC-H inserts, small initial dataset (with DBMS-X)",
        "tpch", SMALL_ROWS, 16, config, include_dbms=True, quota=8,
    )


def fig2a(config: BenchConfig) -> ResultTable:
    return _insert_batches_figure(
        "fig2a", "NCVoter inserts, large initial dataset",
        "ncvoter", LARGE_NCVOTER, 40, config,
    )


def fig2b(config: BenchConfig) -> ResultTable:
    return _insert_batches_figure(
        "fig2b", "Uniprot inserts, large initial dataset",
        "uniprot", LARGE_UNIPROT, 40, config,
    )


def fig2c(config: BenchConfig) -> ResultTable:
    return _insert_batches_figure(
        "fig2c", "TPC-H inserts, large initial dataset",
        "tpch", LARGE_TPCH, 16, config, quota=8,
    )


# ----------------------------------------------------------------------
# Figure 3: scaling the number of columns (inserts)
# ----------------------------------------------------------------------
def fig3(config: BenchConfig) -> ResultTable:
    initial_rows = config.rows(SMALL_ROWS)
    batch_fraction = 0.10
    table = ResultTable(
        "fig3",
        "NCVoter inserts while scaling the number of columns",
        x_label="columns",
    )
    ducc = SystemRunner("Ducc", config)
    gordian = SystemRunner("Gordian-Inc", config)
    swan = SystemRunner("Swan", config)
    for n_columns in COLUMN_SWEEP:
        total = initial_rows + int(initial_rows * (batch_fraction + 0.02))
        relation = _generate("ncvoter", total, n_columns, config.seed)
        workload = split_initial_and_inserts(
            relation, initial_rows, [batch_fraction], seed=config.seed
        )
        initial, batch = workload.initial, workload.insert_batches[0]
        mucs, mnucs = discover_ducc(initial)
        profiles: dict[str, Sequence[int]] = {}

        cumulative = initial.copy()
        cumulative.insert_many(batch)
        measurement, result = ducc.measure(
            n_columns,
            lambda: discover_ducc(cumulative, deadline_s=config.timeout_s),
        )
        table.record(measurement)
        if result is not None:
            profiles["Ducc"] = result[0]

        gordian_inc = GordianInc(initial, mnucs, deadline_s=config.timeout_s)
        measurement, result = gordian.measure(
            n_columns, lambda: gordian_inc.handle_inserts(batch)
        )
        table.record(measurement)
        if result is not None:
            profiles["Gordian-Inc"] = result[0]

        profiler = SwanProfiler(
            initial.copy(), mucs, mnucs, index_quota=20, maintain_plis=False
        )
        measurement, result = swan.measure(
            n_columns, lambda: profiler.handle_inserts(batch)
        )
        table.record(measurement)
        if result is not None:
            profiles["Swan"] = list(result.mucs)

        if config.verify:
            _check_agreement(table, n_columns, profiles)
    return table


# ----------------------------------------------------------------------
# Figure 4: index analysis (Index All vs SWAN minimal vs SWAN)
# ----------------------------------------------------------------------
def _index_analysis_figure(
    figure: str,
    title: str,
    dataset: str,
    base_rows: int,
    n_columns: int,
    quota: int,
    config: BenchConfig,
) -> ResultTable:
    initial_rows = config.rows(base_rows)
    table = ResultTable(figure, title, x_label="batch_size")
    total = initial_rows + int(initial_rows * (sum(BATCH_FRACTIONS) + 0.05))
    relation = _generate(dataset, total, n_columns, config.seed)
    workload = split_initial_and_inserts(
        relation, initial_rows, BATCH_FRACTIONS, seed=config.seed
    )
    initial = workload.initial
    mucs, mnucs = discover_ducc(initial)

    variants: dict[str, SwanProfiler] = {
        "Index All": SwanProfiler(
            initial.copy(), mucs, mnucs,
            index_columns=list(range(n_columns)), maintain_plis=False,
        ),
        "Swan minimal": SwanProfiler(
            initial.copy(), mucs, mnucs, maintain_plis=False,
        ),
        "Swan": SwanProfiler(
            initial.copy(), mucs, mnucs, index_quota=quota, maintain_plis=False,
        ),
    }
    table.notes.append(
        "indexes used: "
        + ", ".join(
            f"{name}={len(profiler.indexed_columns)}"
            for name, profiler in variants.items()
        )
    )
    runners = {name: SystemRunner(name, config) for name in variants}
    for fraction, batch in zip(BATCH_FRACTIONS, workload.insert_batches):
        label = f"{int(fraction * 100)}%"
        profiles: dict[str, Sequence[int]] = {}
        for name, profiler in variants.items():
            measurement, result = runners[name].measure(
                label, lambda p=profiler: p.handle_inserts(batch)
            )
            table.record(measurement)
            if result is not None:
                profiles[name] = list(result.mucs)
        if config.verify:
            _check_agreement(table, label, profiles)
    return table


def fig4a(config: BenchConfig) -> ResultTable:
    return _index_analysis_figure(
        "fig4a", "NCVoter index analysis", "ncvoter", LARGE_NCVOTER, 40, 20, config
    )


def fig4b(config: BenchConfig) -> ResultTable:
    return _index_analysis_figure(
        "fig4b", "Uniprot index analysis", "uniprot", LARGE_UNIPROT, 40, 20, config
    )


def fig4c(config: BenchConfig) -> ResultTable:
    return _index_analysis_figure(
        "fig4c", "TPC-H index analysis", "tpch", LARGE_TPCH, 16, 8, config
    )


# ----------------------------------------------------------------------
# Figure 5: SWAN as a holistic approach (growing increments)
# ----------------------------------------------------------------------
def fig5(config: BenchConfig) -> ResultTable:
    initial_rows = config.rows(HOLISTIC_ROWS)
    fractions = [round(0.1 * step, 1) for step in range(1, 11)]
    table = ResultTable(
        "fig5",
        "TPC-H: holistic DUCC vs SWAN on growing increments",
        x_label="increment",
    )
    total = initial_rows + int(initial_rows * 1.02)
    relation = _generate("tpch", total, 16, config.seed)
    workload = split_initial_and_inserts(
        relation, initial_rows, [1.0], seed=config.seed
    )
    initial = workload.initial
    all_inserts = workload.insert_batches[0]
    mucs, mnucs = discover_ducc(initial)
    ducc = SystemRunner("Ducc", config)
    swan = SystemRunner("Swan", config)
    for fraction in fractions:
        label = f"{int(fraction * 100)}%"
        chunk = all_inserts[: int(round(fraction * initial_rows))]
        profiles: dict[str, Sequence[int]] = {}

        combined = initial.copy()
        combined.insert_many(chunk)
        measurement, result = ducc.measure(
            label, lambda: discover_ducc(combined, deadline_s=config.timeout_s)
        )
        table.record(measurement)
        if result is not None:
            profiles["Ducc"] = result[0]

        profiler = SwanProfiler(
            initial.copy(), mucs, mnucs, index_quota=8, maintain_plis=False
        )
        measurement, result = swan.measure(
            label, lambda: profiler.handle_inserts(chunk)
        )
        table.record(measurement)
        if result is not None:
            profiles["Swan"] = list(result.mucs)

        if config.verify:
            _check_agreement(table, label, profiles)
    return table


# ----------------------------------------------------------------------
# Figure 6: holistic SWAN end-to-end while scaling columns
# ----------------------------------------------------------------------
def fig6(config: BenchConfig) -> ResultTable:
    total_rows = config.rows(SMALL_ROWS) + config.rows(SMALL_ROWS) // 10
    big_sample = config.rows(SMALL_ROWS)
    small_sample = config.rows(SMALL_ROWS) // 10
    table = ResultTable(
        "fig6",
        "NCVoter: end-to-end holistic profiling (static run + index "
        "build + increment) while scaling columns",
        x_label="columns",
    )
    ducc = SystemRunner("Ducc", config)
    swan_big = SystemRunner(f"Swan {big_sample} sample", config)
    swan_small = SystemRunner(f"Swan {small_sample} sample", config)
    for n_columns in COLUMN_SWEEP:
        relation = _generate("ncvoter", total_rows, n_columns, config.seed)
        rows = list(relation.iter_rows())
        profiles: dict[str, Sequence[int]] = {}

        full = Relation.from_rows(relation.schema, rows)
        measurement, result = ducc.measure(
            n_columns, lambda: discover_ducc(full, deadline_s=config.timeout_s)
        )
        table.record(measurement)
        if result is not None:
            profiles["Ducc"] = result[0]

        def swan_end_to_end(sample_size: int):
            initial = Relation.from_rows(relation.schema, rows[:sample_size])
            profiler = SwanProfiler.profile(
                initial, algorithm="ducc", index_quota=20, maintain_plis=False
            )
            return profiler.handle_inserts(rows[sample_size:])

        measurement, result = swan_big.measure(
            n_columns, lambda: swan_end_to_end(big_sample)
        )
        table.record(measurement)
        if result is not None:
            profiles[swan_big.name] = list(result.mucs)

        measurement, result = swan_small.measure(
            n_columns, lambda: swan_end_to_end(small_sample)
        )
        table.record(measurement)
        if result is not None:
            profiles[swan_small.name] = list(result.mucs)

        if config.verify:
            _check_agreement(table, n_columns, profiles)
    return table


# ----------------------------------------------------------------------
# Figures 7 and 8: deletes
# ----------------------------------------------------------------------
def _delete_figure(
    figure: str,
    title: str,
    dataset: str,
    base_rows: int,
    n_columns: int,
    config: BenchConfig,
) -> ResultTable:
    initial_rows = config.rows(base_rows)
    table = ResultTable(figure, title, x_label="deletes")
    relation = _generate(dataset, initial_rows, n_columns, config.seed)
    mucs, mnucs = discover_ducc(relation)
    table.notes.append(
        f"{dataset}: initial={initial_rows} rows x {n_columns} cols, "
        f"|MUCS|={len(mucs)}, |MNUCS|={len(mnucs)}"
    )
    ducc = SystemRunner("Ducc", config)
    ducc_inc = SystemRunner("Ducc-Inc", config)
    gordian = SystemRunner("Gordian-Inc", config)
    swan = SystemRunner("Swan", config)
    for fraction in DELETE_FRACTIONS:
        label = f"{int(fraction * 100)}%"
        doomed = delete_batch_ids(relation, fraction, seed=config.seed)
        doomed_rows = [relation.row(tuple_id) for tuple_id in doomed]
        profiles: dict[str, Sequence[int]] = {}

        shrunk = relation.copy()
        shrunk.delete_many(doomed)
        measurement, result = ducc.measure(
            label, lambda: discover_ducc(shrunk, deadline_s=config.timeout_s)
        )
        table.record(measurement)
        if result is not None:
            profiles["Ducc"] = result[0]

        inc_relation = relation.copy()
        inc = DuccInc(inc_relation, mucs, deadline_s=config.timeout_s)
        measurement, result = ducc_inc.measure(
            label, lambda: inc.handle_deletes(doomed)
        )
        table.record(measurement)
        if result is not None:
            profiles["Ducc-Inc"] = result[0]

        gordian_inc = GordianInc(relation, mnucs, deadline_s=config.timeout_s)
        measurement, result = gordian.measure(
            label, lambda: gordian_inc.handle_deletes(doomed_rows)
        )
        table.record(measurement)
        if result is not None:
            profiles["Gordian-Inc"] = result[0]

        profiler = SwanProfiler(relation.copy(), mucs, mnucs)
        measurement, result = swan.measure(
            label, lambda: profiler.handle_deletes(doomed)
        )
        table.record(measurement)
        if result is not None:
            profiles["Swan"] = list(result.mucs)

        if config.verify:
            _check_agreement(table, label, profiles)
    return table


def fig7a(config: BenchConfig) -> ResultTable:
    return _delete_figure(
        "fig7a", "NCVoter deletes", "ncvoter", LARGE_NCVOTER, 40, config
    )


def fig7b(config: BenchConfig) -> ResultTable:
    return _delete_figure(
        "fig7b", "Uniprot deletes", "uniprot", LARGE_UNIPROT, 40, config
    )


def fig7c(config: BenchConfig) -> ResultTable:
    return _delete_figure(
        "fig7c", "TPC-H deletes", "tpch", LARGE_TPCH, 16, config
    )


def fig8(config: BenchConfig) -> ResultTable:
    initial_rows = config.rows(SMALL_ROWS)
    fraction = 0.01
    table = ResultTable(
        "fig8",
        "NCVoter deletes while scaling the number of columns",
        x_label="columns",
    )
    ducc = SystemRunner("Ducc", config)
    ducc_inc = SystemRunner("Ducc-Inc", config)
    gordian = SystemRunner("Gordian-Inc", config)
    swan = SystemRunner("Swan", config)
    for n_columns in COLUMN_SWEEP:
        relation = _generate("ncvoter", initial_rows, n_columns, config.seed)
        mucs, mnucs = discover_ducc(relation)
        doomed = delete_batch_ids(relation, fraction, seed=config.seed)
        doomed_rows = [relation.row(tuple_id) for tuple_id in doomed]
        profiles: dict[str, Sequence[int]] = {}

        shrunk = relation.copy()
        shrunk.delete_many(doomed)
        measurement, result = ducc.measure(
            n_columns,
            lambda: discover_ducc(shrunk, deadline_s=config.timeout_s),
        )
        table.record(measurement)
        if result is not None:
            profiles["Ducc"] = result[0]

        inc_relation = relation.copy()
        inc = DuccInc(inc_relation, mucs, deadline_s=config.timeout_s)
        measurement, result = ducc_inc.measure(
            n_columns, lambda: inc.handle_deletes(doomed)
        )
        table.record(measurement)
        if result is not None:
            profiles["Ducc-Inc"] = result[0]

        gordian_inc = GordianInc(relation, mnucs, deadline_s=config.timeout_s)
        measurement, result = gordian.measure(
            n_columns, lambda: gordian_inc.handle_deletes(doomed_rows)
        )
        table.record(measurement)
        if result is not None:
            profiles["Gordian-Inc"] = result[0]

        profiler = SwanProfiler(relation.copy(), mucs, mnucs)
        measurement, result = swan.measure(
            n_columns, lambda: profiler.handle_deletes(doomed)
        )
        table.record(measurement)
        if result is not None:
            profiles["Swan"] = list(result.mucs)

        if config.verify:
            _check_agreement(table, n_columns, profiles)
    return table


# ----------------------------------------------------------------------
# Ablations (design choices beyond the paper's figures)
# ----------------------------------------------------------------------
def ablation_quota(config: BenchConfig) -> ResultTable:
    """Sweep the additional-index quota (Algorithm 4's delta)."""
    initial_rows = config.rows(SMALL_ROWS)
    table = ResultTable(
        "ablation_quota",
        "NCVoter: insert cost vs index quota (delta sweep)",
        x_label="quota",
    )
    total = initial_rows + int(initial_rows * 0.12)
    relation = _generate("ncvoter", total, 40, config.seed)
    workload = split_initial_and_inserts(
        relation, initial_rows, [0.10], seed=config.seed
    )
    initial, batch = workload.initial, workload.insert_batches[0]
    mucs, mnucs = discover_ducc(initial)
    for quota in [None, 12, 16, 20, 28, 40]:
        profiler = SwanProfiler(
            initial.copy(), mucs, mnucs, index_quota=quota, maintain_plis=False
        )
        runner = SystemRunner(f"indexes={len(profiler.indexed_columns)}", config)
        label = "minimal" if quota is None else str(quota)
        measurement, _ = runner.measure(label, lambda: profiler.handle_inserts(batch))
        table.record(Measurement("Swan", label, measurement.seconds))
        table.notes.append(
            f"quota={label}: {len(profiler.indexed_columns)} index columns, "
            f"{profiler.last_insert_stats.tuples_retrieved} tuples retrieved"
        )
    return table


def ablation_pli_shortcircuits(config: BenchConfig) -> ResultTable:
    """Delete-path short-circuits (Section IV-B) on vs off."""
    from repro.core.deletes import DeletesHandler

    initial_rows = config.rows(SMALL_ROWS)
    table = ResultTable(
        "ablation_pli",
        "NCVoter deletes: PLI short-circuits on vs off",
        x_label="deletes",
    )
    relation = _generate("ncvoter", initial_rows, 40, config.seed)
    mucs, mnucs = discover_ducc(relation)
    for fraction in DELETE_FRACTIONS:
        label = f"{int(fraction * 100)}%"
        doomed = delete_batch_ids(relation, fraction, seed=config.seed)

        swan = SwanProfiler(relation.copy(), mucs, mnucs)
        runner = SystemRunner("Swan", config)
        measurement, _ = runner.measure(label, lambda: swan.handle_deletes(doomed))
        table.record(measurement)

        class _NoShortCircuit(DeletesHandler):
            def _is_still_non_unique(self, mask, deleted, clustered, stats):
                stats.complete_checks += 1
                return self._has_surviving_duplicate(mask, deleted)

        blunt = SwanProfiler(relation.copy(), mucs, mnucs)
        blunt._deletes = _NoShortCircuit(blunt.relation, blunt._repository, blunt._plis)
        runner = SystemRunner("Swan (no short-circuits)", config)
        measurement, _ = runner.measure(label, lambda: blunt.handle_deletes(doomed))
        table.record(measurement)
    return table


def ablation_lookup_cache(config: BenchConfig) -> ResultTable:
    """Alg. 2's look-up cache on vs off (shared index columns)."""
    from repro.core.inserts import InsertsHandler, _LookupCache

    initial_rows = config.rows(LARGE_NCVOTER)
    table = ResultTable(
        "ablation_cache",
        "NCVoter inserts: look-up cache on vs off",
        x_label="batch_size",
    )
    total = initial_rows + int(initial_rows * (sum(BATCH_FRACTIONS) + 0.05))
    relation = _generate("ncvoter", total, 40, config.seed)
    workload = split_initial_and_inserts(
        relation, initial_rows, BATCH_FRACTIONS, seed=config.seed
    )
    initial = workload.initial
    mucs, mnucs = discover_ducc(initial)

    class _ColdCache(_LookupCache):
        def largest_subset(self, mask):
            return 0, None

        def store(self, mask, entry):
            pass

    class _UncachedHandler(InsertsHandler):
        def handle(self, new_rows):
            return super().handle(new_rows)

        def _retrieve_ids(self, muc_mask, new_rows, cache, stats):
            return super()._retrieve_ids(muc_mask, new_rows, _ColdCache(), stats)

    cached = SwanProfiler(
        initial.copy(), mucs, mnucs, index_quota=20, maintain_plis=False
    )
    uncached = SwanProfiler(
        initial.copy(), mucs, mnucs, index_quota=20, maintain_plis=False
    )
    uncached._inserts = _UncachedHandler(
        uncached.relation, uncached._repository, uncached._index_pool, uncached._sparse
    )
    cached_runner = SystemRunner("Swan (cache)", config)
    uncached_runner = SystemRunner("Swan (no cache)", config)
    for fraction, batch in zip(BATCH_FRACTIONS, workload.insert_batches):
        label = f"{int(fraction * 100)}%"
        measurement, _ = cached_runner.measure(
            label, lambda: cached.handle_inserts(batch)
        )
        table.record(measurement)
        measurement, _ = uncached_runner.measure(
            label, lambda: uncached.handle_inserts(batch)
        )
        table.record(measurement)
    return table


FIGURES: dict[str, Callable[[BenchConfig], ResultTable]] = {
    "fig1a": fig1a,
    "fig1b": fig1b,
    "fig1c": fig1c,
    "fig2a": fig2a,
    "fig2b": fig2b,
    "fig2c": fig2c,
    "fig3": fig3,
    "fig4a": fig4a,
    "fig4b": fig4b,
    "fig4c": fig4c,
    "fig5": fig5,
    "fig6": fig6,
    "fig7a": fig7a,
    "fig7b": fig7b,
    "fig7c": fig7c,
    "fig8": fig8,
    "ablation_quota": ablation_quota,
    "ablation_pli": ablation_pli_shortcircuits,
    "ablation_cache": ablation_lookup_cache,
}


def run_figure(figure: str, config: BenchConfig | None = None) -> ResultTable:
    """Run one experiment by figure name (see :data:`FIGURES`)."""
    if config is None:
        config = BenchConfig.from_env()
    try:
        runner = FIGURES[figure]
    except KeyError:
        raise KeyError(
            f"unknown figure {figure!r}; available: {sorted(FIGURES)}"
        ) from None
    return runner(config)
