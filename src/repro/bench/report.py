"""Markdown reporting for benchmark runs.

``repro-bench --markdown experiments.md`` (and the EXPERIMENTS.md
pipeline) turn :class:`~repro.bench.harness.ResultTable` objects into
the per-figure sections of the experiment log: a markdown table of the
measured series plus the headline speed-ups the paper quotes for that
figure.
"""

from __future__ import annotations

from typing import Sequence

from repro.bench.harness import ResultTable

# The comparison the paper headlines per figure: (slow, fast) pairs
# whose ratio we quote alongside the table.
_HEADLINES: dict[str, list[tuple[str, str]]] = {
    "fig1a": [("Ducc", "Swan"), ("Gordian-Inc", "Swan")],
    "fig1b": [("Ducc", "Swan"), ("Gordian-Inc", "Swan")],
    "fig1c": [("Ducc", "Swan"), ("Gordian-Inc", "Swan"), ("DBMS-X", "Swan")],
    "fig2a": [("Ducc", "Swan"), ("Gordian-Inc", "Swan")],
    "fig2b": [("Ducc", "Swan"), ("Gordian-Inc", "Swan")],
    "fig2c": [("Ducc", "Swan"), ("Gordian-Inc", "Swan")],
    "fig3": [("Ducc", "Swan"), ("Gordian-Inc", "Swan")],
    "fig5": [("Ducc", "Swan")],
    "fig7a": [("Ducc", "Swan"), ("Ducc-Inc", "Swan")],
    "fig7b": [("Ducc", "Swan"), ("Ducc-Inc", "Swan")],
    "fig7c": [("Ducc", "Swan"), ("Ducc-Inc", "Swan")],
    "fig8": [("Ducc", "Swan"), ("Ducc-Inc", "Swan")],
}


def table_to_markdown(table: ResultTable) -> str:
    """One figure as a markdown section."""
    lines = [f"### {table.figure}: {table.title}", ""]
    header = [table.x_label, *table.systems]
    lines.append("| " + " | ".join(header) + " |")
    lines.append("|" + "---|" * len(header))
    for x in table.x_values:
        row = [str(x)]
        for system in table.systems:
            cell = table.cells.get((system, x))
            if cell is None:
                row.append("–")
            elif cell.aborted:
                row.append("aborted")
            else:
                row.append(f"{cell.seconds:.3f} s")
        lines.append("| " + " | ".join(row) + " |")
    lines.append("")
    for note in table.notes:
        lines.append(f"*{note}*  ")
    speedups = speedup_summary(table)
    if speedups:
        lines.append("")
        lines.extend(f"- {line}" for line in speedups)
    lines.append("")
    return "\n".join(lines)


def speedup_summary(table: ResultTable) -> list[str]:
    """Headline speed-up lines for one figure."""
    lines: list[str] = []
    for slow, fast in _HEADLINES.get(table.figure, []):
        ratios = [
            (x, table.speedup(slow, fast, x))
            for x in table.x_values
        ]
        ratios = [(x, ratio) for x, ratio in ratios if ratio is not None]
        if not ratios:
            continue
        best_x, best = max(ratios, key=lambda item: item[1])
        worst_x, worst = min(ratios, key=lambda item: item[1])
        lines.append(
            f"{fast} vs {slow}: {worst:.1f}x (at {worst_x}) to "
            f"{best:.1f}x (at {best_x}) faster"
        )
    return lines


def render_report(tables: Sequence[ResultTable], title: str, preamble: str = "") -> str:
    """A full markdown report over several figures."""
    parts = [f"## {title}", ""]
    if preamble:
        parts.extend([preamble, ""])
    for table in tables:
        parts.append(table_to_markdown(table))
    return "\n".join(parts)
