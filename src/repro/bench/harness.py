"""Benchmark harness: timing, abort budgets, result tables.

The paper reports every experiment as "execution time (s)" series over a
swept parameter, one series per system, and *aborts* systems that run
past a wall-clock budget (GORDIAN-INC was cut off at 10 hours several
times). This harness mirrors that: each (system, x) point is timed
once, a system that exceeds ``BenchConfig.timeout_s`` at some x is
marked aborted and skipped for all larger x of the same figure, and the
result renders as the same rows the paper plots.

Scaled sizes: pure Python is orders of magnitude slower than the
authors' Java testbed, so figure definitions scale the paper's row
counts down by default. ``BenchConfig.scale`` multiplies them back up
(``--scale 10`` on the CLI, ``REPRO_BENCH_SCALE=10`` for pytest runs).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Callable


@dataclass(frozen=True)
class BenchConfig:
    """Knobs shared by every figure runner."""

    scale: float = 1.0
    timeout_s: float = 60.0
    seed: int = 7
    verify: bool = True
    """Cross-check that all systems report identical MUCS per point."""

    @classmethod
    def from_env(cls) -> "BenchConfig":
        return cls(
            scale=float(os.environ.get("REPRO_BENCH_SCALE", "1.0")),
            timeout_s=float(os.environ.get("REPRO_BENCH_TIMEOUT", "60.0")),
            seed=int(os.environ.get("REPRO_BENCH_SEED", "7")),
            verify=os.environ.get("REPRO_BENCH_VERIFY", "1") != "0",
        )

    def rows(self, base: int) -> int:
        """A paper row count scaled to this configuration."""
        return max(50, int(base * self.scale))


@dataclass
class Measurement:
    """One (system, x) cell of a figure."""

    system: str
    x: object
    seconds: float | None
    aborted: bool = False
    note: str = ""

    def render(self) -> str:
        if self.aborted:
            return "aborted"
        if self.seconds is None:
            return "-"
        return f"{self.seconds:.3f}"


@dataclass
class ResultTable:
    """All measurements of one figure, renderable like the paper plots."""

    figure: str
    title: str
    x_label: str
    x_values: list = field(default_factory=list)
    systems: list[str] = field(default_factory=list)
    cells: dict[tuple[str, object], Measurement] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    def record(self, measurement: Measurement) -> None:
        if measurement.system not in self.systems:
            self.systems.append(measurement.system)
        if measurement.x not in self.x_values:
            self.x_values.append(measurement.x)
        self.cells[(measurement.system, measurement.x)] = measurement

    def seconds(self, system: str, x: object) -> float | None:
        cell = self.cells.get((system, x))
        return None if cell is None or cell.aborted else cell.seconds

    def speedup(self, slow: str, fast: str, x: object) -> float | None:
        """How many times faster ``fast`` is than ``slow`` at ``x``."""
        slow_s, fast_s = self.seconds(slow, x), self.seconds(fast, x)
        if slow_s is None or fast_s is None or fast_s == 0:
            return None
        return slow_s / fast_s

    def render(self) -> str:
        """A fixed-width table: one row per x, one column per system."""
        header = [self.x_label] + self.systems
        rows = [header]
        for x in self.x_values:
            row = [str(x)]
            for system in self.systems:
                cell = self.cells.get((system, x))
                row.append(cell.render() if cell else "-")
            rows.append(row)
        widths = [
            max(len(row[column]) for row in rows) for column in range(len(header))
        ]
        lines = [f"== {self.figure}: {self.title} (execution time in s) =="]
        for index, row in enumerate(rows):
            lines.append(
                "  ".join(value.rjust(width) for value, width in zip(row, widths))
            )
            if index == 0:
                lines.append("-" * (sum(widths) + 2 * (len(widths) - 1)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def to_csv_rows(self) -> list[list[str]]:
        """Rows in sweep order (x outer, system inner) so replaying a
        CSV reconstructs the original series order."""
        rows = [["figure", "x", "system", "seconds", "aborted"]]
        for x in self.x_values:
            for system in self.systems:
                cell = self.cells.get((system, x))
                if cell is None:
                    continue
                rows.append(
                    [
                        self.figure,
                        str(x),
                        system,
                        "" if cell.seconds is None else f"{cell.seconds:.6f}",
                        "1" if cell.aborted else "0",
                    ]
                )
        return rows


class SystemRunner:
    """Times one system across a figure's sweep, honouring the budget.

    Once a point exceeds the budget the system is aborted for the rest
    of the sweep (monotone sweeps only get more expensive), mirroring
    the paper's 10-hour cut-offs.
    """

    def __init__(self, name: str, config: BenchConfig) -> None:
        self.name = name
        self._config = config
        self._aborted = False

    @property
    def aborted(self) -> bool:
        return self._aborted

    def measure(self, x: object, call: Callable[[], object]) -> tuple[Measurement, object]:
        """Run ``call`` once; returns the measurement and its result.

        A call raising :class:`~repro.errors.BudgetExceededError` (the
        cooperative deadline baked into GORDIAN / DUCC) is recorded as
        an aborted point and retires the system for the sweep.
        """
        from repro.errors import BudgetExceededError

        if self._aborted:
            return Measurement(self.name, x, None, aborted=True), None
        started = time.perf_counter()
        try:
            result = call()
        except BudgetExceededError as exc:
            self._aborted = True
            return (
                Measurement(self.name, x, None, aborted=True, note=str(exc)),
                None,
            )
        elapsed = time.perf_counter() - started
        if elapsed > self._config.timeout_s:
            self._aborted = True
            return (
                Measurement(
                    self.name,
                    x,
                    elapsed,
                    aborted=False,
                    note="over budget; later points skipped",
                ),
                result,
            )
        return Measurement(self.name, x, elapsed), result
