"""SWAN: detecting unique column combinations on dynamic data.

A complete, from-scratch reproduction of *"Detecting Unique Column
Combinations on Dynamic Data"* (Abedjan, Quiané-Ruiz, Naumann; ICDE
2014): the SWAN incremental profiler, the GORDIAN / DUCC / HCA baseline
discovery systems and their incremental adaptations, the storage
substrates they share (relations, value indexes, PLIs, sparse indexes),
synthetic stand-ins for the paper's datasets, and a benchmark harness
regenerating every figure of the evaluation.

Quickstart::

    from repro import Relation, Schema, SwanProfiler

    schema = Schema(["Name", "Phone", "Age"])
    relation = Relation.from_rows(schema, [
        ("Lee", "345", "20"),
        ("Payne", "245", "30"),
        ("Lee", "234", "30"),
    ])
    profiler = SwanProfiler.profile(relation)
    profiler.minimal_uniques()       # [{Phone}, {Name, Age}]
    profiler.handle_inserts([("Payne", "245", "31")])
    profiler.minimal_uniques()       # [{Name, Age}, {Phone, Age}]
"""

from repro.core.monitor import UniqueConstraintMonitor
from repro.core.repository import Profile
from repro.core.swan import SwanProfiler
from repro.lattice.combination import ColumnCombination
from repro.profiling.discovery import available_algorithms, discover
from repro.profiling.summary import ProfileSummary, summarize
from repro.profiling.verify import verify_profile
from repro.service import ProfilingService, ServiceConfig, recover
from repro.storage.relation import Relation
from repro.storage.schema import Column, Schema

__version__ = "1.0.0"

__all__ = [
    "Column",
    "ColumnCombination",
    "Profile",
    "ProfileSummary",
    "ProfilingService",
    "Relation",
    "Schema",
    "ServiceConfig",
    "SwanProfiler",
    "UniqueConstraintMonitor",
    "available_algorithms",
    "discover",
    "recover",
    "summarize",
    "verify_profile",
    "__version__",
]
