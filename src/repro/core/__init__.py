"""SWAN: incremental unique / non-unique discovery (the paper's core).

* :mod:`repro.core.repository` -- the MUCS/MNUCS profile repository.
* :mod:`repro.core.index_selection` -- Algorithms 3 and 4 (which columns
  to index).
* :mod:`repro.core.duplicates` -- the duplicate manager of the insert
  workflow.
* :mod:`repro.core.inserts` -- the Inserts Handler (Algorithms 1, 2, 5).
* :mod:`repro.core.deletes` -- the Deletes Handler (Algorithm 6).
* :mod:`repro.core.swan` -- the :class:`SwanProfiler` facade tying the
  pieces to a live relation.
"""

from repro.core.index_selection import (
    add_additional_index_attributes,
    select_index_attributes,
)
from repro.core.monitor import EventKind, MonitorEvent, UniqueConstraintMonitor
from repro.core.repository import Profile
from repro.core.swan import SwanProfiler

__all__ = [
    "EventKind",
    "MonitorEvent",
    "Profile",
    "SwanProfiler",
    "UniqueConstraintMonitor",
    "add_additional_index_attributes",
    "select_index_attributes",
]
