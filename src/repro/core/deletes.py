"""The Deletes Handler: Algorithm 6 of the paper.

Deletes can only *create* uniqueness, so the handler starts from the
maximal non-uniques. For each MNUC it decides cheaply whether the batch
could have destroyed its last duplicate (Section IV-B short-circuits),
and only for MNUCs that actually turned unique does it descend into the
subset lattice -- classifying combinations against PLIs, pruning with
the UGraph/NUGraph structures -- to find the new minimal uniques and
maximal non-uniques.

Check order for one maximal non-unique N against a delete batch D
(cheapest first; each step is exact, never a heuristic):

1. *Unaffected*: if no deleted tuple was clustered (pre-delete) in
   every column of N, no duplicate pair of N involved a deleted tuple;
   N stays non-unique.
2. *Restricted intersection*: intersect only the position lists that
   contained deleted tuples. An empty result means the duplicates of N
   never involved D; still non-unique.
3. *Survivors*: if some restricted cluster keeps >= 2 non-deleted
   members, that duplicate pair survives; still non-unique.
4. *Complete check*: intersect the full (pre-delete) column PLIs and
   look for a cluster with >= 2 surviving members.

The handler, like the inserts handler, does not mutate storage; the
facade captures the deleted rows, calls :meth:`handle`, then applies
the batch to the relation, value indexes and PLIs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Mapping

import numpy as np

from repro.core.repository import ProfileRepository
from repro.lattice.combination import iter_bits
from repro.lattice.graphs import CombinationGraph
from repro.lattice.transversal import mucs_from_mnucs
from repro.storage.fastpli import ArrayPli
from repro.storage.pli import PositionListIndex
from repro.storage.relation import Relation

Row = tuple[Hashable, ...]


@dataclass
class DeleteStats:
    """Observable work done by one delete batch."""

    batch_size: int = 0
    mnucs_checked: int = 0
    unaffected_short_circuits: int = 0
    restricted_short_circuits: int = 0
    survivor_short_circuits: int = 0
    complete_checks: int = 0
    turned_mnucs: int = 0
    lattice_checks: int = 0


@dataclass
class DeleteOutcome:
    """New profile plus the work statistics of the batch."""

    mucs: list[int]
    mnucs: list[int]
    stats: DeleteStats


def _survivor_pair(pli: PositionListIndex, deleted: set[int]) -> bool:
    """True iff some position list keeps >= 2 non-deleted members."""
    for cluster in pli.clusters():
        survivors = 0
        for tuple_id in cluster:
            if tuple_id not in deleted:
                survivors += 1
                if survivors >= 2:
                    return True
    return False


class DeletesHandler:
    """Computes the post-delete profile for batches of removed tuples."""

    def __init__(
        self,
        relation: Relation,
        repository: ProfileRepository,
        column_plis: dict[int, PositionListIndex],
    ) -> None:
        self._relation = relation
        self._repository = repository
        self._plis = column_plis

    # ------------------------------------------------------------------
    # Section IV-B: checking one non-unique
    # ------------------------------------------------------------------
    def _is_still_non_unique(
        self,
        mask: int,
        deleted: set[int],
        clustered_deleted: dict[int, set[int]],
        stats: DeleteStats,
    ) -> bool:
        columns = list(iter_bits(mask))
        if not columns:
            # The empty combination (every single column unique) stays
            # non-unique exactly while two tuples survive.
            return self._has_surviving_duplicate(0, deleted)
        # (1) A deleted tuple can only affect N when it is clustered in
        # *every* column of N pre-delete.
        affecting = deleted
        for column in columns:
            affecting = affecting & clustered_deleted.get(column, set())
            if not affecting:
                stats.unaffected_short_circuits += 1
                return True

        # (2) + (3) Restricted intersection over position lists that
        # contained affecting tuples.
        columns.sort(key=lambda column: self._plis[column].n_entries())
        first = self._plis[columns[0]]
        restricted = PositionListIndex.from_clusters(
            first.clusters_containing(affecting)
        )
        for column in columns[1:]:
            if not restricted.has_duplicates:
                break
            restricted = restricted.intersect(self._plis[column])
        if not restricted.has_duplicates:
            stats.restricted_short_circuits += 1
            return True
        if _survivor_pair(restricted, deleted):
            stats.survivor_short_circuits += 1
            return True

        # (4) Complete PLI of N (pre-delete), checking for survivors.
        stats.complete_checks += 1
        return self._has_surviving_duplicate(mask, deleted)

    def _has_surviving_duplicate(self, mask: int, deleted: set[int]) -> bool:
        """Exact post-delete non-uniqueness via full PLI intersection.

        Intersects cheapest-first with early exits: an intermediate PLI
        without a surviving pair settles the answer (subsets of
        non-uniques...), checked only while the PLI is small enough for
        the scan to pay for itself.
        """
        columns = sorted(iter_bits(mask), key=lambda c: self._plis[c].n_entries())
        if not columns:
            survivors = sum(
                1 for tuple_id in self._relation.iter_ids() if tuple_id not in deleted
            )
            return survivors >= 2
        current = self._plis[columns[0]]
        for column in columns[1:]:
            if not current.has_duplicates:
                return False
            if current.n_entries() <= 2 * len(deleted) and not _survivor_pair(
                current, deleted
            ):
                return False
            current = current.intersect(self._plis[column])
        return _survivor_pair(current, deleted)

    # ------------------------------------------------------------------
    # Algorithm 6: the full delete workflow
    # ------------------------------------------------------------------
    def handle(self, deleted_rows: Mapping[int, Row]) -> DeleteOutcome:
        """Compute the profile of (relation \\ deleted rows).

        ``deleted_rows`` maps the deleted tuple IDs to their rows; the
        relation and PLIs must still contain them (pre-delete state).
        """
        stats = DeleteStats(batch_size=len(deleted_rows))
        old_mucs = self._repository.mucs
        old_mnucs = self._repository.mnucs
        if not deleted_rows:
            return DeleteOutcome(list(old_mucs), list(old_mnucs), stats)

        deleted = set(deleted_rows)
        clustered_deleted = {
            column: {
                tuple_id for tuple_id in deleted if pli.cluster_of(tuple_id) is not None
            }
            for column, pli in self._plis.items()
        }

        graph = CombinationGraph()
        for muc_mask in old_mucs:
            graph.add_unique(muc_mask)

        # Post-delete per-column partitions in array form: the lattice
        # descent below turned MNUCs classifies combinations by the
        # thousand, so intersections must run vectorized; the deletions
        # are applied once while converting from the maintained PLIs.
        post_columns: dict[int, ArrayPli] = {}
        post_cache: dict[int, ArrayPli] = {}
        capacity = self._relation.next_tuple_id
        live_after = [
            tuple_id
            for tuple_id in self._relation.iter_ids()
            if tuple_id not in deleted
        ]

        def post_column(column: int) -> ArrayPli:
            pli = post_columns.get(column)
            if pli is None:
                ids: list[int] = []
                labels: list[int] = []
                label = 0
                for cluster in self._plis[column].clusters():
                    members = [t for t in cluster if t not in deleted]
                    if len(members) >= 2:
                        ids.extend(members)
                        labels.extend([label] * len(members))
                        label += 1
                pli = ArrayPli(
                    np.asarray(ids, dtype=np.int64),
                    np.asarray(labels, dtype=np.int64),
                    capacity,
                )
                post_columns[column] = pli
            return pli

        def post_pli(mask: int) -> ArrayPli:
            cached = post_cache.get(mask)
            if cached is not None:
                return cached
            columns = list(iter_bits(mask))
            if not columns:
                return ArrayPli.single_cluster(live_after, capacity)
            current = None
            for column in columns:
                parent = post_cache.get(mask & ~(1 << column))
                if parent is not None:
                    current = parent.intersect(post_column(column))
                    break
            if current is None:
                columns.sort(key=lambda c: post_column(c).n_entries())
                current = post_column(columns[0])
                for column in columns[1:]:
                    if not current.has_duplicates:
                        break
                    current = current.intersect(post_column(column))
            post_cache[mask] = current
            return current

        classification: dict[int, bool] = {}

        def classify(mask: int) -> bool:
            known = classification.get(mask)
            if known is not None:
                return known
            implied = graph.classify(mask)
            if implied is None:
                stats.lattice_checks += 1
                implied = not post_pli(mask).has_duplicates
                if implied:
                    graph.add_unique(mask)
                else:
                    graph.add_non_unique(mask)
            classification[mask] = implied
            return implied

        for mnuc_mask in old_mnucs:
            stats.mnucs_checked += 1
            if self._is_still_non_unique(mnuc_mask, deleted, clustered_deleted, stats):
                graph.add_non_unique(mnuc_mask)
                classification[mnuc_mask] = False
            else:
                stats.turned_mnucs += 1
                graph.add_unique(mnuc_mask)
                classification[mnuc_mask] = True

        # Duality fixpoint (same argument as DUCC's hole detection,
        # DESIGN.md section 2): the minimal combinations not contained
        # in any currently-known maximal non-unique are exactly the
        # minimal-unique candidates that border implies. Candidates
        # that verify non-unique are holes; each is *ascended* to a
        # genuinely maximal non-unique before the next round --
        # recording the hole itself would flood the border with
        # incomparable mid-lattice non-uniques and make the dualization
        # diverge (DUCC's random walk performs this ascent implicitly).
        # When every candidate verifies unique, the border and its dual
        # are the exact new MNUCS and MUCS. Walking the subset lattice
        # below each turned MNUC instead would be exponential whenever
        # the new boundary sits far below it.
        n_columns = self._relation.n_columns
        universe = (1 << n_columns) - 1

        def ascend_to_maximal(mask: int) -> None:
            current = mask
            climbing = True
            while climbing:
                climbing = False
                for column in iter_bits(universe & ~current):
                    candidate = current | (1 << column)
                    if not classify(candidate):
                        current = candidate
                        climbing = True
                        break

        while True:
            border = graph.maximal_non_uniques()
            candidates = mucs_from_mnucs(border, n_columns)
            holes = [
                candidate for candidate in candidates if not classify(candidate)
            ]
            if not holes:
                return DeleteOutcome(
                    mucs=candidates,
                    mnucs=border,
                    stats=stats,
                )
            for hole in holes:
                ascend_to_maximal(hole)


def capture_rows(relation: Relation, tuple_ids: Iterable[int]) -> dict[int, Row]:
    """Snapshot rows (pre-delete) for the handler and index maintenance."""
    return {tuple_id: relation.row(tuple_id) for tuple_id in tuple_ids}
