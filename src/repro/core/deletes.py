"""The Deletes Handler: Algorithm 6 of the paper.

Deletes can only *create* uniqueness, so the handler starts from the
maximal non-uniques. For each MNUC it decides cheaply whether the batch
could have destroyed its last duplicate (Section IV-B short-circuits),
and only for MNUCs that actually turned unique does it descend into the
subset lattice -- classifying combinations against PLIs, pruning with
the UGraph/NUGraph structures -- to find the new minimal uniques and
maximal non-uniques.

Check order for one maximal non-unique N against a delete batch D
(cheapest first; each step is exact, never a heuristic):

1. *Unaffected*: if no deleted tuple was clustered (pre-delete) in
   every column of N, no duplicate pair of N involved a deleted tuple;
   N stays non-unique.
2. *Restricted intersection*: intersect only the position lists that
   contained deleted tuples. An empty result means the duplicates of N
   never involved D; still non-unique.
3. *Survivors*: if some restricted cluster keeps >= 2 non-deleted
   members, that duplicate pair survives; still non-unique.
4. *Complete check*: the full post-delete partition of N, shared with
   the lattice descent through the per-batch partition workspace.

All partition work runs on :class:`~repro.storage.fastpli.ArrayPli`
(vectorized, GIL-releasing); the *pre-delete* per-column partitions
come from the cross-batch :class:`~repro.storage.plicache.PartitionCache`
when a previous batch already derived them, and are converted from the
maintained pointer PLIs exactly once otherwise.

The handler, like the inserts handler, does not mutate storage; the
facade captures the deleted rows, calls :meth:`handle`, then applies
the batch to the relation, value indexes and PLIs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterable, Mapping

import numpy as np

from repro.core.parallel import FanOutPool
from repro.core.repository import ProfileRepository
from repro.lattice.combination import iter_bits
from repro.lattice.graphs import CombinationGraph
from repro.lattice.transversal import mucs_from_mnucs
from repro.storage.fastpli import ArrayPli
from repro.storage.pli import PositionListIndex
from repro.storage.plicache import PartitionCache
from repro.storage.relation import Relation

Row = tuple[Hashable, ...]


@dataclass
class DeleteStats:
    """Observable work done by one delete batch."""

    batch_size: int = 0
    mnucs_checked: int = 0
    unaffected_short_circuits: int = 0
    restricted_short_circuits: int = 0
    survivor_short_circuits: int = 0
    complete_checks: int = 0
    turned_mnucs: int = 0
    lattice_checks: int = 0


@dataclass
class DeleteOutcome:
    """New profile plus the work statistics of the batch.

    ``post_partitions`` holds the derived partitions the lattice
    descent computed; they describe the *post-delete* state, so the
    facade publishes them into the shared partition cache under the
    next generation once the batch actually commits (previews discard
    them).
    """

    mucs: list[int]
    mnucs: list[int]
    stats: DeleteStats
    post_partitions: dict[int, ArrayPli] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.post_partitions is None:
            self.post_partitions = {}


@dataclass
class _BatchContext:
    """Per-batch partition workspace shared by checks and descent.

    ``pre_columns`` holds the *pre-delete* per-column partitions (the
    state the shared cache describes at the current generation);
    ``post_cache`` accumulates every *post-delete* partition derived,
    keyed by mask -- it becomes ``DeleteOutcome.post_partitions``.
    Values are immutable once stored and recomputation is exact, so
    concurrent readers during the fan-out only ever race on how much
    work is saved, never on results.
    """

    deleted: set[int]
    doomed: np.ndarray  # boolean over the tuple-ID space
    deleted_ids: np.ndarray  # the batch's IDs, sorted ascending
    generation: int
    capacity: int
    live_after: list[int]
    pre_columns: dict[int, ArrayPli] = field(default_factory=dict)
    post_columns: dict[int, ArrayPli] = field(default_factory=dict)
    post_cache: dict[int, ArrayPli] = field(default_factory=dict)


class DeletesHandler:
    """Computes the post-delete profile for batches of removed tuples."""

    def __init__(
        self,
        relation: Relation,
        repository: ProfileRepository,
        column_plis: dict[int, PositionListIndex],
        cache: PartitionCache | None = None,
        pool: FanOutPool | None = None,
    ) -> None:
        self._relation = relation
        self._repository = repository
        self._plis = column_plis
        self._cache = cache
        self._pool = pool
        self._ctx: _BatchContext | None = None

    # ------------------------------------------------------------------
    # Per-batch partition workspace
    # ------------------------------------------------------------------
    def _pre_column(self, column: int) -> ArrayPli:
        """The pre-delete partition of one column, in array form.

        Served from the cross-batch cache when the previous batch
        published it (its post-delete state *is* this batch's pre-delete
        state); otherwise converted from the maintained pointer PLI --
        the only Python-level cluster scan left on the delete path, and
        it happens at most once per column per cache lifetime.
        """
        ctx = self._ctx
        assert ctx is not None
        pli = ctx.pre_columns.get(column)
        if pli is None:
            mask = 1 << column
            cached = (
                self._cache.get(mask, ctx.generation)
                if self._cache is not None
                else None
            )
            if cached is not None:
                pli = cached
            else:
                ids: list[int] = []
                labels: list[int] = []
                label = 0
                for cluster in self._plis[column].clusters():
                    ids.extend(cluster)
                    labels.extend([label] * len(cluster))
                    label += 1
                pli = ArrayPli(
                    np.asarray(ids, dtype=np.int64),
                    np.asarray(labels, dtype=np.int64),
                    ctx.capacity,
                )
            ctx.pre_columns[column] = pli
        return pli

    def _post_column(self, column: int) -> ArrayPli:
        ctx = self._ctx
        assert ctx is not None
        pli = ctx.post_columns.get(column)
        if pli is None:
            pli = self._pre_column(column).without_ids(ctx.doomed)
            ctx.post_columns[column] = pli
            ctx.post_cache[1 << column] = pli
        return pli

    def _post_pli(self, mask: int) -> ArrayPli:
        """The post-delete partition of ``mask`` (memoized per batch)."""
        ctx = self._ctx
        assert ctx is not None
        cached = ctx.post_cache.get(mask)
        if cached is not None:
            return cached
        columns = list(iter_bits(mask))
        if not columns:
            current = ArrayPli.single_cluster(ctx.live_after, ctx.capacity)
            ctx.post_cache[mask] = current
            return current
        current: ArrayPli | None = None
        if self._cache is not None:
            # Cross-batch exact hit: filter the batch's deletes out of
            # the partition the previous batch derived.
            previous = self._cache.get(mask, ctx.generation)
            if previous is not None:
                current = previous.without_ids(ctx.doomed)
        if current is None:
            # Single-parent seed within this batch's descent...
            seed_mask = 0
            seed: ArrayPli | None = None
            for column in columns:
                parent_mask = mask & ~(1 << column)
                parent = ctx.post_cache.get(parent_mask)
                if parent is not None:
                    seed_mask, seed = parent_mask, parent
                    break
            # ...generalized to the best-covered cached ancestor from
            # previous batches when no parent is at hand.
            if seed is None and self._cache is not None:
                found = self._cache.best_ancestor(mask, ctx.generation)
                if found is not None:
                    seed_mask, previous = found
                    seed = previous.without_ids(ctx.doomed)
            remaining = sorted(
                iter_bits(mask & ~seed_mask),
                key=lambda c: self._post_column(c).n_entries(),
            )
            current = seed
            if current is None:
                current = self._post_column(remaining[0])
                remaining = remaining[1:]
            for column in remaining:
                if not current.has_duplicates:
                    break
                current = current.intersect(self._post_column(column))
        ctx.post_cache[mask] = current
        return current

    # ------------------------------------------------------------------
    # Section IV-B: checking one non-unique
    # ------------------------------------------------------------------
    def _is_still_non_unique(
        self,
        mask: int,
        deleted: set[int],
        clustered_deleted: dict[int, np.ndarray],
        stats: DeleteStats,
    ) -> bool:
        ctx = self._ctx
        assert ctx is not None
        columns = list(iter_bits(mask))
        if not columns:
            # The empty combination (every single column unique) stays
            # non-unique exactly while two tuples survive.
            return self._has_surviving_duplicate(0, deleted)
        # (1) A deleted tuple can only affect N when it is clustered in
        # *every* column of N pre-delete. ``clustered_deleted`` holds
        # one boolean membership mask per column, aligned with the
        # sorted batch IDs, so the conjunction is one vectorized AND per
        # column instead of a python set intersection.
        affecting: np.ndarray | None = None
        for column in columns:
            clustered = clustered_deleted.get(column)
            if clustered is None:
                clustered = self._pre_column(column).dense[ctx.deleted_ids] >= 0
                clustered_deleted[column] = clustered
            affecting = clustered if affecting is None else affecting & clustered
            if not affecting.any():
                stats.unaffected_short_circuits += 1
                return True
        assert affecting is not None

        # (2) + (3) Restricted intersection over position lists that
        # contained affecting tuples, all vectorized on the pre-delete
        # array partitions.
        columns.sort(key=lambda column: self._plis[column].n_entries())
        affecting_ids = ctx.deleted_ids[affecting]
        restricted = self._pre_column(columns[0]).clusters_containing_ids(
            affecting_ids
        )
        for column in columns[1:]:
            if not restricted.has_duplicates:
                break
            restricted = restricted.intersect(self._pre_column(column))
        if not restricted.has_duplicates:
            stats.restricted_short_circuits += 1
            return True
        if restricted.without_ids(ctx.doomed).has_duplicates:
            stats.survivor_short_circuits += 1
            return True

        # (4) Complete post-delete partition of N, shared with the
        # descent through the batch workspace.
        stats.complete_checks += 1
        return self._has_surviving_duplicate(mask, deleted)

    def _has_surviving_duplicate(self, mask: int, deleted: set[int]) -> bool:
        """Exact post-delete non-uniqueness of one combination."""
        return self._post_pli(mask).has_duplicates

    # ------------------------------------------------------------------
    # Algorithm 6: the full delete workflow
    # ------------------------------------------------------------------
    def handle(
        self, deleted_rows: Mapping[int, Row], generation: int = 0
    ) -> DeleteOutcome:
        """Compute the profile of (relation \\ deleted rows).

        ``deleted_rows`` maps the deleted tuple IDs to their rows; the
        relation and PLIs must still contain them (pre-delete state).
        ``generation`` is the relation's applied-batch generation and
        keys every read of the shared partition cache: only entries
        computed for exactly this pre-delete state may seed this batch.
        """
        stats = DeleteStats(batch_size=len(deleted_rows))
        old_mucs = self._repository.mucs
        old_mnucs = self._repository.mnucs
        if not deleted_rows:
            return DeleteOutcome(list(old_mucs), list(old_mnucs), stats)

        deleted = set(deleted_rows)

        graph = CombinationGraph()
        for muc_mask in old_mucs:
            graph.add_unique(muc_mask)

        capacity = self._relation.next_tuple_id
        live_after = [
            tuple_id
            for tuple_id in self._relation.iter_ids()
            if tuple_id not in deleted
        ]
        # Boolean membership of the batch over the ID space, for the
        # vectorized filter that carries cached partitions forward.
        doomed = np.zeros(capacity, dtype=bool)
        if deleted:
            doomed[np.fromiter(deleted, dtype=np.int64, count=len(deleted))] = True
        self._ctx = _BatchContext(
            deleted=deleted,
            doomed=doomed,
            deleted_ids=np.flatnonzero(doomed).astype(np.int64),
            generation=generation,
            capacity=capacity,
            live_after=live_after,
        )
        try:
            return self._handle_with_context(
                old_mucs, old_mnucs, deleted, graph, stats
            )
        finally:
            self._ctx = None

    def _handle_with_context(
        self,
        old_mucs: list[int],
        old_mnucs: list[int],
        deleted: set[int],
        graph: CombinationGraph,
        stats: DeleteStats,
    ) -> DeleteOutcome:
        ctx = self._ctx
        assert ctx is not None

        # Materialize (serially) the pre-delete partitions -- and their
        # dense probe maps -- of every column the checks will touch, so
        # the fan-out below is a pure reader of the workspace; the dense
        # maps double as the batch's per-column clustered-membership
        # masks (dense label >= 0 <=> clustered pre-delete), replacing
        # the per-tuple ``cluster_of`` probe loop.
        clustered_deleted: dict[int, np.ndarray] = {}
        for column in sorted({c for mask in old_mnucs for c in iter_bits(mask)}):
            dense = self._pre_column(column).dense
            clustered_deleted[column] = dense[ctx.deleted_ids] >= 0

        classification: dict[int, bool] = {}

        def classify(mask: int) -> bool:
            known = classification.get(mask)
            if known is not None:
                return known
            implied = graph.classify(mask)
            if implied is None:
                stats.lattice_checks += 1
                implied = not self._post_pli(mask).has_duplicates
                if implied:
                    graph.add_unique(mask)
                else:
                    graph.add_non_unique(mask)
            classification[mask] = implied
            return implied

        # Per-MNUC short-circuit checks are independent and read-only
        # against the profile, so they fan out on the worker pool (the
        # ArrayPli intersections release the GIL); results are folded
        # back in ``old_mnucs`` order, which keeps the graph -- and
        # hence the whole descent -- bit-identical to the serial path.
        def check_one(mnuc_mask: int) -> tuple[bool, DeleteStats]:
            local = DeleteStats()
            still = self._is_still_non_unique(
                mnuc_mask, deleted, clustered_deleted, local
            )
            return still, local

        if self._pool is not None and self._pool.active:
            checks = self._pool.map(check_one, old_mnucs)
        else:
            checks = [check_one(mnuc_mask) for mnuc_mask in old_mnucs]
        for mnuc_mask, (still_non_unique, local) in zip(old_mnucs, checks):
            stats.mnucs_checked += 1
            stats.unaffected_short_circuits += local.unaffected_short_circuits
            stats.restricted_short_circuits += local.restricted_short_circuits
            stats.survivor_short_circuits += local.survivor_short_circuits
            stats.complete_checks += local.complete_checks
            if still_non_unique:
                graph.add_non_unique(mnuc_mask)
                classification[mnuc_mask] = False
            else:
                stats.turned_mnucs += 1
                graph.add_unique(mnuc_mask)
                classification[mnuc_mask] = True

        # Duality fixpoint (same argument as DUCC's hole detection,
        # DESIGN.md section 2): the minimal combinations not contained
        # in any currently-known maximal non-unique are exactly the
        # minimal-unique candidates that border implies. Candidates
        # that verify non-unique are holes; each is *ascended* to a
        # genuinely maximal non-unique before the next round --
        # recording the hole itself would flood the border with
        # incomparable mid-lattice non-uniques and make the dualization
        # diverge (DUCC's random walk performs this ascent implicitly).
        # When every candidate verifies unique, the border and its dual
        # are the exact new MNUCS and MUCS. Walking the subset lattice
        # below each turned MNUC instead would be exponential whenever
        # the new boundary sits far below it.
        n_columns = self._relation.n_columns
        universe = (1 << n_columns) - 1

        def ascend_to_maximal(mask: int) -> None:
            current = mask
            climbing = True
            while climbing:
                climbing = False
                for column in iter_bits(universe & ~current):
                    candidate = current | (1 << column)
                    if not classify(candidate):
                        current = candidate
                        climbing = True
                        break

        while True:
            border = graph.maximal_non_uniques()
            candidates = mucs_from_mnucs(border, n_columns)
            holes = [
                candidate for candidate in candidates if not classify(candidate)
            ]
            if not holes:
                # Carry forward the post-delete state of every column
                # partition this batch materialized, not only the ones
                # the descent touched: the next batch's checks start
                # from exactly these.
                for column in list(ctx.pre_columns):
                    self._post_column(column)
                return DeleteOutcome(
                    mucs=candidates,
                    mnucs=border,
                    stats=stats,
                    post_partitions=ctx.post_cache,
                )
            for hole in holes:
                ascend_to_maximal(hole)


def capture_rows(relation: Relation, tuple_ids: Iterable[int]) -> dict[int, Row]:
    """Snapshot rows (pre-delete) for the handler and index maintenance."""
    return {tuple_id: relation.row(tuple_id) for tuple_id in tuple_ids}
