"""Deterministic fan-out executors for per-combination work.

Both incremental handlers contain loops whose iterations are
independent and read-only against shared state:

* the insert path probes value indexes once per minimal unique
  (Algorithm 2), and
* the delete path short-circuit-checks every maximal non-unique
  against the batch (Section IV-B).

Two pool shapes run such loops while keeping the *merge order
deterministic* -- results come back in input order, so the downstream
profile computation is bit-identical to the serial path:

* :class:`FanOutPool` fans out on a shared
  :class:`~concurrent.futures.ThreadPoolExecutor`. Threads are the
  right shape when the hot ArrayPli/numpy intersections release the
  GIL and the remaining python work is memory-bound dict probing.
* :class:`ProcessFanOut` fans out on a fork-context
  :class:`multiprocessing.Pool`. Forked children inherit the encoded
  columnar arrays (read-only by lint rule R2) by address-space copy --
  nothing is pickled on the way in, only the small per-item results on
  the way out -- so python-heavy checks escape the GIL entirely. The
  task closure is installed in a module global *before* the fork and
  each batch forks a fresh pool, which is what makes arbitrary
  (unpicklable) closures legal.

``parallelism <= 1`` keeps everything on the calling thread with zero
setup cost for either shape; the thread executor is created lazily on
the first parallel batch and torn down via :meth:`FanOutPool.close`.
Pick a shape by name with :func:`make_pool` (the ``execution_mode``
knob surfaced by the profiler, service and CLIs).
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence, TypeVar

from repro.sanitize import make_lock, register_fork_owner

Item = TypeVar("Item")
Result = TypeVar("Result")

EXECUTION_MODES = ("thread", "process")

# Fanning out a tiny loop costs more in scheduling than it saves; below
# this many items the pool runs the loop inline.
MIN_FANOUT_ITEMS = 2

# The task fn of the batch currently fanned out by ProcessFanOut.map.
# Installed before the pool forks so children inherit it via the
# address-space copy; forked workers call it through _invoke_installed.
_WORKER_TASK: Callable[[Any], Any] | None = None


def _invoke_installed(item: Any) -> Any:
    task = _WORKER_TASK
    if task is None:  # pragma: no cover - defensive, fork guarantees it
        raise RuntimeError("no task installed in this worker process")
    return task(item)


@dataclass
class PoolStats:
    """Observable executor behaviour, published via ``stats()``."""

    tasks: int = 0  # items executed (serial or parallel)
    fanout_batches: int = 0  # loops that actually hit the pool
    serial_batches: int = 0  # loops that ran inline
    fanout_tasks: int = 0  # items executed on workers
    fanout_slots: int = 0  # worker slots occupied across fan-out waves
    effective_sum: int = 0  # sum of per-batch effective worker counts

    def record_fanout(self, tasks: int, effective: int) -> None:
        """Account one fan-out batch run at ``effective`` workers.

        A batch of ``tasks`` items on ``effective`` workers occupies
        ``effective * ceil(tasks / effective)`` worker slots: the last
        wave holds idle slots when the batch does not divide evenly.
        """
        self.fanout_batches += 1
        self.fanout_tasks += tasks
        self.effective_sum += effective
        waves = -(-tasks // effective)
        self.fanout_slots += effective * waves

    def utilization(self, workers: int) -> float:
        """Busy worker slots as a fraction of occupied slots (<= 1.0).

        An inline pool (``workers <= 1``) has no idle workers to
        account for -- the calling thread runs every item at capacity
        -- so it reports ``1.0`` rather than dividing busy time by a
        worker count that never ran. An *active* pool that has not yet
        fanned out a batch reports ``0.0``. Slots are counted against
        the per-batch *effective* worker count (clamped to the batch
        size), so a 4-worker pool fed 3-item batches reports how well
        those 3 workers were kept busy, not a phantom fourth.
        """
        if workers <= 1:
            return 1.0
        if not self.fanout_slots:
            return 0.0
        return self.fanout_tasks / self.fanout_slots

    def effective_workers(self) -> float:
        """Mean workers actually provisioned per fan-out batch."""
        if not self.fanout_batches:
            return 0.0
        return self.effective_sum / self.fanout_batches

    def to_dict(self, workers: int) -> dict[str, float]:
        return {
            "workers": workers,
            "tasks": self.tasks,
            "fanout_batches": self.fanout_batches,
            "serial_batches": self.serial_batches,
            "fanout_tasks": self.fanout_tasks,
            "effective_workers": round(self.effective_workers(), 4),
            "utilization": round(self.utilization(workers), 4),
        }


class FanOutPool:
    """Ordered map over worker threads, inline when parallelism is off."""

    mode = "thread"

    def __init__(self, parallelism: int = 0) -> None:
        """``parallelism`` is the worker count; ``0`` or ``1``
        disables fan-out entirely (the serial reference path)."""
        self.parallelism = max(0, int(parallelism))
        self.stats = PoolStats()
        self._executor: ThreadPoolExecutor | None = None
        self._lock = make_lock("core.fanout")
        register_fork_owner(self)

    def _reset_locks_after_fork(self) -> None:
        self._lock = make_lock("core.fanout")
        # The parent's executor threads do not exist in the child; a
        # child that ever fans out again must build its own.
        self._executor = None

    @property
    def active(self) -> bool:
        """Will :meth:`map` ever use workers?"""
        return self.parallelism >= 2

    def map(
        self,
        fn: Callable[[Item], Result],
        items: Iterable[Item],
    ) -> list[Result]:
        """Apply ``fn`` to every item, returning results in input order.

        The deterministic order is the contract that keeps parallel
        profiles bit-identical to serial ones: callers fold the results
        into graphs/antichains in the same sequence either way. The
        first exception raised by any task propagates to the caller.
        """
        materialized: Sequence[Item] = (
            items if isinstance(items, (list, tuple)) else list(items)
        )
        self.stats.tasks += len(materialized)
        if not self.active or len(materialized) < MIN_FANOUT_ITEMS:
            self.stats.serial_batches += 1
            return [fn(item) for item in materialized]
        # Never provision more workers than the batch has tasks: the
        # surplus would sit idle for the whole batch (the committed
        # parallel-scale baseline showed thread-4 dropping to 7.25%
        # busy-slot utilization on 2-3 item batches before the clamp).
        effective = min(self.parallelism, len(materialized))
        self.stats.record_fanout(len(materialized), effective)
        return self._run_fanout(fn, materialized, effective)

    def _run_fanout(
        self,
        fn: Callable[[Item], Result],
        materialized: Sequence[Item],
        effective: int,
    ) -> list[Result]:
        # The shared thread executor keeps its full complement (idle
        # threads are parked and cost nothing); only the slot accounting
        # above uses the clamped count.
        return list(self._ensure_executor().map(fn, materialized))

    def _ensure_executor(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.parallelism,
                    thread_name_prefix="repro-fanout",
                )
            return self._executor

    def stats_dict(self) -> dict[str, object]:
        payload: dict[str, object] = dict(self.stats.to_dict(self.parallelism))
        payload["mode"] = self.mode if self.active else "inline"
        return payload

    def close(self) -> None:
        """Join and release the workers (idempotent)."""
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)

    def __enter__(self) -> "FanOutPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "idle" if self._executor is None else "running"
        return (
            f"{type(self).__name__}(parallelism={self.parallelism}, {state})"
        )


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


class ProcessFanOut(FanOutPool):
    """Ordered map over forked worker processes.

    Each :meth:`map` batch forks a fresh fork-context pool: the task
    closure -- installed in the module global ``_WORKER_TASK`` right
    before the fork -- and every structure it closes over (relation
    code arrays, value indexes, partitions) reach the children as
    copy-on-write pages, never through pickle. Only the per-item
    results return through the pipe, so they must be picklable; both
    handlers return plain ``(payload, stats)`` tuples.

    Per-batch forking costs a few milliseconds of setup, which the
    handlers amortize over whole per-MUC / per-MNUC sweeps. On
    platforms without the fork start method the pool degrades to
    inline execution (``active`` is False) rather than paying the
    spawn-and-pickle tax silently.
    """

    mode = "process"

    @property
    def active(self) -> bool:
        return self.parallelism >= 2 and _fork_available()

    def _run_fanout(
        self,
        fn: Callable[[Item], Result],
        materialized: Sequence[Item],
        effective: int,
    ) -> list[Result]:
        global _WORKER_TASK
        context = multiprocessing.get_context("fork")
        _WORKER_TASK = fn
        try:
            # Forked workers are paid for per batch, so the clamp is a
            # real saving here: a 2-item batch forks 2 children, not 4.
            with context.Pool(processes=effective) as pool:
                return pool.map(_invoke_installed, materialized)
        finally:
            _WORKER_TASK = None


def make_pool(execution_mode: str, parallelism: int = 0) -> FanOutPool:
    """Build the fan-out pool named by the ``execution_mode`` knob."""
    if execution_mode == "thread":
        return FanOutPool(parallelism)
    if execution_mode == "process":
        return ProcessFanOut(parallelism)
    raise ValueError(
        f"unknown execution mode {execution_mode!r}; "
        f"expected one of {', '.join(EXECUTION_MODES)}"
    )
