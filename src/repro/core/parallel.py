"""Deterministic thread fan-out for per-combination work.

Both incremental handlers contain loops whose iterations are
independent and read-only against shared state:

* the insert path probes value indexes once per minimal unique
  (Algorithm 2), and
* the delete path short-circuit-checks every maximal non-unique
  against the batch (Section IV-B).

:class:`FanOutPool` runs such loops on a shared
:class:`~concurrent.futures.ThreadPoolExecutor` while keeping the
*merge order deterministic*: results come back in input order, so the
downstream profile computation is bit-identical to the serial path.
Threads (not processes) are the right shape here -- the hot
ArrayPli/numpy intersections release the GIL, and the pure-Python index
probes are memory-bound dict lookups that never pickle cheaply.

``parallelism <= 1`` keeps everything on the calling thread with zero
setup cost; the executor is created lazily on the first parallel batch
and torn down via :meth:`close`.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence, TypeVar

Item = TypeVar("Item")
Result = TypeVar("Result")

# Fanning out a tiny loop costs more in scheduling than it saves; below
# this many items the pool runs the loop inline.
MIN_FANOUT_ITEMS = 2


@dataclass
class PoolStats:
    """Observable executor behaviour, published via ``stats()``."""

    tasks: int = 0  # items executed (serial or parallel)
    fanout_batches: int = 0  # loops that actually hit the pool
    serial_batches: int = 0  # loops that ran inline
    fanout_tasks: int = 0  # items executed on worker threads

    def utilization(self, workers: int) -> float:
        """Mean fan-out width as a fraction of the worker count."""
        if not self.fanout_batches or workers <= 0:
            return 0.0
        return self.fanout_tasks / (self.fanout_batches * workers)

    def to_dict(self, workers: int) -> dict[str, float]:
        return {
            "workers": workers,
            "tasks": self.tasks,
            "fanout_batches": self.fanout_batches,
            "serial_batches": self.serial_batches,
            "fanout_tasks": self.fanout_tasks,
            "utilization": round(self.utilization(workers), 4),
        }


class FanOutPool:
    """Ordered map over a worker pool, inline when parallelism is off."""

    def __init__(self, parallelism: int = 0) -> None:
        """``parallelism`` is the worker-thread count; ``0`` or ``1``
        disables fan-out entirely (the serial reference path)."""
        self.parallelism = max(0, int(parallelism))
        self.stats = PoolStats()
        self._executor: ThreadPoolExecutor | None = None
        self._lock = threading.Lock()

    @property
    def active(self) -> bool:
        """Will :meth:`map` ever use worker threads?"""
        return self.parallelism >= 2

    def map(
        self,
        fn: Callable[[Item], Result],
        items: Iterable[Item],
    ) -> list[Result]:
        """Apply ``fn`` to every item, returning results in input order.

        The deterministic order is the contract that keeps parallel
        profiles bit-identical to serial ones: callers fold the results
        into graphs/antichains in the same sequence either way. The
        first exception raised by any task propagates to the caller.
        """
        materialized: Sequence[Item] = (
            items if isinstance(items, (list, tuple)) else list(items)
        )
        self.stats.tasks += len(materialized)
        if not self.active or len(materialized) < MIN_FANOUT_ITEMS:
            self.stats.serial_batches += 1
            return [fn(item) for item in materialized]
        self.stats.fanout_batches += 1
        self.stats.fanout_tasks += len(materialized)
        return list(self._ensure_executor().map(fn, materialized))

    def _ensure_executor(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.parallelism,
                    thread_name_prefix="repro-fanout",
                )
            return self._executor

    def stats_dict(self) -> dict[str, float]:
        return self.stats.to_dict(self.parallelism)

    def close(self) -> None:
        """Join and release the worker threads (idempotent)."""
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)

    def __enter__(self) -> "FanOutPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "idle" if self._executor is None else "running"
        return f"FanOutPool(parallelism={self.parallelism}, {state})"
