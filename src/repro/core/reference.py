"""Frozen scalar reference implementation of the dynamic pipeline.

This module preserves the pre-vectorization pipeline -- Python
``dict[value] -> set[int]`` postings probed one insert at a time,
per-(column, tuple-id) index maintenance, duplicate grouping by
hashing Python value tuples, and pointer-PLI delete descents probed
one tuple at a time -- exactly as it ran before the
dictionary-encoded columnar core landed.

It exists for two jobs:

* **Equivalence testing.** The vectorized pipeline guarantees
  bit-identical profiles; the property tests run random workloads
  through both and compare per-batch MUCS/MNUCS -- including mixed
  insert/delete workloads via :class:`ReferenceDynamicRunner`.
* **Regression benchmarking.** ``benchmarks/bench_insert_vector.py``
  and ``benchmarks/bench_parallel_scale.py`` time the scalar and
  vectorized pipelines on the same workload and gate CI on the
  speedup.

Nothing in the live system imports this module; do not "optimize" it --
its value is that it stays scalar.
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterable, Mapping, Sequence

from repro.core.duplicates import DuplicateGroup, projector
from repro.core.inserts import InsertOutcome, InsertStats, batch_agree_antichain
from repro.core.repository import Profile, ProfileRepository
from repro.lattice.antichain import MaximalAntichain
from repro.lattice.combination import columns_of, iter_bits, maximize, minimize
from repro.lattice.graphs import CombinationGraph
from repro.lattice.transversal import minimal_unique_supersets, mucs_from_mnucs
from repro.storage.pli import PositionListIndex, pli_for_combination
from repro.storage.relation import Relation
from repro.storage.sparse_index import SparseIndex, sparse_index_for_relation

Row = tuple[Hashable, ...]


class ScalarValueIndex:
    """The original inverted index: ``dict[value] -> set[tuple_id]``."""

    __slots__ = ("_column", "_postings")

    def __init__(self, column: int) -> None:
        self._column = column
        self._postings: dict[Hashable, set[int]] = {}

    @classmethod
    def build(cls, relation: Relation, column: int) -> "ScalarValueIndex":
        index = cls(column)
        for tuple_id, value in relation.column_values(column):
            index.add(value, tuple_id)
        return index

    @property
    def column(self) -> int:
        return self._column

    def add(self, value: Hashable, tuple_id: int) -> None:
        self._postings.setdefault(value, set()).add(tuple_id)

    def remove(self, value: Hashable, tuple_id: int) -> None:
        posting = self._postings.get(value)
        if posting is None:
            return
        posting.discard(tuple_id)
        if not posting:
            del self._postings[value]

    def lookup(self, value: Hashable) -> frozenset[int]:
        posting = self._postings.get(value)
        return frozenset(posting) if posting else frozenset()


class ScalarIndexPool:
    """The original pool with nested per-(column, tuple) maintenance."""

    __slots__ = ("_indexes",)

    def __init__(self, indexes: Iterable[ScalarValueIndex] = ()) -> None:
        self._indexes: dict[int, ScalarValueIndex] = {}
        for index in indexes:
            self._indexes[index.column] = index

    @classmethod
    def build(cls, relation: Relation, columns: Iterable[int]) -> "ScalarIndexPool":
        return cls(
            ScalarValueIndex.build(relation, column)
            for column in sorted(set(columns))
        )

    def __contains__(self, column: int) -> bool:
        return column in self._indexes

    def get(self, column: int) -> ScalarValueIndex:
        return self._indexes[column]

    def register_inserts(self, relation: Relation, tuple_ids: Iterable[int]) -> None:
        ids = list(tuple_ids)
        for column, index in self._indexes.items():
            for tuple_id in ids:
                index.add(relation.value(tuple_id, column), tuple_id)

    def register_deletes(self, rows_by_id: dict[int, tuple]) -> None:
        for column, index in self._indexes.items():
            for tuple_id, row in rows_by_id.items():
                index.remove(row[column], tuple_id)


class ScalarDuplicateManager:
    """The original duplicate manager: buckets keyed on value tuples."""

    __slots__ = ("_old_rows", "_new_rows")

    def __init__(
        self,
        old_rows: Mapping[int, Row],
        new_rows: Mapping[int, Row],
    ) -> None:
        self._old_rows = dict(old_rows)
        self._new_rows = dict(new_rows)

    def groups_for(
        self,
        muc_mask: int,
        candidate_old_ids: Iterable[int],
    ) -> list[DuplicateGroup]:
        project = projector(columns_of(muc_mask))
        buckets: dict[Row, list[tuple[int, Row]]] = {}
        for tuple_id, row in self._new_rows.items():
            buckets.setdefault(project(row), []).append((tuple_id, row))
        old_rows = self._old_rows
        buckets_get = buckets.get
        for tuple_id in candidate_old_ids:
            row = old_rows.get(tuple_id)
            if row is None:  # pragma: no cover - defensive
                continue
            bucket = buckets_get(project(row))
            if bucket is not None:
                bucket.append((tuple_id, row))
        return [
            DuplicateGroup(key, members)
            for key, members in buckets.items()
            if len(members) >= 2
        ]


class _ScalarLookupCache:
    """The original (frozenset-valued) Alg. 2 look-up cache."""

    __slots__ = ("_entries",)

    def __init__(self) -> None:
        self._entries: dict[int, dict[int, frozenset[int]]] = {}

    def largest_subset(
        self, mask: int
    ) -> tuple[int, dict[int, frozenset[int]] | None]:
        best_key = 0
        best: dict[int, frozenset[int]] | None = None
        for key, entry in self._entries.items():
            if key and key | mask == mask:
                if best is None or key.bit_count() > best_key.bit_count():
                    best_key, best = key, entry
        return best_key, best

    def store(self, mask: int, entry: dict[int, frozenset[int]]) -> None:
        self._entries[mask] = entry


class ScalarInsertsHandler:
    """The pre-vectorization inserts handler (Algorithms 1, 2, 5)."""

    def __init__(
        self,
        relation: Relation,
        repository: ProfileRepository,
        index_pool: ScalarIndexPool,
        sparse_index: SparseIndex,
    ) -> None:
        self._relation = relation
        self._repository = repository
        self._indexes = index_pool
        self._sparse = sparse_index

    def _retrieve_ids(
        self,
        muc_mask: int,
        new_rows: Mapping[int, Row],
        cache: _ScalarLookupCache,
        stats: InsertStats,
    ) -> dict[int, frozenset[int]]:
        covering = [
            column for column in columns_of(muc_mask) if column in self._indexes
        ]
        if not covering:
            return self._fallback_scan(muc_mask, new_rows, stats)

        applied, current = cache.largest_subset(
            sum(1 << column for column in covering)
        )
        if current is not None:
            stats.cache_hits += 1
            if not current:
                return {}
        remaining = [column for column in covering if not applied >> column & 1]
        for column in remaining:
            index = self._indexes.get(column)
            stats.index_lookups += 1
            if current is None:
                by_value: dict[Hashable, list[int]] = {}
                for new_id, row in new_rows.items():
                    by_value.setdefault(row[column], []).append(new_id)
                fresh: dict[int, frozenset[int]] = {}
                for value, new_ids in by_value.items():
                    posting = index.lookup(value)
                    if posting:
                        for new_id in new_ids:
                            fresh[new_id] = posting
                current = fresh
            else:
                narrowed: dict[int, frozenset[int]] = {}
                for new_id, candidates in current.items():
                    posting = index.lookup(new_rows[new_id][column])
                    surviving = candidates & posting
                    if surviving:
                        narrowed[new_id] = surviving
                current = narrowed
            applied |= 1 << column
            cache.store(applied, current)
            if not current:
                return {}
        return current

    def _fallback_scan(
        self,
        muc_mask: int,
        new_rows: Mapping[int, Row],
        stats: InsertStats,
    ) -> dict[int, frozenset[int]]:
        stats.fallback_scans += 1
        indices = columns_of(muc_mask)
        wanted: dict[Row, list[int]] = {}
        for new_id, row in new_rows.items():
            key = tuple(row[index] for index in indices)
            wanted.setdefault(key, []).append(new_id)
        result: dict[int, set[int]] = {}
        for tuple_id in self._relation.iter_ids():
            key = self._relation.project(tuple_id, muc_mask)
            for new_id in wanted.get(key, ()):
                result.setdefault(new_id, set()).add(tuple_id)
        return {new_id: frozenset(ids) for new_id, ids in result.items()}

    def handle(self, new_rows: Mapping[int, Row]) -> InsertOutcome:
        stats = InsertStats(batch_size=len(new_rows))
        old_mucs = self._repository.mucs
        old_mnucs = self._repository.mnucs
        if not new_rows:
            return InsertOutcome(list(old_mucs), list(old_mnucs), stats)

        batch_agrees: MaximalAntichain | None = None
        if len(new_rows) ** 2 < max(4096, len(old_mucs) * len(new_rows)):
            batch_agrees = batch_agree_antichain(
                list(new_rows.values()), self._relation.n_columns
            )

        cache = _ScalarLookupCache()
        relevant_lookups: dict[int, dict[int, frozenset[int]]] = {}
        all_candidates: set[int] = set()
        for muc_mask in old_mucs:
            lookups = self._retrieve_ids(muc_mask, new_rows, cache, stats)
            relevant_lookups[muc_mask] = lookups
            for candidates in lookups.values():
                all_candidates |= candidates
        stats.candidate_ids = len(all_candidates)

        old_rows, retrieval = self._sparse.retrieve_tuples(all_candidates)
        stats.retrieval = retrieval
        stats.tuples_retrieved = len(old_rows)

        manager = ScalarDuplicateManager(old_rows, new_rows)
        n_columns = self._relation.n_columns
        new_muc_candidates: list[int] = []
        new_non_uniques: list[int] = list(old_mnucs)
        for muc_mask in old_mucs:
            candidate_ids: set[int] = set()
            for candidates in relevant_lookups[muc_mask].values():
                candidate_ids |= candidates
            if (
                not candidate_ids
                and batch_agrees is not None
                and not batch_agrees.contains_superset_of(muc_mask)
            ):
                new_muc_candidates.append(muc_mask)
                continue
            groups = manager.groups_for(muc_mask, candidate_ids)
            if not groups:
                new_muc_candidates.append(muc_mask)
                continue
            stats.broken_mucs += 1
            stats.duplicate_groups += len(groups)
            muc_agree_sets: set[int] = set()
            for group in groups:
                muc_agree_sets |= group.agree_sets()
            new_non_uniques.extend(muc_agree_sets)
            new_muc_candidates.extend(
                minimal_unique_supersets(muc_mask, muc_agree_sets, n_columns)
            )

        return InsertOutcome(
            mucs=minimize(new_muc_candidates),
            mnucs=maximize(new_non_uniques),
            stats=stats,
        )


class ScalarDeletesHandler:
    """The pre-vectorization deletes handler (Algorithm 6).

    Pointer-PLI intersections probed one tuple at a time, Python set
    arithmetic for the Section IV-B short-circuits, and the same
    duality fixpoint structure as
    :class:`repro.core.deletes.DeletesHandler` -- checks run in
    ``old_mnucs`` order and the descent classifies lattice points with
    exact partition checks, so per-batch profiles are directly
    comparable with the vectorized handler on any execution mode.
    """

    def __init__(
        self,
        relation: Relation,
        repository: ProfileRepository,
        column_plis: dict[int, PositionListIndex],
    ) -> None:
        self._relation = relation
        self._repository = repository
        self._plis = column_plis

    def _is_still_non_unique(
        self,
        mask: int,
        deleted: set[int],
        post_has_duplicates: Callable[[int], bool],
    ) -> bool:
        columns = list(iter_bits(mask))
        if not columns:
            return post_has_duplicates(0)
        # (1) Unaffected: a deleted tuple can only affect N when it is
        # clustered in every column of N pre-delete.
        affecting = [
            tuple_id
            for tuple_id in sorted(deleted)
            if all(
                self._plis[column].cluster_of(tuple_id) is not None
                for column in columns
            )
        ]
        if not affecting:
            return True
        # (2) Restricted intersection over position lists that contained
        # affecting tuples.
        columns.sort(key=lambda column: self._plis[column].n_entries())
        restricted = PositionListIndex.from_clusters(
            self._plis[columns[0]].clusters_containing(affecting)
        )
        for column in columns[1:]:
            if not restricted.has_duplicates:
                break
            restricted = restricted.intersect(self._plis[column])
        if not restricted.has_duplicates:
            return True
        # (3) Survivors: a restricted cluster keeping >= 2 live members
        # is a duplicate pair the batch did not destroy.
        survivors = restricted.copy()
        survivors.remove_ids(deleted)
        if survivors.has_duplicates:
            return True
        # (4) Complete post-delete partition of N.
        return post_has_duplicates(mask)

    def handle(
        self, deleted_rows: Mapping[int, Row]
    ) -> tuple[list[int], list[int]]:
        """The (mucs, mnucs) profile of (relation \\ deleted rows)."""
        old_mucs = self._repository.mucs
        old_mnucs = self._repository.mnucs
        if not deleted_rows:
            return list(old_mucs), list(old_mnucs)
        deleted = set(deleted_rows)
        live_count = sum(
            1 for tuple_id in self._relation.iter_ids() if tuple_id not in deleted
        )
        post_plis: dict[int, PositionListIndex] = {}

        def post_has_duplicates(mask: int) -> bool:
            if not mask:
                return live_count >= 2
            pli = post_plis.get(mask)
            if pli is None:
                pli = pli_for_combination(self._relation, mask, self._plis)
                pli.remove_ids(deleted)
                post_plis[mask] = pli
            return pli.has_duplicates

        graph = CombinationGraph()
        for muc_mask in old_mucs:
            graph.add_unique(muc_mask)

        classification: dict[int, bool] = {}

        def classify(mask: int) -> bool:
            known = classification.get(mask)
            if known is not None:
                return known
            implied = graph.classify(mask)
            if implied is None:
                implied = not post_has_duplicates(mask)
                if implied:
                    graph.add_unique(mask)
                else:
                    graph.add_non_unique(mask)
            classification[mask] = implied
            return implied

        for mnuc_mask in old_mnucs:
            if self._is_still_non_unique(mnuc_mask, deleted, post_has_duplicates):
                graph.add_non_unique(mnuc_mask)
                classification[mnuc_mask] = False
            else:
                graph.add_unique(mnuc_mask)
                classification[mnuc_mask] = True

        n_columns = self._relation.n_columns
        universe = (1 << n_columns) - 1

        def ascend_to_maximal(mask: int) -> None:
            current = mask
            climbing = True
            while climbing:
                climbing = False
                for column in iter_bits(universe & ~current):
                    candidate = current | (1 << column)
                    if not classify(candidate):
                        current = candidate
                        climbing = True
                        break

        while True:
            border = graph.maximal_non_uniques()
            candidates = mucs_from_mnucs(border, n_columns)
            holes = [
                candidate for candidate in candidates if not classify(candidate)
            ]
            if not holes:
                return candidates, border
            for hole in holes:
                ascend_to_maximal(hole)


class ReferenceInsertRunner:
    """Drives insert batches through the scalar pipeline end to end.

    Mirrors :meth:`SwanProfiler.handle_inserts` -- analyse first, then
    commit storage and indexes -- so per-batch profiles are directly
    comparable with the vectorized facade on the same workload.
    """

    def __init__(
        self,
        relation: Relation,
        mucs: Iterable[int],
        mnucs: Iterable[int],
        index_columns: Sequence[int],
    ) -> None:
        self._relation = relation
        self._repository = ProfileRepository(mucs, mnucs)
        self._indexes = ScalarIndexPool.build(relation, index_columns)
        self._sparse = sparse_index_for_relation(relation)
        self._handler = ScalarInsertsHandler(
            relation, self._repository, self._indexes, self._sparse
        )
        self.last_stats: InsertStats | None = None

    def snapshot(self) -> Profile:
        return self._repository.snapshot()

    def handle_inserts(self, rows: Sequence[Sequence[Hashable]]) -> Profile:
        first_id = self._relation.next_tuple_id
        new_rows = {
            first_id + offset: tuple(row) for offset, row in enumerate(rows)
        }
        outcome = self._handler.handle(new_rows)
        self.last_stats = outcome.stats
        inserted_ids = self._relation.insert_many(rows)
        self._indexes.register_inserts(self._relation, inserted_ids)
        for tuple_id in inserted_ids:
            self._sparse.register(tuple_id, tuple_id)
        self._repository.replace(outcome.mucs, outcome.mnucs)
        return self._repository.snapshot()


class ReferenceDynamicRunner(ReferenceInsertRunner):
    """Drives mixed insert/delete workloads through the scalar pipeline.

    Extends :class:`ReferenceInsertRunner` with value-tracking pointer
    PLIs (one per column, maintained incrementally like the facade's)
    and the scalar deletes handler. Mirrors the facade's commit order
    -- analyse against pre-batch state, then apply to storage and
    indexes -- so per-batch profiles are directly comparable with
    :class:`~repro.core.swan.SwanProfiler` running any combination of
    parallelism and execution mode.
    """

    def __init__(
        self,
        relation: Relation,
        mucs: Iterable[int],
        mnucs: Iterable[int],
        index_columns: Sequence[int],
    ) -> None:
        super().__init__(relation, mucs, mnucs, index_columns)
        self._plis = {
            column: PositionListIndex.for_column(relation, column)
            for column in range(relation.n_columns)
        }
        self._deletes = ScalarDeletesHandler(relation, self._repository, self._plis)

    def handle_inserts(self, rows: Sequence[Sequence[Hashable]]) -> Profile:
        first_id = self._relation.next_tuple_id
        profile = super().handle_inserts(rows)
        for tuple_id in range(first_id, self._relation.next_tuple_id):
            for column, pli in self._plis.items():
                pli.add(self._relation.value(tuple_id, column), tuple_id)
        return profile

    def handle_deletes(self, tuple_ids: Iterable[int]) -> Profile:
        rows_by_id = {
            tuple_id: self._relation.row(tuple_id) for tuple_id in tuple_ids
        }
        mucs, mnucs = self._deletes.handle(rows_by_id)
        self._relation.delete_many(rows_by_id)
        self._indexes.register_deletes(rows_by_id)
        for tuple_id, row in rows_by_id.items():
            for column, pli in self._plis.items():
                pli.remove(row[column], tuple_id)
        self._repository.replace(mucs, mnucs)
        return self._repository.snapshot()
