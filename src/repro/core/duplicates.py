"""Duplicate manager: grouping candidate tuples per minimal unique.

Algorithm 1 (line 7) hands the retrieved old tuples plus the inserted
tuples to a *duplicate manager* that partitions them into duplicate
groups per minimal unique: tuples sharing the same value combination on
that minimal unique. Tuples fetched because they matched an insert only
on the *indexed subset* of the minimal unique ("partial duplicates")
fall out here, because grouping keys on the full projection (Alg. 5,
``removePartialDuplicates``).

Grouping is vectorized: each participating column is dictionary-encoded
once per batch (a code array over fetched + inserted rows, cached
across the per-MUC calls), and one ``groups_for`` call lexsorts the
projected code matrix and cuts it at key changes -- no Python-tuple
hashing on the per-MUC hot path. The result is exactly the reference
grouping: only groups of >= 2 members survive, and a group must
contain at least one *inserted* tuple (old tuples only ever join a
group an insert opened, as in the hash-bucket formulation).

Each surviving group witnesses that its minimal unique broke. The
group's *duplicate pairs* and their agree sets feed the exact
new-uniques computation (DESIGN.md section 2).
"""

from __future__ import annotations

from operator import itemgetter
from typing import Callable, Hashable, Iterable, Mapping, Sequence

import numpy as np

from repro.lattice.combination import columns_of
from repro.profiling.verify import agree_set
from repro.storage.encoding import encode_rows_local

Row = tuple[Hashable, ...]

_NO_SLOTS = np.empty(0, dtype=np.int64)
_NO_SLOTS.flags.writeable = False


def projector(indices: tuple[int, ...]) -> Callable[[Sequence], tuple]:
    """A C-speed projection ``row -> tuple of row[i] for i in indices``.

    ``operator.itemgetter`` returns a bare value for a single index, so
    the arity-1 case is wrapped to keep tuple keys uniform.
    """
    if not indices:
        return lambda row: ()
    if len(indices) == 1:
        getter = itemgetter(indices[0])
        return lambda row: (getter(row),)
    return itemgetter(*indices)


class DuplicateGroup:
    """Tuples (old and inserted) sharing one projection on one MUC."""

    __slots__ = ("key", "members")

    def __init__(self, key: Row, members: list[tuple[int, Row]]) -> None:
        self.key = key
        self.members = members

    def __len__(self) -> int:
        return len(self.members)

    def agree_sets(self) -> set[int]:
        """Agree sets of every tuple pair in the group.

        Deduplicated: identical rows collapse to one representative with
        a remembered multiplicity, so a group of k copies of the same
        tuple costs O(k) rather than O(k^2).
        """
        distinct: dict[Row, int] = {}
        for _, row in self.members:
            distinct[row] = distinct.get(row, 0) + 1
        rows = list(distinct)
        result: set[int] = set()
        full = (1 << len(rows[0])) - 1 if rows else 0
        if any(count >= 2 for count in distinct.values()):
            result.add(full)
        for left_index, left in enumerate(rows):
            for right in rows[left_index + 1 :]:
                result.add(agree_set(left, right))
        return result

    def __repr__(self) -> str:
        return f"DuplicateGroup(key={self.key!r}, size={len(self.members)})"


class DuplicateManager:
    """Groups retrieved and inserted tuples by minimal-unique projection."""

    __slots__ = ("_old_rows", "_new_rows", "_ids", "_rows", "_n_old",
                 "_old_slot", "_codes", "_relation", "_old_ids_sorted",
                 "_new_slots", "_slot_cache", "_gather_cache",
                 "_insert_sorted")

    def __init__(
        self,
        old_rows: Mapping[int, Row],
        new_rows: Mapping[int, Row],
        relation=None,
    ) -> None:
        self._old_rows = dict(old_rows)
        self._new_rows = dict(new_rows)
        # One flat row table: fetched old tuples first, then the batch.
        self._ids: list[int] = list(self._old_rows) + list(self._new_rows)
        self._rows: list[Row] = list(self._old_rows.values()) + list(
            self._new_rows.values()
        )
        self._n_old = len(self._old_rows)
        self._new_slots = np.arange(
            self._n_old, len(self._rows), dtype=np.int64
        )
        # Retrieval returns old rows in ascending-ID order, so slot
        # mapping is a binary search; the dict covers callers that
        # constructed the manager from an unsorted mapping.
        old_ids = np.fromiter(
            self._old_rows, dtype=np.int64, count=self._n_old
        )
        if self._n_old > 1 and not bool(np.all(old_ids[1:] > old_ids[:-1])):
            self._old_ids_sorted = None
            self._old_slot: dict[int, int] | None = {
                tuple_id: slot for slot, tuple_id in enumerate(self._old_rows)
            }
        else:
            self._old_ids_sorted = old_ids
            self._old_slot = None
        # ``relation`` (when given) must be the store the old IDs refer
        # to: its code arrays then provide the old rows' codes directly
        # instead of re-encoding the fetched values row by row.
        self._relation = relation
        self._codes: dict[int, np.ndarray] = {}
        # Per-batch memoization. Minimal uniques sharing a covering
        # column set are handed the *same* candidate array by the
        # inserts handler, so slot mapping and per-column code gathers
        # are keyed by array identity (the source array is pinned in
        # the value to keep ids stable).
        self._slot_cache: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        self._gather_cache: dict[
            tuple[int, int], tuple[np.ndarray, np.ndarray]
        ] = {}
        self._insert_sorted: dict[int, np.ndarray] = {}

    @property
    def retrieved_count(self) -> int:
        """Number of old tuples fetched from the initial dataset."""
        return len(self._old_rows)

    def _column_codes(self, column: int) -> np.ndarray:
        """Batch-local dictionary codes of one column, cached per column.

        With a backing relation, old-row codes are gathered from its
        code arrays and only the inserted rows are interned (values the
        relation has never seen get fresh codes above its dictionary);
        otherwise every row is encoded locally. Either scheme yields
        code equality iff value equality, which is all grouping needs.
        """
        codes = self._codes.get(column)
        if codes is None:
            if self._relation is None:
                codes = encode_rows_local(self._rows, column)
            else:
                encoding = self._relation.encoding.column(column)
                old_codes = (
                    self._relation.codes_for_ids(
                        column,
                        np.fromiter(
                            self._old_rows, dtype=np.int64, count=self._n_old
                        ),
                    )
                    if self._n_old
                    else np.empty(0, dtype=np.int64)
                )
                fresh: dict[Hashable, int] = {}
                next_code = encoding.n_codes
                new_codes = np.empty(len(self._new_rows), dtype=np.int64)
                for slot, row in enumerate(self._new_rows.values()):
                    value = row[column]
                    code = encoding.code_of(value)
                    if code is None:
                        code = fresh.get(value)
                        if code is None:
                            code = next_code
                            next_code += 1
                            fresh[value] = code
                    new_codes[slot] = code
                codes = np.concatenate([old_codes, new_codes])
            self._codes[column] = codes
        return codes

    def _candidate_slots(self, cand: np.ndarray) -> np.ndarray:
        """Map candidate tuple IDs to flat-table slots (unknown IDs drop)."""
        cached = self._slot_cache.get(id(cand))
        if cached is not None:
            return cached[1]
        if self._old_ids_sorted is not None:
            positions = np.searchsorted(self._old_ids_sorted, cand)
            positions[positions >= self._n_old] = 0
            found = self._old_ids_sorted[positions] == cand
            slots = np.unique(positions[found])
        else:
            get = self._old_slot.get
            found_slots = {
                slot
                for slot in (get(int(t)) for t in cand.tolist())
                if slot is not None
            }
            slots = np.fromiter(
                sorted(found_slots), dtype=np.int64, count=len(found_slots)
            )
        self._slot_cache[id(cand)] = (cand, slots)
        return slots

    def _candidate_codes(self, slots: np.ndarray, column: int) -> np.ndarray:
        """One column's codes over candidate slots, cached per array."""
        key = (id(slots), column)
        cached = self._gather_cache.get(key)
        if cached is not None:
            return cached[1]
        codes = self._column_codes(column)[slots]
        self._gather_cache[key] = (slots, codes)
        return codes

    def _insert_codes_sorted(self, column: int) -> np.ndarray:
        """Sorted distinct codes the inserted rows carry on one column."""
        targets = self._insert_sorted.get(column)
        if targets is None:
            targets = np.unique(self._column_codes(column)[self._n_old :])
            self._insert_sorted[column] = targets
        return targets

    def groups_for(
        self,
        muc_mask: int,
        candidate_old_ids: Iterable[int],
    ) -> list[DuplicateGroup]:
        """Duplicate groups of one minimal unique.

        ``candidate_old_ids`` are the IDs Algorithm 2 retrieved for this
        minimal unique (duplicates are tolerated; unknown IDs are
        ignored). A group is kept when it has >= 2 members and contains
        an inserted tuple; since the minimal unique held on the old
        data, every group contains at most one old tuple, and any kept
        group is a genuine new violation.
        """
        cand = np.asarray(
            candidate_old_ids
            if isinstance(candidate_old_ids, np.ndarray)
            else list(candidate_old_ids),
            dtype=np.int64,
        )
        indices = columns_of(muc_mask)
        if cand.size and self._n_old:
            cand_slots = self._candidate_slots(cand)
        else:
            cand_slots = _NO_SLOTS
        if indices and cand_slots.size:
            # Prefilter: an old tuple can only join a kept group (key =
            # full projection, >= 1 inserted member) if on *every* MUC
            # column its code equals some insert's code. Necessary, not
            # sufficient -- grouping below still keys on the full
            # projection -- so the surviving set yields exactly the
            # same groups while the lexsort shrinks from the candidate
            # union to the handful of near-duplicates.
            surviving: np.ndarray | None = None
            for column in indices:
                codes = self._candidate_codes(cand_slots, column)
                targets = self._insert_codes_sorted(column)
                if not targets.size:
                    surviving = np.zeros(cand_slots.size, dtype=bool)
                    break
                positions = np.searchsorted(targets, codes)
                positions[positions >= targets.size] = 0
                hit = targets[positions] == codes
                surviving = hit if surviving is None else surviving & hit
            cand_slots = cand_slots[surviving]
        if cand_slots.size:
            chosen = np.concatenate([self._new_slots, cand_slots])
        else:
            chosen = self._new_slots
        if chosen.size < 2:
            return []
        if indices:
            keys = [self._column_codes(column)[chosen] for column in indices]
            order = np.lexsort(keys[::-1])
            ordered_slots = chosen[order]
            changed = np.zeros(chosen.size, dtype=bool)
            changed[0] = True
            for key in keys:
                ordered = key[order]
                changed[1:] |= ordered[1:] != ordered[:-1]
            starts = np.flatnonzero(changed)
            stops = np.r_[starts[1:], chosen.size]
        else:  # the empty projection: every selected tuple agrees
            ordered_slots = chosen
            starts = np.asarray([0])
            stops = np.asarray([chosen.size])
        # Vectorized group filter: size >= 2 and >= 1 inserted member
        # (old tuples only group around an insert). Only the few
        # surviving segments are materialized in Python.
        new_counts = np.cumsum(ordered_slots >= self._n_old)
        segment_news = new_counts[stops - 1] - np.where(
            starts > 0, new_counts[starts - 1], 0
        )
        keep = np.flatnonzero((stops - starts >= 2) & (segment_news > 0))
        project = projector(indices)
        ids = self._ids
        rows = self._rows
        groups: list[DuplicateGroup] = []
        for segment in keep.tolist():
            member_slots = ordered_slots[starts[segment] : stops[segment]]
            members = [
                (ids[slot], rows[slot]) for slot in member_slots.tolist()
            ]
            groups.append(DuplicateGroup(project(members[0][1]), members))
        return groups


def batch_rows(rows: Sequence[Sequence[Hashable]], first_id: int) -> dict[int, Row]:
    """Assign consecutive IDs starting at ``first_id`` to a batch."""
    return {
        first_id + offset: tuple(row) for offset, row in enumerate(rows)
    }
