"""Duplicate manager: grouping candidate tuples per minimal unique.

Algorithm 1 (line 7) hands the retrieved old tuples plus the inserted
tuples to a *duplicate manager* that partitions them into duplicate
groups per minimal unique: tuples sharing the same value combination on
that minimal unique. Tuples fetched because they matched an insert only
on the *indexed subset* of the minimal unique ("partial duplicates")
fall out here, because grouping keys on the full projection (Alg. 5,
``removePartialDuplicates``).

Each surviving group witnesses that its minimal unique broke. The
group's *duplicate pairs* and their agree sets feed the exact
new-uniques computation (DESIGN.md section 2).
"""

from __future__ import annotations

from operator import itemgetter
from typing import Callable, Hashable, Iterable, Mapping, Sequence

from repro.lattice.combination import columns_of
from repro.profiling.verify import agree_set

Row = tuple[Hashable, ...]


def projector(indices: tuple[int, ...]) -> Callable[[Sequence], tuple]:
    """A C-speed projection ``row -> tuple of row[i] for i in indices``.

    ``operator.itemgetter`` returns a bare value for a single index, so
    the arity-1 case is wrapped to keep tuple keys uniform.
    """
    if not indices:
        return lambda row: ()
    if len(indices) == 1:
        getter = itemgetter(indices[0])
        return lambda row: (getter(row),)
    return itemgetter(*indices)


class DuplicateGroup:
    """Tuples (old and inserted) sharing one projection on one MUC."""

    __slots__ = ("key", "members")

    def __init__(self, key: Row, members: list[tuple[int, Row]]) -> None:
        self.key = key
        self.members = members

    def __len__(self) -> int:
        return len(self.members)

    def agree_sets(self) -> set[int]:
        """Agree sets of every tuple pair in the group.

        Deduplicated: identical rows collapse to one representative with
        a remembered multiplicity, so a group of k copies of the same
        tuple costs O(k) rather than O(k^2).
        """
        distinct: dict[Row, int] = {}
        for _, row in self.members:
            distinct[row] = distinct.get(row, 0) + 1
        rows = list(distinct)
        result: set[int] = set()
        full = (1 << len(rows[0])) - 1 if rows else 0
        if any(count >= 2 for count in distinct.values()):
            result.add(full)
        for left_index, left in enumerate(rows):
            for right in rows[left_index + 1 :]:
                result.add(agree_set(left, right))
        return result

    def __repr__(self) -> str:
        return f"DuplicateGroup(key={self.key!r}, size={len(self.members)})"


class DuplicateManager:
    """Groups retrieved and inserted tuples by minimal-unique projection."""

    __slots__ = ("_old_rows", "_new_rows")

    def __init__(
        self,
        old_rows: Mapping[int, Row],
        new_rows: Mapping[int, Row],
    ) -> None:
        self._old_rows = dict(old_rows)
        self._new_rows = dict(new_rows)

    @property
    def retrieved_count(self) -> int:
        """Number of old tuples fetched from the initial dataset."""
        return len(self._old_rows)

    def groups_for(
        self,
        muc_mask: int,
        candidate_old_ids: Iterable[int],
    ) -> list[DuplicateGroup]:
        """Duplicate groups of one minimal unique.

        ``candidate_old_ids`` are the IDs Algorithm 2 retrieved for this
        minimal unique. A group is kept when it has >= 2 members; since
        the minimal unique held on the old data, every group contains at
        most one old tuple, and any group of size >= 2 contains at least
        one insert -- i.e. every kept group is a genuine new violation.
        """
        project = projector(columns_of(muc_mask))
        buckets: dict[Row, list[tuple[int, Row]]] = {}
        for tuple_id, row in self._new_rows.items():
            buckets.setdefault(project(row), []).append((tuple_id, row))
        old_rows = self._old_rows
        buckets_get = buckets.get
        for tuple_id in candidate_old_ids:
            row = old_rows.get(tuple_id)
            if row is None:  # pragma: no cover - defensive
                continue
            bucket = buckets_get(project(row))
            if bucket is not None:
                bucket.append((tuple_id, row))
        return [
            DuplicateGroup(key, members)
            for key, members in buckets.items()
            if len(members) >= 2
        ]


def batch_rows(rows: Sequence[Sequence[Hashable]], first_id: int) -> dict[int, Row]:
    """Assign consecutive IDs starting at ``first_id`` to a batch."""
    return {
        first_id + offset: tuple(row) for offset, row in enumerate(rows)
    }
