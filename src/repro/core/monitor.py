"""Data-quality monitoring on top of the incremental profiler.

The paper's motivating use case (Section I): organizations watch the
keys of critical datasets and want to learn *immediately* when a batch
of changes silently breaks one, without re-profiling. This module packs
that pattern into a small API::

    monitor = UniqueConstraintMonitor(profiler)
    monitor.watch(["voter_reg_num"], label="registration number")
    events = monitor.apply_inserts(batch)
    for event in events:
        if event.kind is EventKind.KEY_BROKEN:
            page_someone(event)

Events are emitted on every transition of a watched combination
(broken / restored) and whenever the global profile changes shape
(new minimal uniques appearing or vanishing).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Hashable, Iterable, Sequence

from repro.core.repository import Profile
from repro.core.swan import SwanProfiler


class EventKind(enum.Enum):
    """What a monitoring event reports."""

    KEY_BROKEN = "key_broken"
    KEY_RESTORED = "key_restored"
    PROFILE_CHANGED = "profile_changed"


@dataclass(frozen=True)
class MonitorEvent:
    """One observation produced while applying a batch."""

    kind: EventKind
    batch_number: int
    label: str
    detail: str = ""

    def __str__(self) -> str:
        text = f"[batch {self.batch_number}] {self.kind.value}: {self.label}"
        if self.detail:
            text += f" ({self.detail})"
        return text


@dataclass
class _WatchedKey:
    label: str
    columns: tuple[str, ...]
    mask: int
    holds: bool


@dataclass
class UniqueConstraintMonitor:
    """Watches column combinations across insert/delete batches."""

    profiler: SwanProfiler
    history: list[MonitorEvent] = field(default_factory=list)
    _watched: list[_WatchedKey] = field(default_factory=list)
    _batch_number: int = 0

    def watch(self, columns: Sequence[str | int], label: str | None = None) -> None:
        """Start watching a column combination for uniqueness."""
        schema = self.profiler.relation.schema
        mask = schema.mask(columns)
        resolved = schema.combination(mask).names
        self._watched.append(
            _WatchedKey(
                label=label or "{" + ", ".join(resolved) + "}",
                columns=resolved,
                mask=mask,
                holds=self.profiler.is_unique(resolved),
            )
        )

    def watched_labels(self) -> list[str]:
        return [key.label for key in self._watched]

    def watched_columns(self) -> list[tuple[str, ...]]:
        """The resolved column-name tuples currently being watched."""
        return [key.columns for key in self._watched]

    def apply_inserts(self, rows: Sequence[Sequence[Hashable]]) -> list[MonitorEvent]:
        """Apply an insert batch and report transitions."""
        before = self.profiler.snapshot()
        self.profiler.handle_inserts(rows)
        return self._diff(before)

    def apply_deletes(self, tuple_ids: Iterable[int]) -> list[MonitorEvent]:
        """Apply a delete batch and report transitions."""
        before = self.profiler.snapshot()
        self.profiler.handle_deletes(tuple_ids)
        return self._diff(before)

    def _diff(self, before: Profile) -> list[MonitorEvent]:
        self._batch_number += 1
        after = self.profiler.snapshot()
        events: list[MonitorEvent] = []
        for key in self._watched:
            holds_now = self.profiler.is_unique(key.columns)
            if key.holds and not holds_now:
                detail = "duplicate value combination introduced"
                try:
                    degree = self.profiler.approximation_degree(key.columns)
                    detail = (
                        f"{degree} row{'s' if degree != 1 else ''} now "
                        "violate the key"
                    )
                except Exception:
                    pass  # insert-only profilers have no PLIs
                events.append(
                    MonitorEvent(
                        EventKind.KEY_BROKEN,
                        self._batch_number,
                        key.label,
                        detail=detail,
                    )
                )
            elif not key.holds and holds_now:
                events.append(
                    MonitorEvent(
                        EventKind.KEY_RESTORED,
                        self._batch_number,
                        key.label,
                        detail="duplicates removed",
                    )
                )
            key.holds = holds_now
        if before.mucs != after.mucs:
            from repro.profiling.diff import diff_profiles

            diff = diff_profiles(before, after)
            detail = (
                f"+{len(diff.gained_mucs)} / -{len(diff.lost_mucs)} "
                f"(now {len(after.mucs)})"
            )
            if diff.weakened:
                detail += f"; {len(diff.weakened)} weakened"
            if diff.strengthened:
                detail += f"; {len(diff.strengthened)} strengthened"
            events.append(
                MonitorEvent(
                    EventKind.PROFILE_CHANGED,
                    self._batch_number,
                    "minimal uniques",
                    detail=detail,
                )
            )
        self.history.extend(events)
        return events
