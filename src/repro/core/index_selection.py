"""Index selection: which columns SWAN indexes (Algorithms 3 and 4).

Indexing every column is too expensive and multi-column indexes die as
soon as a minimal unique is invalidated, so SWAN indexes a *small set of
single columns* such that every minimal unique is covered by at least
one index (Section III-C), then optionally spends a quota of additional
columns to shrink the candidate-tuple sets retrieved for the least
selective indexes (Section III-D).
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable, Sequence

from repro.lattice.combination import iter_bits, popcount
from repro.profiling.stats import ColumnStatistics, muc_column_frequencies


def select_index_attributes(
    mucs: Sequence[int],
    n_columns: int,
    tie_break: Sequence[int] | None = None,
) -> list[int]:
    """Algorithm 3: greedy minimum column cover of the minimal uniques.

    Repeatedly index the column occurring in the most still-uncovered
    minimal uniques, until every minimal unique contains at least one
    indexed column. ``tie_break`` optionally orders equally frequent
    columns (the facade passes descending cardinality, matching the
    paper's observation that frequency correlates with selectivity).

    Minimal uniques that are the empty combination cannot be covered and
    are ignored (they only occur on relations with < 2 rows).
    """
    remaining = [mask for mask in mucs if mask]
    rank = {column: position for position, column in enumerate(tie_break or [])}
    chosen: list[int] = []
    while remaining:
        frequencies = muc_column_frequencies(remaining, n_columns)
        best = max(
            range(n_columns),
            key=lambda column: (
                frequencies[column],
                -rank.get(column, column),
            ),
        )
        if frequencies[best] == 0:  # pragma: no cover - defensive
            break
        chosen.append(best)
        best_bit = 1 << best
        remaining = [mask for mask in remaining if not mask & best_bit]
    return chosen


def add_additional_index_attributes(
    mucs: Sequence[int],
    n_columns: int,
    initial: Sequence[int],
    quota: int,
    stats: ColumnStatistics,
) -> list[int]:
    """Algorithm 4: spend the remaining quota on extra index columns.

    For each already-indexed column C, compute the cheapest set of extra
    columns K_C that would cover, *without using C*, every minimal
    unique whose only indexed column is C (so look-ups on C can always
    be intersected with a second index). Then pick the feasible bundle
    of such covers -- total indexed columns staying within ``quota`` --
    whose covered columns have the lowest combined selectivity, since
    unselective indexes retrieve the most tuples and benefit most from
    intersection (Section III-D).

    Returns the full index column list (initial plus additions).
    """
    indexed = list(initial)
    if quota <= len(indexed):
        return indexed
    indexed_mask = 0
    for column in indexed:
        indexed_mask |= 1 << column

    covering: dict[int, list[int]] = {}
    for column in indexed:
        column_bit = 1 << column
        containing = [
            mask & ~column_bit
            for mask in mucs
            if mask & indexed_mask == column_bit and mask & ~column_bit
        ]
        if not containing:
            continue
        cover = select_index_attributes(containing, n_columns, stats.frequency_order())
        if len(set(indexed) | set(cover)) <= quota:
            covering[column] = cover

    solutions: list[tuple[tuple[int, ...], frozenset[int]]] = []
    keys = sorted(covering)
    for size in range(1, len(keys) + 1):
        for combo in combinations(keys, size):
            union: set[int] = set()
            for column in combo:
                union |= set(covering[column])
            if len(set(indexed) | union) <= quota:
                solutions.append((combo, frozenset(union)))
    if not solutions:
        return indexed

    # removeRedundantCombinations: a solution is redundant when another
    # covers a superset of its columns at no extra index cost.
    filtered: list[tuple[tuple[int, ...], frozenset[int]]] = []
    for combo, columns in solutions:
        dominated = any(
            set(combo) < set(other_combo) and other_columns <= columns
            for other_combo, other_columns in solutions
        )
        if not dominated:
            filtered.append((combo, columns))

    def combo_selectivity(combo: tuple[int, ...]) -> float:
        return stats.combined_selectivity(combo)

    best_combo, best_columns = min(
        filtered, key=lambda item: (combo_selectivity(item[0]), -len(item[0]))
    )
    del best_combo
    return indexed + sorted(best_columns - set(indexed))


def covering_indexes(mask: int, indexed_columns: Iterable[int]) -> list[int]:
    """Indexed columns that are members of ``mask`` (look-up order).

    Order matters for Algorithm 2's cache reuse: most selective first
    would shrink intermediate results fastest, but stable ascending
    order maximizes cache hits across minimal uniques sharing prefixes;
    we use ascending column order, matching the accumulated-CC caching.
    """
    return sorted(column for column in indexed_columns if mask >> column & 1)


def coverage_report(mucs: Sequence[int], indexed_columns: Iterable[int]) -> dict[str, float]:
    """Diagnostics: how well the chosen indexes cover the minimal uniques."""
    indexed_mask = 0
    for column in indexed_columns:
        indexed_mask |= 1 << column
    total = len(mucs)
    covered = sum(1 for mask in mucs if mask & indexed_mask)
    fully = sum(1 for mask in mucs if mask and mask & indexed_mask == mask)
    average_cover = (
        sum(popcount(mask & indexed_mask) for mask in mucs) / total if total else 0.0
    )
    return {
        "mucs": float(total),
        "covered": float(covered),
        "fully_covered": float(fully),
        "mean_indexed_columns_per_muc": average_cover,
        "indexed_columns": float(popcount(indexed_mask)),
    }


def columns_as_mask(columns: Iterable[int]) -> int:
    mask = 0
    for column in columns:
        mask |= 1 << column
    return mask


def uncovered_part(mask: int, indexed_columns: Iterable[int]) -> int:
    """The columns of ``mask`` no index covers (verified on the values)."""
    remainder = mask
    for column in indexed_columns:
        remainder &= ~(1 << column)
    return remainder


def iter_index_order(
    mask: int,
    indexed_columns: Iterable[int],
    stats: ColumnStatistics | None = None,
) -> list[int]:
    """Covering indexes ordered most-selective-first when stats exist."""
    columns = covering_indexes(mask, indexed_columns)
    if stats is None:
        return columns
    return sorted(columns, key=lambda column: -stats.selectivity(column))


def frequency_table(mucs: Sequence[int], n_columns: int) -> list[tuple[int, int]]:
    """(column, frequency) pairs, most frequent first -- for reporting."""
    frequencies = muc_column_frequencies(mucs, n_columns)
    order = sorted(range(n_columns), key=lambda column: (-frequencies[column], column))
    return [(column, frequencies[column]) for column in order if frequencies[column]]


def _all_single_columns(n_columns: int) -> list[int]:
    return list(range(n_columns))


def index_all_columns(n_columns: int) -> list[int]:
    """The 'Index All' strategy of the paper's index analysis (Fig. 4)."""
    return _all_single_columns(n_columns)
