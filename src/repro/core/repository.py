"""The profile repository: current MUCS and MNUCS of one relation.

SWAN's handlers read the current sets, compute the new ones, and commit
them back here. The repository enforces the structural invariants
(both sets are antichains; no combination is in both closures) and
offers schema-aware views for the public API.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.errors import InconsistentProfileError
from repro.lattice.antichain import MaximalAntichain, MinimalAntichain, sorted_masks
from repro.lattice.combination import ColumnCombination, is_subset
from repro.storage.schema import Schema


@dataclass(frozen=True)
class Profile:
    """An immutable (MUCS, MNUCS) snapshot, in canonical order."""

    mucs: tuple[int, ...]
    mnucs: tuple[int, ...]

    @classmethod
    def from_masks(cls, mucs: Iterable[int], mnucs: Iterable[int]) -> "Profile":
        return cls(tuple(sorted_masks(mucs)), tuple(sorted_masks(mnucs)))

    def named(self, schema: Schema) -> tuple[list[ColumnCombination], list[ColumnCombination]]:
        """Schema-resolved views of both sets."""
        return (
            [schema.combination(mask) for mask in self.mucs],
            [schema.combination(mask) for mask in self.mnucs],
        )

    def __str__(self) -> str:
        return f"Profile(|MUCS|={len(self.mucs)}, |MNUCS|={len(self.mnucs)})"


class ProfileRepository:
    """Mutable holder of the current profile with invariant checks."""

    __slots__ = ("_mucs", "_mnucs")

    def __init__(self, mucs: Iterable[int], mnucs: Iterable[int]) -> None:
        self._mucs = MinimalAntichain()
        self._mnucs = MaximalAntichain()
        self.replace(mucs, mnucs)

    def replace(self, mucs: Iterable[int], mnucs: Iterable[int]) -> None:
        """Install a new profile after validating its structure."""
        muc_list = list(mucs)
        mnuc_list = list(mnucs)
        new_mucs = MinimalAntichain()
        for mask in muc_list:
            new_mucs.add(mask)
        if len(new_mucs) != len(set(muc_list)):
            raise InconsistentProfileError("MUCS is not an antichain")
        new_mnucs = MaximalAntichain()
        for mask in mnuc_list:
            new_mnucs.add(mask)
        if len(new_mnucs) != len(set(mnuc_list)):
            raise InconsistentProfileError("MNUCS is not an antichain")
        for muc in new_mucs:
            for mnuc in new_mnucs:
                if is_subset(muc, mnuc):
                    raise InconsistentProfileError(
                        f"MUC {muc:#x} is contained in MNUC {mnuc:#x}"
                    )
        self._mucs = new_mucs
        self._mnucs = new_mnucs

    @property
    def mucs(self) -> list[int]:
        """Current minimal uniques, canonical order."""
        return sorted_masks(self._mucs)

    @property
    def mnucs(self) -> list[int]:
        """Current maximal non-uniques, canonical order."""
        return sorted_masks(self._mnucs)

    def snapshot(self) -> Profile:
        return Profile.from_masks(self._mucs, self._mnucs)

    def is_unique(self, mask: int) -> bool:
        """True iff ``mask`` contains a current minimal unique."""
        return self._mucs.contains_subset_of(mask)

    def is_non_unique(self, mask: int) -> bool:
        """True iff ``mask`` is contained in a current maximal non-unique.

        When the profile is complete (MUCS/MNUCS duals), this is the
        exact complement of :meth:`is_unique`.
        """
        return self._mnucs.contains_superset_of(mask)

    def __repr__(self) -> str:
        return f"ProfileRepository(|MUCS|={len(self._mucs)}, |MNUCS|={len(self._mnucs)})"
