"""The SWAN profiler facade.

:class:`SwanProfiler` owns a live relation together with every data
structure SWAN maintains (paper Section II-B):

* the profile repository (current MUCS and MNUCS),
* the value indexes on the selected cover columns (insert path),
* one position list index per column (delete path),
* the sparse index over the tuple store (candidate retrieval).

The initial profile comes from any holistic algorithm (GORDIAN, DUCC,
HCA, brute force); :meth:`SwanProfiler.profile` bootstraps everything in
one call. After that, :meth:`handle_inserts` / :meth:`handle_deletes`
keep the profile exact under arbitrary batches.

Usage::

    profiler = SwanProfiler.profile(relation)          # static bootstrap
    profiler.handle_inserts([("Payne", "245", "31")])  # batch of inserts
    profiler.handle_deletes([0])                       # batch of deletes
    profiler.minimal_uniques()                         # named combinations
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterable, Sequence

from repro.core.deletes import (
    DeleteOutcome,
    DeletesHandler,
    DeleteStats,
    capture_rows,
)
from repro.core.index_selection import (
    add_additional_index_attributes,
    select_index_attributes,
)
from repro.core.inserts import InsertOutcome, InsertsHandler, InsertStats
from repro.core.parallel import make_pool
from repro.core.repository import Profile, ProfileRepository
from repro.errors import ProfileStateError
from repro.lattice.combination import ColumnCombination
from repro.profiling.stats import ColumnStatistics, column_statistics
from repro.storage.pli import PositionListIndex
from repro.storage.plicache import DEFAULT_BUDGET_BYTES, PartitionCache
from repro.storage.relation import Relation
from repro.storage.sparse_index import SparseIndex, sparse_index_for_relation
from repro.storage.table_file import TableFile
from repro.storage.value_index import IndexPool, ValueIndex

Row = tuple[Hashable, ...]

DiscoveryAlgorithm = Callable[[Relation], tuple[list[int], list[int]]]


class SwanProfiler:
    """Incremental unique/non-unique discovery over one relation."""

    def __init__(
        self,
        relation: Relation,
        mucs: Iterable[int],
        mnucs: Iterable[int],
        index_quota: int | None = None,
        index_columns: Sequence[int] | None = None,
        sparse_index: SparseIndex | None = None,
        table_file: "TableFile | None" = None,
        maintain_plis: bool = True,
        parallelism: int = 0,
        execution_mode: str = "thread",
        cache_budget_bytes: int | None = DEFAULT_BUDGET_BYTES,
        partition_cache: PartitionCache | None = None,
    ) -> None:
        """Wire SWAN around an existing relation and profile.

        ``index_columns`` overrides index selection entirely (used by
        the Fig. 4 index-analysis variants); otherwise Algorithm 3 picks
        the minimal cover and, when ``index_quota`` is given, Algorithm
        4 spends the remaining quota on additional indexes.
        ``table_file`` plugs in a disk-resident tuple store: candidate
        tuples are fetched through its byte-offset sparse index and
        accepted insert batches are appended to it, mirroring the
        paper's on-disk initial dataset. ``maintain_plis=False`` skips
        building the per-column PLIs; the profiler then supports
        inserts only (insert-only deployments avoid the PLI build cost;
        Fig. 1/2 setups use this).

        ``parallelism`` sets the fan-out worker count for per-MUC
        candidate retrieval and per-MNUC short-circuit checks (0/1 =
        serial reference path; results are bit-identical either way);
        ``execution_mode`` picks the pool shape (``"thread"`` or
        ``"process"``; see :func:`repro.core.parallel.make_pool`).
        ``cache_budget_bytes`` bounds the cross-batch partition cache
        (``0`` disables it, ``None`` is unbounded); ``partition_cache``
        injects an existing cache instead.
        """
        self._relation = relation
        self._repository = ProfileRepository(mucs, mnucs)
        self._stats = column_statistics(relation)
        if index_columns is None:
            index_columns = self._select_indexes(index_quota)
        self._index_quota = index_quota
        self._index_pool = IndexPool.build(relation, index_columns)
        self._table_file = table_file
        if sparse_index is not None:
            self._sparse = sparse_index
        elif table_file is not None:
            self._sparse = table_file.sparse_index(shared=True)
        else:
            self._sparse = sparse_index_for_relation(relation)
        self._plis: dict[int, PositionListIndex] = {}
        if maintain_plis:
            self._plis = {
                column: PositionListIndex.for_column(relation, column)
                for column in range(relation.n_columns)
            }
        if partition_cache is not None:
            self._partition_cache: PartitionCache | None = partition_cache
        elif cache_budget_bytes == 0:
            self._partition_cache = None
        else:
            self._partition_cache = PartitionCache(cache_budget_bytes)
        self._pool = make_pool(execution_mode, parallelism)
        self._generation = 0
        self._inserts = InsertsHandler(
            relation, self._repository, self._index_pool, self._sparse,
            pool=self._pool,
        )
        self._deletes = (
            DeletesHandler(
                relation,
                self._repository,
                self._plis,
                cache=self._partition_cache,
                pool=self._pool,
            )
            if maintain_plis
            else None
        )
        self.last_insert_stats: InsertStats | None = None
        self.last_delete_stats: DeleteStats | None = None

    # ------------------------------------------------------------------
    # Bootstrap
    # ------------------------------------------------------------------
    @classmethod
    def profile(
        cls,
        relation: Relation,
        algorithm: DiscoveryAlgorithm | str = "ducc",
        index_quota: int | None = None,
        index_columns: Sequence[int] | None = None,
        maintain_plis: bool = True,
        parallelism: int = 0,
        execution_mode: str = "thread",
        cache_budget_bytes: int | None = DEFAULT_BUDGET_BYTES,
        shards: int = 1,
        shard_insert_only: bool = False,
    ) -> "SwanProfiler":
        """Run a holistic discovery over ``relation`` and wire SWAN up.

        ``algorithm`` may be a name understood by
        :func:`repro.profiling.discovery.discover` or any callable
        returning ``(mucs, mnucs)`` masks. ``shards > 1`` (or
        ``shard_insert_only=True``) partitions the relation across
        shard-local profilers behind a
        :class:`repro.shard.ShardedSwanProfiler` facade whose profile
        is bit-identical to the unsharded one.
        """
        if shards > 1 or shard_insert_only:
            from repro.shard import ShardedSwanProfiler

            return ShardedSwanProfiler.partition(
                relation,
                shards=max(1, shards),
                insert_only=shard_insert_only,
                algorithm=algorithm,
                index_quota=index_quota,
                parallelism=parallelism,
                execution_mode=execution_mode,
                cache_budget_bytes=cache_budget_bytes,
            )
        if callable(algorithm):
            mucs, mnucs = algorithm(relation)
        else:
            from repro.profiling.discovery import discover

            mucs, mnucs = discover(relation, algorithm)
        return cls(
            relation,
            mucs,
            mnucs,
            index_quota=index_quota,
            index_columns=index_columns,
            maintain_plis=maintain_plis,
            parallelism=parallelism,
            execution_mode=execution_mode,
            cache_budget_bytes=cache_budget_bytes,
        )

    @classmethod
    def build(
        cls,
        relation: Relation,
        mucs: Iterable[int],
        mnucs: Iterable[int],
        *,
        algorithm: DiscoveryAlgorithm | str = "ducc",
        index_quota: int | None = None,
        maintain_plis: bool = True,
        parallelism: int = 0,
        execution_mode: str = "thread",
        cache_budget_bytes: int | None = DEFAULT_BUDGET_BYTES,
        shards: int = 1,
        shard_insert_only: bool = False,
    ) -> "SwanProfiler":
        """Wire a (possibly sharded) profiler around a *known* profile.

        Recovery paths land here: the global ``(mucs, mnucs)`` come from
        a snapshot, so no global discovery runs. In sharded mode the
        per-shard profiles still have to be discovered (they are not
        persisted), which is what ``algorithm`` is for; the unsharded
        path ignores it.
        """
        if shards > 1 or shard_insert_only:
            from repro.shard import ShardedSwanProfiler

            return ShardedSwanProfiler.partition(
                relation,
                shards=max(1, shards),
                insert_only=shard_insert_only,
                algorithm=algorithm,
                global_profile=(list(mucs), list(mnucs)),
                index_quota=index_quota,
                parallelism=parallelism,
                execution_mode=execution_mode,
                cache_budget_bytes=cache_budget_bytes,
            )
        return cls(
            relation,
            mucs,
            mnucs,
            index_quota=index_quota,
            maintain_plis=maintain_plis,
            parallelism=parallelism,
            execution_mode=execution_mode,
            cache_budget_bytes=cache_budget_bytes,
        )

    def _select_indexes(self, quota: int | None) -> list[int]:
        mucs = self._repository.mucs
        minimal = select_index_attributes(
            mucs, self._relation.n_columns, self._stats.frequency_order()
        )
        if quota is None:
            return minimal
        return add_additional_index_attributes(
            mucs, self._relation.n_columns, minimal, quota, self._stats
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def relation(self) -> Relation:
        return self._relation

    @property
    def column_stats(self) -> ColumnStatistics:
        return self._stats

    @property
    def indexed_columns(self) -> frozenset[int]:
        """The columns currently holding a value index."""
        return self._index_pool.columns

    @property
    def generation(self) -> int:
        """Number of applied batches; keys the partition cache."""
        return self._generation

    def cache_stats(self) -> dict[str, int]:
        """Partition-cache counters (all zero when the cache is off)."""
        if self._partition_cache is None:
            return {}
        return self._partition_cache.stats_dict()

    def encoding_stats(self) -> dict[str, int]:
        """Dictionary-encoding sizes of the storage core."""
        return self._relation.encoding.stats_dict()

    def pool_stats(self) -> dict[str, object]:
        """Fan-out executor counters (includes the effective mode)."""
        return self._pool.stats_dict()

    def shard_stats(self) -> dict[str, object]:
        """Sharding gauges; empty on an unsharded profiler."""
        return {}

    def value_index(self, column: int) -> "ValueIndex":
        """The maintained value index on ``column``.

        The index is shared with the insert path -- callers read through
        its lookup API and never mutate it. Raises ``KeyError`` when the
        column is not part of the maintained cover.
        """
        return self._index_pool.get(column)

    def close(self) -> None:
        """Release the fan-out workers (idempotent)."""
        self._pool.close()

    def snapshot(self) -> Profile:
        """The current (MUCS, MNUCS) profile."""
        return self._repository.snapshot()

    def minimal_uniques(self) -> list[ColumnCombination]:
        """Current minimal uniques with resolved column names."""
        schema = self._relation.schema
        return [schema.combination(mask) for mask in self._repository.mucs]

    def maximal_non_uniques(self) -> list[ColumnCombination]:
        """Current maximal non-uniques with resolved column names."""
        schema = self._relation.schema
        return [schema.combination(mask) for mask in self._repository.mnucs]

    def is_unique(self, columns: Iterable[str | int]) -> bool:
        """Does the given column set currently hold unique values?"""
        return self._repository.is_unique(self._relation.schema.mask(columns))

    def approximation_degree(self, columns: Iterable[str | int]) -> int:
        """How many rows must be removed for ``columns`` to be unique.

        0 means the combination is unique right now; small positive
        values flag *near-keys* (usually dirty keys worth fixing).
        Requires the maintained PLIs (``maintain_plis=True``).
        """
        if not self._plis:
            raise ProfileStateError(
                "approximation_degree needs the per-column PLIs; this "
                "profiler was built with maintain_plis=False"
            )
        from repro.storage.pli import pli_for_combination

        mask = self._relation.schema.mask(columns)
        pli = pli_for_combination(
            self._relation,
            mask,
            self._plis,
            cache=self._partition_cache,
            generation=self._generation,
        )
        return pli.n_entries() - pli.n_clusters()

    # ------------------------------------------------------------------
    # Dynamic workloads
    # ------------------------------------------------------------------
    def preview_inserts(self, rows: Sequence[Sequence[Hashable]]) -> Profile:
        """The profile the relation *would* have after ``rows`` -- a
        dry run that commits nothing (the inserts handler never mutates
        storage, so this is exactly the analysis phase of
        :meth:`handle_inserts`)."""
        outcome = self.analyze_inserts(rows)
        return Profile.from_masks(outcome.mucs, outcome.mnucs)

    def preview_deletes(self, tuple_ids: Iterable[int]) -> Profile:
        """The profile after deleting ``tuple_ids`` -- a dry run."""
        _, outcome = self.analyze_deletes(tuple_ids)
        return Profile.from_masks(outcome.mucs, outcome.mnucs)

    # Split-phase batch application: ``analyze_*`` is strictly read-only
    # (both handlers only probe; the facade applies every mutation in
    # ``commit_*``), so analyses of *disjoint* profilers can run
    # concurrently -- the sharded facade fans per-shard analyses out to
    # worker threads or forked processes and then applies the commits
    # serially in shard order. ``handle_*`` is exactly analyze + commit.
    def analyze_inserts(self, rows: Sequence[Sequence[Hashable]]) -> "InsertOutcome":
        """Validate and analyse a batch of inserts without committing.

        The whole batch is validated up front: a malformed row rejects
        the batch before anything is analysed or stored, so a failed
        call never leaves the profiler half-updated.
        """
        from repro.errors import ArityError

        arity = self._relation.n_columns
        for position, row in enumerate(rows):
            if len(row) != arity:
                raise ArityError(
                    f"batch row {position} has {len(row)} values, "
                    f"schema has {arity} columns"
                )
        first_id = self._relation.next_tuple_id
        new_rows = {
            first_id + offset: tuple(row) for offset, row in enumerate(rows)
        }
        return self._inserts.handle(new_rows)

    def commit_inserts(
        self, rows: Sequence[Sequence[Hashable]], outcome: "InsertOutcome"
    ) -> Profile:
        """Apply a batch whose analysis already ran (single-writer)."""
        self.last_insert_stats = outcome.stats
        # Commit: storage first, then the derived structures, so index
        # probes during *this* call saw only old tuples (Section III-D:
        # inserts never require new indexes, only index maintenance).
        inserted_ids = self._relation.insert_many(rows)
        self._index_pool.register_inserts(self._relation, inserted_ids)
        for column, pli in self._plis.items():
            for tuple_id in inserted_ids:
                pli.add(self._relation.value(tuple_id, column), tuple_id)
        if self._table_file is not None:
            self._table_file.append_batch(
                (tuple_id, self._relation.row(tuple_id)) for tuple_id in inserted_ids
            )
        else:
            for tuple_id in inserted_ids:
                self._sparse.register(tuple_id, tuple_id)
        self._repository.replace(outcome.mucs, outcome.mnucs)
        # Inserts can merge clusters, so cached partitions from earlier
        # generations cannot be carried forward; bumping the generation
        # lazily invalidates them (the cache never serves a stale tag).
        self._generation += 1
        return self._repository.snapshot()

    def handle_inserts(self, rows: Sequence[Sequence[Hashable]]) -> Profile:
        """Apply a batch of inserts and return the updated profile."""
        return self.commit_inserts(rows, self.analyze_inserts(rows))

    def analyze_deletes(
        self, tuple_ids: Iterable[int]
    ) -> "tuple[dict[int, Row], DeleteOutcome]":
        """Capture and analyse a delete batch without committing."""
        if self._deletes is None:
            raise ProfileStateError(
                "this profiler was built with maintain_plis=False and "
                "supports inserts only"
            )
        deleted_rows = capture_rows(self._relation, tuple_ids)
        outcome = self._deletes.handle(deleted_rows, generation=self._generation)
        return deleted_rows, outcome

    def commit_deletes(
        self, deleted_rows: "dict[int, Row]", outcome: "DeleteOutcome"
    ) -> Profile:
        """Apply a delete batch whose analysis already ran."""
        self.last_delete_stats = outcome.stats
        for tuple_id, row in deleted_rows.items():
            self._relation.delete(tuple_id)
            for column, pli in self._plis.items():
                pli.remove(row[column], tuple_id)
        self._index_pool.register_deletes(deleted_rows, relation=self._relation)
        self._sparse.forget(deleted_rows)
        self._repository.replace(outcome.mucs, outcome.mnucs)
        # The descent's partitions describe the post-delete state, which
        # is exactly the relation at the *next* generation -- publish
        # them there so the following batch can reuse them.
        self._generation += 1
        if self._partition_cache is not None:
            self._partition_cache.put_many(
                outcome.post_partitions, self._generation
            )
        # Deletes can shrink minimal uniques below the indexed cover
        # (Section III-D: "our index selection approach should be
        # applied again"); extend the cover if a new MUC escaped it.
        self._ensure_index_cover()
        return self._repository.snapshot()

    def handle_deletes(self, tuple_ids: Iterable[int]) -> Profile:
        """Apply a batch of deletes and return the updated profile."""
        deleted_rows, outcome = self.analyze_deletes(tuple_ids)
        return self.commit_deletes(deleted_rows, outcome)

    def compact_storage(self) -> int:
        """Reclaim tombstoned storage in place; tuple IDs survive.

        Everything SWAN maintains is keyed by tuple ID or dictionary
        code -- value-index postings, per-column PLIs, sparse-index
        offsets, cached partitions -- and :meth:`Relation.compact_in_place`
        keeps both stable, so no derived structure needs rebuilding and
        the profile is untouched. Returns the number of tombstones
        reclaimed.
        """
        return self._relation.compact_in_place()

    def _ensure_index_cover(self) -> None:
        indexed = self._index_pool.columns
        uncovered = [
            mask
            for mask in self._repository.mucs
            if mask and not any(mask >> column & 1 for column in indexed)
        ]
        if not uncovered:
            return
        for column in select_index_attributes(
            uncovered, self._relation.n_columns, self._stats.frequency_order()
        ):
            self._index_pool.ensure(self._relation, column)

    def __repr__(self) -> str:
        profile = self._repository.snapshot()
        return (
            f"SwanProfiler(rows={len(self._relation)}, "
            f"|MUCS|={len(profile.mucs)}, |MNUCS|={len(profile.mnucs)}, "
            f"indexes={sorted(self._index_pool.columns)})"
        )
