"""The Inserts Handler: Algorithms 1, 2 and 5 of the paper.

Workflow for a batch of inserted tuples T (Alg. 1):

1. For every current minimal unique U, retrieve the IDs of old tuples
   that *might* duplicate an insert on U, by probing the value indexes
   covering U and intersecting per-insert candidate sets. Look-up
   results are cached by the accumulated column set so indexes shared
   between minimal uniques are probed once (Alg. 2).
2. Fetch the union of all candidate IDs in one pass through the sparse
   index (mixed random/sequential retrieval).
3. Group fetched and inserted tuples per minimal unique with the
   duplicate manager; groups keyed on the full projection drop the
   partial duplicates that under-covering indexes let through.
4. For each broken minimal unique, derive the new minimal uniques from
   the duplicate pairs' agree sets (the exact form of Alg. 5, DESIGN.md
   section 2), and fold the agree sets into the maximal non-uniques.

The handler is *read-only* with respect to the relation and indexes:
the :class:`~repro.core.swan.SwanProfiler` facade applies the batch to
the storage structures after the new profile is computed, so index
probes only ever see old tuples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Mapping

import numpy as np

from repro.core.duplicates import DuplicateManager
from repro.core.parallel import FanOutPool
from repro.core.repository import ProfileRepository
from repro.lattice.antichain import MaximalAntichain
from repro.lattice.combination import columns_of, maximize, minimize
from repro.lattice.transversal import minimal_unique_supersets
from repro.sanitize import make_lock, register_fork_owner
from repro.storage.encoding import encode_rows_local, union_sorted
from repro.storage.kernels import intersect_sorted
from repro.storage.relation import Relation
from repro.storage.sparse_index import RetrievalStats, SparseIndex
from repro.storage.value_index import IndexPool

Row = tuple[Hashable, ...]


def batch_agree_antichain(rows: list[Row], n_columns: int) -> MaximalAntichain:
    """Maximal agree sets among a batch of rows, computed vectorized.

    A minimal unique U has an intra-batch duplicate exactly when some
    pair of batch rows agrees on all of U, i.e. when U is contained in
    one of the batch's maximal agree sets -- a single antichain query.
    Computing the pairwise agree sets once per batch (numpy, one
    equality matrix per column folded into <= 64-column bit lanes)
    replaces an O(|MUCS| x |batch|) re-grouping of the batch.
    """
    n_rows = len(rows)
    antichain = MaximalAntichain()
    if n_rows < 2:
        return antichain
    lanes = (n_columns + 63) // 64
    planes = [np.zeros((n_rows, n_rows), dtype=np.uint64) for _ in range(lanes)]
    for column in range(n_columns):
        codes = encode_rows_local(rows, column)
        equal = codes[:, None] == codes[None, :]
        planes[column // 64] |= equal.astype(np.uint64) << np.uint64(column % 64)
    upper = np.triu_indices(n_rows, k=1)
    flattened = np.stack([plane[upper] for plane in planes], axis=1)
    for lane_values in np.unique(flattened, axis=0):
        mask = 0
        for lane, value in enumerate(lane_values):
            mask |= int(value) << (64 * lane)
        antichain.add(mask)
    return antichain


@dataclass
class InsertStats:
    """Observable work done by one insert batch (Fig. 4 analysis)."""

    batch_size: int = 0
    index_lookups: int = 0
    cache_hits: int = 0
    candidate_ids: int = 0
    tuples_retrieved: int = 0
    fallback_scans: int = 0
    broken_mucs: int = 0
    duplicate_groups: int = 0
    retrieval: RetrievalStats = field(default_factory=RetrievalStats)


@dataclass
class InsertOutcome:
    """New profile plus the work statistics of the batch."""

    mucs: list[int]
    mnucs: list[int]
    stats: InsertStats


class _LookupCache:
    """Alg. 2's cache of per-insert candidate sets keyed by column set.

    An entry under key CC (a mask of index columns already applied) maps
    each inserted tuple's ID to the sorted ID array of old tuples
    agreeing with it on every column of CC. An insert with no candidates
    left is dropped from the mapping, so an empty mapping means "no
    duplicates possible for any superset of CC".

    Entries are immutable once stored (the arrays are the indexes' own
    read-only postings or fresh intersections) and any cached entry is a
    valid (if partial) starting point, so sharing the cache across the
    parallel per-MUC fan-out is safe: the lock only protects the dict
    itself, and which thread's entry wins a race never changes the
    final candidate sets -- only how much probing is saved.
    """

    __slots__ = ("_entries", "_lock", "__weakref__")

    def __init__(self) -> None:
        self._entries: dict[int, dict[int, np.ndarray]] = {}
        self._lock = make_lock("core.inserts.lookup")
        # The cache is captured into process fan-out closures; forked
        # children must never inherit a mid-acquire lock.
        register_fork_owner(self)

    def _reset_locks_after_fork(self) -> None:
        self._lock = make_lock("core.inserts.lookup")

    def largest_subset(self, mask: int) -> tuple[int, dict[int, np.ndarray] | None]:
        """The cached entry whose column set is the largest subset of ``mask``."""
        best_key = 0
        best: dict[int, np.ndarray] | None = None
        with self._lock:
            for key, entry in self._entries.items():
                if key and key | mask == mask:
                    if best is None or key.bit_count() > best_key.bit_count():
                        best_key, best = key, entry
        return best_key, best

    def store(self, mask: int, entry: dict[int, np.ndarray]) -> None:
        with self._lock:
            self._entries[mask] = entry


class InsertsHandler:
    """Computes the post-insert profile for batches of new tuples."""

    def __init__(
        self,
        relation: Relation,
        repository: ProfileRepository,
        index_pool: IndexPool,
        sparse_index: SparseIndex,
        pool: FanOutPool | None = None,
    ) -> None:
        self._relation = relation
        self._repository = repository
        self._indexes = index_pool
        self._sparse = sparse_index
        self._pool = pool

    # ------------------------------------------------------------------
    # Algorithm 2: retrieveIDs
    # ------------------------------------------------------------------
    def _retrieve_ids(
        self,
        muc_mask: int,
        new_rows: Mapping[int, Row],
        cache: _LookupCache,
        stats: InsertStats,
    ) -> dict[int, np.ndarray]:
        """Per-insert candidate old-tuple IDs for one minimal unique.

        Candidate sets are the indexes' sorted code-keyed posting arrays
        (or galloping-intersection narrowings of them), so the
        per-column cascade runs on int64 arrays end to end without ever
        re-sorting a posting.
        """
        covering = [
            column for column in columns_of(muc_mask) if column in self._indexes
        ]
        if not covering:
            return self._fallback_scan(muc_mask, new_rows, stats)

        applied, current = cache.largest_subset(
            sum(1 << column for column in covering)
        )
        if current is not None:
            stats.cache_hits += 1
            if not current:
                return {}
        remaining = [column for column in covering if not applied >> column & 1]
        for column in remaining:
            index = self._indexes.get(column)
            stats.index_lookups += 1
            if current is None:
                # First look-up: group inserts by their value so each
                # distinct value is probed once (Alg. 2 line 11), then
                # fetch all postings in one batched probe.
                by_value: dict[Hashable, list[int]] = {}
                for new_id, row in new_rows.items():
                    by_value.setdefault(row[column], []).append(new_id)
                postings = index.lookup_batch(list(by_value))
                fresh: dict[int, np.ndarray] = {}
                for new_ids, posting in zip(by_value.values(), postings):
                    if posting.size:
                        for new_id in new_ids:
                            fresh[new_id] = posting
                current = fresh
            else:
                # lookUpAndIntersectIds: only probe values of inserts
                # that survived the previous look-ups.
                narrowed: dict[int, np.ndarray] = {}
                for new_id, candidates in current.items():
                    posting = index.lookup_array(new_rows[new_id][column])
                    if posting.size:
                        surviving = intersect_sorted(candidates, posting)
                        if surviving.size:
                            narrowed[new_id] = surviving
                current = narrowed
            applied |= 1 << column
            cache.store(applied, current)
            if not current:
                return {}
        return current

    def _fallback_scan(
        self,
        muc_mask: int,
        new_rows: Mapping[int, Row],
        stats: InsertStats,
    ) -> dict[int, np.ndarray]:
        """Full-scan candidate retrieval for an uncovered minimal unique.

        Only reachable when the index cover is stale (e.g. between a
        delete batch and the facade's re-selection); counted so the
        benchmarks can confirm it never fires on the steady-state path.
        """
        stats.fallback_scans += 1
        indices = columns_of(muc_mask)
        wanted: dict[Row, list[int]] = {}
        for new_id, row in new_rows.items():
            key = tuple(row[index] for index in indices)
            wanted.setdefault(key, []).append(new_id)
        result: dict[int, list[int]] = {}
        for tuple_id in self._relation.iter_ids():
            key = self._relation.project(tuple_id, muc_mask)
            for new_id in wanted.get(key, ()):
                result.setdefault(new_id, []).append(tuple_id)
        # iter_ids is ascending, so the collected lists are sorted.
        return {
            new_id: np.asarray(ids, dtype=np.int64)
            for new_id, ids in result.items()
        }

    # ------------------------------------------------------------------
    # Algorithm 1 + 5: the full insert workflow
    # ------------------------------------------------------------------
    def handle(self, new_rows: Mapping[int, Row]) -> InsertOutcome:
        """Compute the profile of (relation ∪ new rows)."""
        stats = InsertStats(batch_size=len(new_rows))
        old_mucs = self._repository.mucs
        old_mnucs = self._repository.mnucs
        if not new_rows:
            return InsertOutcome(list(old_mucs), list(old_mnucs), stats)

        # Pre-compute the batch's internal duplicate structure once when
        # that is cheaper than re-grouping the batch per minimal unique.
        batch_agrees: MaximalAntichain | None = None
        if len(new_rows) ** 2 < max(4096, len(old_mucs) * len(new_rows)):
            batch_agrees = batch_agree_antichain(
                list(new_rows.values()), self._relation.n_columns
            )

        # Candidate retrieval per minimal unique is independent and
        # read-only (indexes and relation are only mutated after the
        # analysis), so it fans out on the worker pool. Per-task stats
        # are merged -- and candidate sets folded -- in ``old_mucs``
        # order so the outcome is bit-identical to the serial path.
        cache = _LookupCache()

        def retrieve_one(
            muc_mask: int,
        ) -> tuple[dict[int, np.ndarray], InsertStats]:
            local = InsertStats()
            return self._retrieve_ids(muc_mask, new_rows, cache, local), local

        if self._pool is not None and self._pool.active:
            retrievals = self._pool.map(retrieve_one, old_mucs)
        else:
            retrievals = [retrieve_one(muc_mask) for muc_mask in old_mucs]
        relevant_lookups: dict[int, dict[int, np.ndarray]] = {}
        for muc_mask, (lookups, local) in zip(old_mucs, retrievals):
            stats.index_lookups += local.index_lookups
            stats.cache_hits += local.cache_hits
            stats.fallback_scans += local.fallback_scans
            relevant_lookups[muc_mask] = lookups

        # Minimal uniques sharing a covering column set share the *same*
        # cached lookup entry, and inserts sharing a value share posting
        # objects -- so each union is computed once per distinct entry
        # (at most one per indexed-column subset) over distinct arrays,
        # not once per MUC over every per-insert candidate set.
        entry_unions: dict[int, np.ndarray] = {}

        def union_of(lookups: dict[int, np.ndarray]) -> np.ndarray:
            cached = entry_unions.get(id(lookups))
            if cached is None:
                distinct = {id(array): array for array in lookups.values()}
                cached = union_sorted(list(distinct.values()))
                entry_unions[id(lookups)] = cached
            return cached

        muc_candidates = {
            muc_mask: union_of(relevant_lookups[muc_mask])
            for muc_mask in old_mucs
        }
        all_candidates = union_sorted(
            list({id(a): a for a in muc_candidates.values()}.values())
        )
        stats.candidate_ids = int(all_candidates.size)

        old_rows, retrieval = self._sparse.retrieve_tuples(
            all_candidates.tolist()
        )
        stats.retrieval = retrieval
        stats.tuples_retrieved = len(old_rows)

        manager = DuplicateManager(old_rows, new_rows, relation=self._relation)
        n_columns = self._relation.n_columns
        new_muc_candidates: list[int] = []
        new_non_uniques: list[int] = list(old_mnucs)
        for muc_mask in old_mucs:
            candidate_ids = muc_candidates[muc_mask]
            if (
                not candidate_ids.size
                and batch_agrees is not None
                and not batch_agrees.contains_superset_of(muc_mask)
            ):
                # No old tuple matches any insert on this minimal
                # unique's indexed columns, and no batch pair agrees on
                # all of it: it cannot have broken.
                new_muc_candidates.append(muc_mask)
                continue
            groups = manager.groups_for(muc_mask, candidate_ids)
            if not groups:
                new_muc_candidates.append(muc_mask)
                continue
            stats.broken_mucs += 1
            stats.duplicate_groups += len(groups)
            muc_agree_sets: set[int] = set()
            for group in groups:
                muc_agree_sets |= group.agree_sets()
            new_non_uniques.extend(muc_agree_sets)
            new_muc_candidates.extend(
                minimal_unique_supersets(muc_mask, muc_agree_sets, n_columns)
            )

        return InsertOutcome(
            mucs=minimize(new_muc_candidates),
            mnucs=maximize(new_non_uniques),
            stats=stats,
        )
