"""Functional dependency discovery on the shared PLI substrate.

Unique discovery and FD discovery are siblings: the paper leverages the
same position-list-index partitions TANE introduced ([4], [9]), and
notes that "one can leverage uniques for the discovery of functional
and inclusion dependencies". This package provides:

* :mod:`repro.fd.tane` -- levelwise discovery of all minimal,
  non-trivial functional dependencies via partition refinement
  (TANE-style), reusing :class:`~repro.storage.fastpli.ArrayPli`;
* :mod:`repro.fd.oracle` -- a brute-force oracle for tests.

FDs connect back to unique discovery two ways (both tested): every
unique column combination functionally determines every column, and a
valid FD X -> A makes any unique of the form U ∪ {A} with X ⊆ U
non-minimal.
"""

from repro.fd.tane import FunctionalDependency, discover_fds

__all__ = ["FunctionalDependency", "discover_fds"]
