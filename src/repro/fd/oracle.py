"""Brute-force FD oracle for tests: check every (LHS, RHS) pair."""

from __future__ import annotations

from itertools import combinations

from repro.fd.tane import FunctionalDependency, holds
from repro.lattice.combination import is_subset
from repro.storage.relation import Relation


def discover_fds_bruteforce(relation: Relation) -> list[FunctionalDependency]:
    """All minimal non-trivial FDs by testing every candidate directly."""
    n_columns = relation.n_columns
    if len(relation) == 0 or n_columns < 2:
        return []
    valid: dict[int, list[int]] = {rhs: [] for rhs in range(n_columns)}
    for rhs in range(n_columns):
        others = [column for column in range(n_columns) if column != rhs]
        for size in range(0, n_columns):
            for columns in combinations(others, size):
                lhs = 0
                for column in columns:
                    lhs |= 1 << column
                if any(is_subset(smaller, lhs) for smaller in valid[rhs]):
                    continue
                if holds(relation, lhs, rhs):
                    valid[rhs].append(lhs)
    found = [
        FunctionalDependency(lhs, rhs)
        for rhs, lhs_list in valid.items()
        for lhs in lhs_list
    ]
    found.sort()
    return found
