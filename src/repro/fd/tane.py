"""Levelwise functional dependency discovery (TANE-style).

Finds all *minimal, non-trivial* functional dependencies X -> A of a
relation instance: X does not contain A, no proper subset of X
determines A, and two tuples agreeing on X always agree on A.

The validity test is TANE's partition refinement ([4], [9]): with
|pi_X| the number of equivalence classes of the projection on X
(counting singletons),

    X -> A   <=>   |pi_X| == |pi_{X ∪ {A}}|

computed from stripped partitions (:class:`ArrayPli`) as
``classes = n_rows - entries + clusters``.

The search ascends the lattice levelwise. Pruning:

* **minimality** -- a candidate LHS containing an already-found LHS for
  the same RHS cannot be minimal; found LHSes live in one
  :class:`MinimalAntichain` per RHS attribute, so the check is a
  bitmap query;
* **keys** -- a superkey X determines everything; the minimal FDs with
  X ⊆ LHS are exactly those whose LHS is a minimal unique, which are
  reported directly and need no expansion;
* **level cap** -- ``max_lhs`` bounds the LHS size for wide relations
  (the full exponential search is exact and is what tests use).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

from repro.lattice.antichain import MinimalAntichain
from repro.lattice.combination import columns_of, iter_bits
from repro.storage.fastpli import ArrayPli
from repro.storage.relation import Relation
from repro.storage.schema import Schema


@dataclass(frozen=True)
class FunctionalDependency:
    """A minimal, non-trivial FD: the ``lhs`` columns determine ``rhs``."""

    lhs: int
    rhs: int

    def named(self, schema: Schema) -> str:
        lhs_names = ", ".join(
            schema.names[column] for column in columns_of(self.lhs)
        )
        return f"[{lhs_names}] -> {schema.names[self.rhs]}"

    def __lt__(self, other: "FunctionalDependency") -> bool:
        return (bin(self.lhs).count("1"), self.lhs, self.rhs) < (
            bin(other.lhs).count("1"),
            other.lhs,
            other.rhs,
        )


class _PartitionCache:
    """Equivalence-class counts |pi_X| via cached ArrayPli intersection."""

    def __init__(self, relation: Relation) -> None:
        self._relation = relation
        self._n_rows = len(relation)
        self._column_plis = [
            ArrayPli.for_column(relation, column)
            for column in range(relation.n_columns)
        ]
        self._plis: dict[int, ArrayPli] = {
            1 << column: pli for column, pli in enumerate(self._column_plis)
        }
        self._classes: dict[int, int] = {}

    def pli(self, mask: int) -> ArrayPli:
        cached = self._plis.get(mask)
        if cached is not None:
            return cached
        # Extend from any immediate subset already computed (levelwise
        # processing guarantees one exists).
        for column in iter_bits(mask):
            parent = self._plis.get(mask & ~(1 << column))
            if parent is not None:
                result = parent.intersect(self._column_plis[column])
                self._plis[mask] = result
                return result
        columns = list(iter_bits(mask))
        result = self._column_plis[columns[0]]
        for column in columns[1:]:
            result = result.intersect(self._column_plis[column])
        self._plis[mask] = result
        return result

    def classes(self, mask: int) -> int:
        """|pi_X| counting singleton classes."""
        if mask == 0:
            return 1 if self._n_rows else 0
        cached = self._classes.get(mask)
        if cached is None:
            pli = self.pli(mask)
            cached = self._n_rows - pli.n_entries() + pli.n_clusters()
            self._classes[mask] = cached
        return cached

    def is_key(self, mask: int) -> bool:
        return self.classes(mask) == self._n_rows


def discover_fds(
    relation: Relation,
    max_lhs: int | None = None,
) -> list[FunctionalDependency]:
    """All minimal non-trivial FDs with LHS size <= ``max_lhs``.

    With ``max_lhs=None`` the search is exhaustive (exact); relations
    with many columns should pass a cap, as FD discovery is exponential
    in the worst case (TANE's well-known behaviour).
    """
    n_columns = relation.n_columns
    n_rows = len(relation)
    if n_rows == 0 or n_columns < 2:
        return []
    cap = n_columns - 1 if max_lhs is None else min(max_lhs, n_columns - 1)
    partitions = _PartitionCache(relation)
    found: list[FunctionalDependency] = []
    minimal_lhs: dict[int, MinimalAntichain] = {
        rhs: MinimalAntichain() for rhs in range(n_columns)
    }

    # Level 0: constant columns are determined by the empty set.
    for rhs in range(n_columns):
        if partitions.classes(1 << rhs) == 1:
            found.append(FunctionalDependency(0, rhs))
            minimal_lhs[rhs].add(0)

    level = 1
    while level <= cap:
        for columns in combinations(range(n_columns), level):
            lhs = 0
            for column in columns:
                lhs |= 1 << column
            remaining = [
                rhs
                for rhs in range(n_columns)
                if not lhs >> rhs & 1
                and not minimal_lhs[rhs].contains_subset_of(lhs)
            ]
            if not remaining:
                continue
            lhs_classes = partitions.classes(lhs)
            if lhs_classes == n_rows:
                # X is a (super)key: it determines every column. The FD
                # is minimal only when no smaller LHS works, which the
                # `remaining` filter already established.
                for rhs in remaining:
                    found.append(FunctionalDependency(lhs, rhs))
                    minimal_lhs[rhs].add(lhs)
                continue
            for rhs in remaining:
                if partitions.classes(lhs | (1 << rhs)) == lhs_classes:
                    found.append(FunctionalDependency(lhs, rhs))
                    minimal_lhs[rhs].add(lhs)
        level += 1
    found.sort()
    return found


def holds(relation: Relation, lhs: int, rhs: int) -> bool:
    """Definitional FD check by direct grouping (oracle-grade)."""
    witness: dict[tuple, object] = {}
    lhs_columns = columns_of(lhs)
    for row in relation.iter_rows():
        key = tuple(row[column] for column in lhs_columns)
        value = row[rhs]
        if witness.setdefault(key, value) != value:
            return False
    return True
