"""The :class:`TenantManager`: N independent profiling services, one process.

This is the layer that turns "a service" into "a system serving
traffic". Each tenant owns what a single-tenant deployment owned
before -- a state directory, a single-writer flock, a changelog, a
health ladder, a dead-letter queue, a metrics registry -- and the
manager owns the tenants::

    <root>/registry.json          -- atomic registry of tenant configs
    <root>/tenants/<id>/          -- one ProfilingService state dir each
    <root>/dropped/<id>-<n>/      -- state of dropped tenants (forensics)

Lifecycle is ``create`` / ``open`` / ``close`` / ``drop``. The registry
file is the durable source of truth: ``open_all()`` after a restart
rebuilds every tenant exactly as registered (recovering each from its
own snapshot+changelog), and registry writes go through the same
``fsops`` fault sites as every other durability path, so the chaos
sweep covers them.

Ingest is asynchronous: :meth:`ingest` runs admission control (tenant
exists, mode allows the batch kind, health accepts writes, token not
already seen, queue not full) and enqueues; the tenant's
:class:`~repro.tenants.worker.TenantWorker` is the only writer. Reads
(:meth:`query_profile`, :meth:`tenant_status`) take the same per-tenant
lock as the writer, so a query never observes a half-applied batch --
and one tenant's traffic never blocks a sibling's.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Iterator, Sequence

from repro.errors import (
    QueueFullError,
    ServiceHealthError,
    TenantError,
    TenantExistsError,
    TenantModeError,
    UnknownTenantError,
    WorkloadError,
)
from repro.faults import fsops
from repro.lattice.combination import popcount
from repro.service.changelog import DELETE, INSERT
from repro.service.server import Batch, ProfilingService
from repro.storage.relation import Relation
from repro.storage.schema import Schema
from repro.tenants.config import TenantConfig, validate_tenant_id
from repro.tenants.queue import IngestQueue
from repro.tenants.worker import TenantWorker

SITE_REGISTRY_OPEN = fsops.register_site(
    "tenants.registry.open", "write the tenant registry (tmp file)"
)
SITE_REGISTRY_FSYNC = fsops.register_site(
    "tenants.registry.fsync", "fsync the tenant registry before publishing"
)
SITE_REGISTRY_REPLACE = fsops.register_site(
    "tenants.registry.replace", "atomically publish the tenant registry"
)
SITE_REGISTRY_READ = fsops.register_site(
    "tenants.registry.read", "read the tenant registry back"
)
SITE_DROP_REPLACE = fsops.register_site(
    "tenants.drop.replace", "move a dropped tenant's state dir aside"
)

REGISTRY_NAME = "registry.json"
TENANTS_DIR = "tenants"
DROPPED_DIR = "dropped"
REGISTRY_VERSION = 1

Row = tuple[Hashable, ...]


@dataclass
class Tenant:
    """One tenant's runtime bundle (registry entry + live machinery)."""

    tenant_id: str
    config: TenantConfig
    data_dir: str
    created_unix: float
    service: ProfilingService
    queue: IngestQueue
    worker: TenantWorker
    lock: threading.RLock = field(default_factory=threading.RLock)

    @property
    def started(self) -> bool:
        return self.service.started


class TenantManager:
    """Owns tenant lifecycle, the registry file, and batch routing."""

    def __init__(
        self,
        root_dir: str,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.root_dir = root_dir
        self._sleep = sleep
        self._tenants: dict[str, Tenant] = {}
        self._registry: dict[str, dict[str, Any]] = {}
        self._lock = threading.RLock()
        self._closed = False
        os.makedirs(os.path.join(root_dir, TENANTS_DIR), exist_ok=True)
        self._registry_path = os.path.join(root_dir, REGISTRY_NAME)
        if os.path.exists(self._registry_path):
            self._registry = self._load_registry()

    # ------------------------------------------------------------------
    # Registry persistence
    # ------------------------------------------------------------------
    def _load_registry(self) -> dict[str, dict[str, Any]]:
        with fsops.open_(SITE_REGISTRY_READ, self._registry_path) as handle:
            try:
                document = json.load(handle)
            except json.JSONDecodeError as exc:
                raise TenantError(
                    f"tenant registry {self._registry_path} is corrupt: {exc}"
                ) from exc
        if (
            not isinstance(document, dict)
            or document.get("version") != REGISTRY_VERSION
            or not isinstance(document.get("tenants"), dict)
        ):
            raise TenantError(
                f"tenant registry {self._registry_path} has an unknown layout"
            )
        return dict(document["tenants"])

    def _persist_registry(self) -> None:
        document = {"version": REGISTRY_VERSION, "tenants": self._registry}
        tmp = self._registry_path + ".tmp"
        with fsops.open_(SITE_REGISTRY_OPEN, tmp, "w") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.flush()
            fsops.fsync(SITE_REGISTRY_FSYNC, handle)
        fsops.replace(SITE_REGISTRY_REPLACE, tmp, self._registry_path)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _state_dir(self, tenant_id: str) -> str:
        return os.path.join(self.root_dir, TENANTS_DIR, tenant_id)

    def _build_tenant(
        self, tenant_id: str, config: TenantConfig, created_unix: float
    ) -> Tenant:
        data_dir = self._state_dir(tenant_id)
        service = ProfilingService(
            data_dir,
            config=config.service_config(),
            sleep=self._sleep,
            tenant_id=tenant_id,
        )
        queue = IngestQueue(
            tenant_id=tenant_id,
            max_pending_batches=config.max_pending_batches,
            max_pending_bytes=config.max_pending_bytes,
        )
        # The worker and the query paths serialize on one per-tenant lock.
        lock = threading.RLock()
        return Tenant(
            tenant_id=tenant_id,
            config=config,
            data_dir=data_dir,
            created_unix=created_unix,
            service=service,
            queue=queue,
            worker=TenantWorker(tenant_id, service, queue, lock),
            lock=lock,
        )

    @staticmethod
    def _start_service(
        service: ProfilingService, initial: Relation | None = None
    ) -> None:
        """Start a service; on *any* failure release its writer flock.

        A fault mid-``start`` (chaos injection, torn state) must not
        leak a half-started service holding the directory lock -- a
        later ``open()`` of the same tenant would then stall on lock
        contention inside the very same process.
        """
        try:
            service.start(initial=initial)
        except BaseException:
            try:
                service.simulate_crash()
            except Exception:  # noqa: BLE001 - best-effort teardown
                pass
            raise

    def create(
        self,
        tenant_id: str,
        config: TenantConfig,
        initial_rows: Sequence[Sequence[Hashable]] = (),
    ) -> Tenant:
        """Register a new tenant and bring its service up.

        The service boots (profiling ``initial_rows`` over the
        registered schema, possibly empty) *before* the registry is
        persisted: a tenant that cannot start must not be registered.
        """
        validate_tenant_id(tenant_id)
        with self._lock:
            self._check_open()
            if tenant_id in self._registry or tenant_id in self._tenants:
                raise TenantExistsError(tenant_id)
            relation = Relation.from_rows(
                Schema(list(config.columns)),
                [tuple(row) for row in initial_rows],
            )
            tenant = self._build_tenant(tenant_id, config, time.time())
            self._start_service(tenant.service, initial=relation)
            try:
                self._registry[tenant_id] = {
                    "config": config.to_dict(),
                    "created_unix": tenant.created_unix,
                }
                self._persist_registry()
            except BaseException:
                self._registry.pop(tenant_id, None)
                tenant.service.stop()
                raise
            tenant.worker.start()
            self._tenants[tenant_id] = tenant
            return tenant

    def open(self, tenant_id: str) -> Tenant:
        """Bring a registered tenant back up from its durable state."""
        with self._lock:
            self._check_open()
            live = self._tenants.get(tenant_id)
            if live is not None:
                return live
            entry = self._registry.get(tenant_id)
            if entry is None:
                raise UnknownTenantError(tenant_id)
            config = TenantConfig.from_dict(entry["config"])
            tenant = self._build_tenant(
                tenant_id, config, float(entry.get("created_unix", 0.0))
            )
            if tenant.service.has_state():
                self._start_service(tenant.service)
            else:
                # Registered but never sealed (e.g. a crash between
                # registry publish and the first snapshot): boot empty.
                self._start_service(
                    tenant.service,
                    initial=Relation.from_rows(
                        Schema(list(config.columns)), []
                    ),
                )
            tenant.worker.start()
            self._tenants[tenant_id] = tenant
            return tenant

    def open_all(self) -> list[Tenant]:
        """Open every registered tenant (server boot)."""
        with self._lock:
            return [self.open(tenant_id) for tenant_id in sorted(self._registry)]

    def close(self, tenant_id: str, drain: bool = True) -> None:
        """Stop one tenant's writer and service; keep it registered."""
        with self._lock:
            tenant = self._tenants.pop(tenant_id, None)
        if tenant is None:
            if tenant_id not in self._registry:
                raise UnknownTenantError(tenant_id)
            return
        tenant.worker.stop(drain=drain)
        tenant.service.stop()

    def close_all(self, drain: bool = True) -> None:
        with self._lock:
            tenant_ids = list(self._tenants)
            self._closed = True
        for tenant_id in tenant_ids:
            tenant = self._tenants.pop(tenant_id, None)
            if tenant is not None:
                tenant.worker.stop(drain=drain)
                tenant.service.stop()

    def drop(self, tenant_id: str) -> str:
        """Unregister a tenant and move its state aside (never deleted).

        Returns the path the state directory was parked under. Drop is
        logical: the profile, changelog and dead letters survive under
        ``dropped/`` for forensics, mirroring the dead-letter philosophy
        of never destroying evidence.
        """
        with self._lock:
            if tenant_id not in self._registry:
                raise UnknownTenantError(tenant_id)
            tenant = self._tenants.pop(tenant_id, None)
            if tenant is not None:
                tenant.worker.stop(drain=False)
                tenant.service.stop()
            del self._registry[tenant_id]
            self._persist_registry()
            state_dir = self._state_dir(tenant_id)
            parked = ""
            if os.path.isdir(state_dir):
                dropped_root = os.path.join(self.root_dir, DROPPED_DIR)
                os.makedirs(dropped_root, exist_ok=True)
                suffix = 0
                parked = os.path.join(dropped_root, tenant_id)
                while os.path.exists(parked):
                    suffix += 1
                    parked = os.path.join(dropped_root, f"{tenant_id}-{suffix}")
                fsops.replace(SITE_DROP_REPLACE, state_dir, parked)
            return parked

    def _check_open(self) -> None:
        if self._closed:
            raise TenantError("tenant manager is closed")

    def __enter__(self) -> "TenantManager":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close_all()

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def get(self, tenant_id: str) -> Tenant:
        with self._lock:
            tenant = self._tenants.get(tenant_id)
        if tenant is None:
            raise UnknownTenantError(tenant_id)
        return tenant

    def tenant_ids(self) -> list[str]:
        """Every registered tenant id (open or not), sorted."""
        with self._lock:
            return sorted(set(self._registry) | set(self._tenants))

    def is_open(self, tenant_id: str) -> bool:
        with self._lock:
            return tenant_id in self._tenants

    def __iter__(self) -> Iterator[Tenant]:
        with self._lock:
            tenants = list(self._tenants.values())
        return iter(sorted(tenants, key=lambda t: t.tenant_id))

    def __len__(self) -> int:
        with self._lock:
            return len(self._tenants)

    # ------------------------------------------------------------------
    # Ingest (admission control happens here, on the producer thread)
    # ------------------------------------------------------------------
    def ingest(
        self,
        tenant_id: str,
        kind: str,
        rows: Sequence[Sequence[Hashable]] = (),
        tuple_ids: Sequence[int] = (),
        token: str | None = None,
        nbytes: int | None = None,
    ) -> dict[str, object]:
        """Admit one batch into a tenant's queue; returns a receipt.

        Raises :class:`UnknownTenantError`, :class:`TenantModeError`
        (delete on an insert-only tenant), :class:`ServiceHealthError`
        (health ladder gates writes) or :class:`QueueFullError`
        (backpressure). A token already committed, quarantined or
        pending is acknowledged as a duplicate without enqueueing.
        """
        tenant = self.get(tenant_id)
        if kind not in (INSERT, DELETE):
            raise WorkloadError(f"unknown batch kind {kind!r}")
        if kind == DELETE and tenant.config.insert_only:
            raise TenantModeError(
                f"tenant {tenant_id!r} is registered insert-only; "
                "delete batches are not accepted"
            )
        if not tenant.service.health.can_write:
            raise ServiceHealthError(
                f"tenant {tenant_id!r} is "
                f"{tenant.service.health.state.value}, refusing writes"
            )
        if kind == INSERT:
            batch = Batch(
                INSERT,
                rows=tuple(tuple(row) for row in rows),
                token=token,
            )
        else:
            batch = Batch(
                DELETE, tuple_ids=tuple(int(i) for i in tuple_ids), token=token
            )
        if token is not None and (
            tenant.service.is_token_known(token)
            or tenant.queue.is_token_pending(token)
        ):
            tenant.queue.note_duplicate()
            return {
                "tenant": tenant_id,
                "outcome": "duplicate",
                "token": token,
            }
        if nbytes is None:
            nbytes = len(json.dumps(self._batch_payload(batch)))
        try:
            item = tenant.queue.put(batch, nbytes=nbytes, now=time.time())
        except QueueFullError:
            tenant.service.metrics.counter("queue_rejections").inc()
            raise
        return {
            "tenant": tenant_id,
            "outcome": "enqueued",
            "batch_id": item.batch_id,
            "pending_batches": tenant.queue.depth(),
        }

    @staticmethod
    def _batch_payload(batch: Batch) -> dict[str, object]:
        if batch.kind == INSERT:
            return {"kind": INSERT, "rows": [list(row) for row in batch.rows]}
        return {"kind": DELETE, "ids": list(batch.tuple_ids)}

    def flush(self, tenant_id: str, timeout: float = 30.0) -> bool:
        """Block until a tenant's queue is fully applied (or timeout)."""
        return self.get(tenant_id).worker.flush(timeout=timeout)

    def flush_all(self, timeout: float = 30.0) -> bool:
        return all(
            tenant.worker.flush(timeout=timeout) for tenant in list(self)
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query_profile(
        self,
        tenant_id: str,
        kinds: Sequence[str] = ("mucs", "mnucs"),
        max_arity: int | None = None,
        contains: Sequence[str] = (),
    ) -> dict[str, object]:
        """The tenant's served MUCS/MNUCS with minimality filters.

        ``max_arity`` keeps only combinations of at most that many
        columns; ``contains`` keeps only combinations including every
        named column. Masks ride along so clients can check
        bit-identity against a local profiler run.
        """
        tenant = self.get(tenant_id)
        for kind in kinds:
            if kind not in ("mucs", "mnucs"):
                raise WorkloadError(f"unknown profile kind {kind!r}")
        with tenant.lock:
            profile = tenant.service.profiler.snapshot()
            schema = tenant.service.profiler.relation.schema
            seq = tenant.service.last_seq
            live_rows = len(tenant.service.profiler.relation)
        try:
            required = schema.mask(list(contains)) if contains else 0
        except Exception as exc:
            raise WorkloadError(f"bad 'contains' filter: {exc}") from exc
        document: dict[str, object] = {
            "tenant": tenant_id,
            "seq": seq,
            "live_rows": live_rows,
            "columns": list(schema.names),
        }
        for kind in kinds:
            masks = profile.mucs if kind == "mucs" else profile.mnucs
            kept = [
                mask
                for mask in masks
                if (max_arity is None or popcount(mask) <= max_arity)
                and (required & mask) == required
            ]
            document[kind] = [
                {
                    "columns": list(schema.combination(mask).names),
                    "mask": mask,
                }
                for mask in kept
            ]
        return document

    def dead_letters(self, tenant_id: str) -> dict[str, object]:
        tenant = self.get(tenant_id)
        return {
            "tenant": tenant_id,
            "count": tenant.service.dead_letters.count(),
            "entries": tenant.service.dead_letters.entries(),
        }

    # ------------------------------------------------------------------
    # Status
    # ------------------------------------------------------------------
    def tenant_status(self, tenant_id: str) -> dict[str, object]:
        """One tenant's full status document (service stats + queue)."""
        tenant = self.get(tenant_id)
        with tenant.lock:
            service_stats = tenant.service.stats()
        return {
            "tenant": tenant_id,
            "insert_only": tenant.config.insert_only,
            "created_unix": tenant.created_unix,
            "health": tenant.service.health.state.value,
            "queue": tenant.queue.stats().to_dict(),
            "worker": {
                "alive": tenant.worker.alive,
                "paused": tenant.worker.paused,
                "drained_total": tenant.worker.drained_total,
            },
            "recent_batches": [
                outcome.to_dict() for outcome in list(tenant.worker.results)
            ],
            "service": service_stats,
        }

    def fleet_status(self) -> dict[str, object]:
        """Every open tenant's gauges plus queue depths, aggregated."""
        per_tenant: dict[str, dict[str, object]] = {}
        totals = {
            "tenants": 0,
            "live_rows": 0,
            "pending_batches": 0,
            "pending_bytes": 0,
            "dead_letters": 0,
            "serving": 0,
        }
        for tenant in self:
            with tenant.lock:
                stats = tenant.service.stats()
            gauges = stats.get("gauges", {})
            queue_stats = tenant.queue.stats()
            health = tenant.service.health.state.value
            per_tenant[tenant.tenant_id] = {
                "health": health,
                "last_seq": stats.get("last_seq"),
                "dead_letters": stats.get("dead_letters", 0),
                "gauges": gauges,
                "queue": queue_stats.to_dict(),
            }
            totals["tenants"] += 1
            totals["live_rows"] += int(gauges.get("live_rows", 0))
            totals["pending_batches"] += queue_stats.pending_batches
            totals["pending_bytes"] += queue_stats.pending_bytes
            totals["dead_letters"] += int(stats.get("dead_letters", 0))
            totals["serving"] += 1 if health == "serving" else 0
        return {
            "registered": self.tenant_ids(),
            "totals": totals,
            "tenants": per_tenant,
        }
