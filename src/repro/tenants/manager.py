"""The :class:`TenantManager`: N independent profiling services, one process.

This is the layer that turns "a service" into "a system serving
traffic". Each tenant owns what a single-tenant deployment owned
before -- a state directory, a single-writer flock, a changelog, a
health ladder, a dead-letter queue, a metrics registry -- and the
manager owns the tenants::

    <root>/registry.json          -- atomic registry of tenant configs
    <root>/tenants/<id>/          -- one ProfilingService state dir each
    <root>/dropped/<id>-<n>/      -- state of dropped tenants (forensics)

Lifecycle is ``create`` / ``open`` / ``close`` / ``drop``. The registry
file is the durable source of truth: ``open_all()`` after a restart
rebuilds every tenant exactly as registered (recovering each from its
own snapshot+changelog), and registry writes go through the same
``fsops`` fault sites as every other durability path, so the chaos
sweep covers them.

Ingest is asynchronous: :meth:`ingest` runs admission control (tenant
exists, mode allows the batch kind, health accepts writes, token not
already seen, queue not full) and enqueues; the tenant's
:class:`~repro.tenants.worker.TenantWorker` is the only writer. Reads
(:meth:`query_profile`, :meth:`tenant_status`) take the same per-tenant
lock as the writer, so a query never observes a half-applied batch --
and one tenant's traffic never blocks a sibling's.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Iterator, Sequence

from repro.errors import (
    FlushTimeoutError,
    QueueFullError,
    ServiceHealthError,
    TenantError,
    TenantExistsError,
    TenantModeError,
    TenantParkedError,
    TenantRecoveringError,
    UnknownTenantError,
    WorkloadError,
)
from repro.faults import fsops
from repro.lattice.combination import popcount
from repro.sanitize import make_rlock, register_fork_owner
from repro.service.changelog import DELETE, INSERT
from repro.service.server import Batch, ProfilingService
from repro.storage.relation import Relation
from repro.storage.schema import Schema
from repro.tenants.config import TenantConfig, validate_tenant_id
from repro.tenants.queue import IngestQueue
from repro.tenants.worker import TenantWorker

SITE_REGISTRY_OPEN = fsops.register_site(
    "tenants.registry.open", "write the tenant registry (tmp file)"
)
SITE_REGISTRY_FSYNC = fsops.register_site(
    "tenants.registry.fsync", "fsync the tenant registry before publishing"
)
SITE_REGISTRY_REPLACE = fsops.register_site(
    "tenants.registry.replace", "atomically publish the tenant registry"
)
SITE_REGISTRY_READ = fsops.register_site(
    "tenants.registry.read", "read the tenant registry back"
)
SITE_DROP_REPLACE = fsops.register_site(
    "tenants.drop.replace", "move a dropped tenant's state dir aside"
)
SITE_PARKED_OPEN = fsops.register_site(
    "tenants.parked.open", "write a parked-tenant reason record (tmp file)"
)
SITE_PARKED_FSYNC = fsops.register_site(
    "tenants.parked.fsync", "fsync a parked-tenant reason record"
)
SITE_PARKED_REPLACE = fsops.register_site(
    "tenants.parked.replace", "atomically publish a parked-tenant record"
)
SITE_PARKED_READ = fsops.register_site(
    "tenants.parked.read", "read a parked-tenant reason record back"
)
SITE_PARKED_UNLINK = fsops.register_site(
    "tenants.parked.unlink", "clear a parked-tenant record on recover"
)

REGISTRY_NAME = "registry.json"
TENANTS_DIR = "tenants"
DROPPED_DIR = "dropped"
PARKED_DIR = "parked"
REGISTRY_VERSION = 1

Row = tuple[Hashable, ...]

QUERY_CACHE_CAPACITY = 32

QueryKey = tuple[tuple[str, ...], int | None, tuple[str, ...]]


class ProfileQueryCache:
    """Seq-tagged LRU micro-cache for served profile documents.

    The answer to a ``GET /tenants/<id>/uccs`` query is a pure function
    of (applied sequence number, filter parameters): the served profile
    only changes when a batch commits. So each cached document is
    tagged with the seq it was computed at, and a single seq advance
    invalidates the whole cache -- no per-entry bookkeeping, no stale
    reads. Within one seq, repeated dashboard polls with the same
    ``kinds``/``max_arity``/``contains`` filters hit without touching
    the profiler snapshot at all.
    """

    __slots__ = ("capacity", "seq", "hits", "misses", "_entries")

    def __init__(self, capacity: int = QUERY_CACHE_CAPACITY) -> None:
        self.capacity = capacity
        self.seq = -1
        self.hits = 0
        self.misses = 0
        self._entries: OrderedDict[QueryKey, dict[str, object]] = OrderedDict()

    def _retag(self, seq: int) -> None:
        if seq != self.seq:
            self._entries.clear()
            self.seq = seq

    def get(self, seq: int, key: QueryKey) -> dict[str, object] | None:
        self._retag(seq)
        document = self._entries.get(key)
        if document is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return document

    def put(self, seq: int, key: QueryKey, document: dict[str, object]) -> None:
        self._retag(seq)
        self._entries[key] = document
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def __len__(self) -> int:
        return len(self._entries)


@dataclass
class Tenant:
    """One tenant's runtime bundle (registry entry + live machinery)."""

    tenant_id: str
    config: TenantConfig
    data_dir: str
    created_unix: float
    service: ProfilingService
    queue: IngestQueue
    worker: TenantWorker
    lock: threading.RLock = field(
        default_factory=lambda: make_rlock("tenants.tenant")
    )
    query_cache: ProfileQueryCache = field(default_factory=ProfileQueryCache)

    def __post_init__(self) -> None:
        register_fork_owner(self)

    def _reset_locks_after_fork(self) -> None:
        # The worker shares this very RLock object; point both at the
        # same fresh lock or the fork child would split the tenant's
        # writer and query paths onto different mutexes.
        fresh = make_rlock("tenants.tenant")
        self.lock = fresh
        self.worker.lock = fresh

    @property
    def started(self) -> bool:
        return self.service.started


class TenantManager:
    """Owns tenant lifecycle, the registry file, and batch routing."""

    def __init__(
        self,
        root_dir: str,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.root_dir = root_dir
        self._sleep = sleep
        self._tenants: dict[str, Tenant] = {}
        self._registry: dict[str, dict[str, Any]] = {}
        self._parked: dict[str, dict[str, Any]] = {}
        self._breakers: dict[str, float] = {}
        self._runtime: dict[str, dict[str, float]] = {}
        self._lock = make_rlock("tenants.manager")
        self._closed = False
        self.drain_failures: list[FlushTimeoutError] = []
        register_fork_owner(self)
        os.makedirs(os.path.join(root_dir, TENANTS_DIR), exist_ok=True)
        self._registry_path = os.path.join(root_dir, REGISTRY_NAME)
        if os.path.exists(self._registry_path):
            self._registry = self._load_registry()
        self._parked = self._load_parked_records()
        self._reconcile()

    def _reset_locks_after_fork(self) -> None:
        self._lock = make_rlock("tenants.manager")

    # ------------------------------------------------------------------
    # Registry persistence
    # ------------------------------------------------------------------
    def _load_registry(self) -> dict[str, dict[str, Any]]:
        with fsops.open_(SITE_REGISTRY_READ, self._registry_path) as handle:
            try:
                document = json.load(handle)
            except json.JSONDecodeError as exc:
                raise TenantError(
                    f"tenant registry {self._registry_path} is corrupt: {exc}"
                ) from exc
        if (
            not isinstance(document, dict)
            or document.get("version") != REGISTRY_VERSION
            or not isinstance(document.get("tenants"), dict)
        ):
            raise TenantError(
                f"tenant registry {self._registry_path} has an unknown layout"
            )
        return dict(document["tenants"])

    def _persist_registry(self) -> None:
        document = {"version": REGISTRY_VERSION, "tenants": self._registry}
        tmp = self._registry_path + ".tmp"
        with fsops.open_(SITE_REGISTRY_OPEN, tmp, "w") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.flush()
            fsops.fsync(SITE_REGISTRY_FSYNC, handle)
        fsops.replace(SITE_REGISTRY_REPLACE, tmp, self._registry_path)

    # ------------------------------------------------------------------
    # Parked-tenant records (why automatic recovery gave up, durably)
    # ------------------------------------------------------------------
    def _parked_path(self, tenant_id: str) -> str:
        return os.path.join(self.root_dir, PARKED_DIR, tenant_id + ".json")

    def _load_parked_records(self) -> dict[str, dict[str, Any]]:
        parked_dir = os.path.join(self.root_dir, PARKED_DIR)
        if not os.path.isdir(parked_dir):
            return {}
        records: dict[str, dict[str, Any]] = {}
        for name in sorted(os.listdir(parked_dir)):
            if not name.endswith(".json"):
                continue
            path = os.path.join(parked_dir, name)
            with fsops.open_(SITE_PARKED_READ, path) as handle:
                try:
                    record = json.load(handle)
                except json.JSONDecodeError:
                    # A torn record still parks the tenant -- losing the
                    # reason must not silently un-park it.
                    record = {"reason": "parked record unreadable (torn?)"}
            if isinstance(record, dict):
                records[name[: -len(".json")]] = record
        return records

    def _persist_parked_record(
        self, tenant_id: str, record: dict[str, Any]
    ) -> None:
        os.makedirs(os.path.join(self.root_dir, PARKED_DIR), exist_ok=True)
        path = self._parked_path(tenant_id)
        tmp = path + ".tmp"
        with fsops.open_(SITE_PARKED_OPEN, tmp, "w") as handle:
            json.dump(record, handle, indent=2, sort_keys=True)
            handle.flush()
            fsops.fsync(SITE_PARKED_FSYNC, handle)
        fsops.replace(SITE_PARKED_REPLACE, tmp, path)

    def _clear_parked_record(self, tenant_id: str) -> None:
        path = self._parked_path(tenant_id)
        if os.path.exists(path):
            fsops.remove(SITE_PARKED_UNLINK, path)

    def _reconcile(self) -> None:
        """Registry vs. on-disk state dirs: divergence parks, never hides.

        A crash between state-dir creation and registry publish (either
        order: create's start-then-persist, drop's persist-then-move)
        can leave the two disagreeing. Serving through the disagreement
        risks a wrong answer -- an *orphan* dir might hold committed
        batches nobody will replay, a registered tenant with no dir
        would silently boot empty and "lose" its data. Both cases land
        in PARKED with a persisted reason so an operator decides.
        """
        tenants_root = os.path.join(self.root_dir, TENANTS_DIR)
        on_disk = {
            name
            for name in os.listdir(tenants_root)
            if os.path.isdir(os.path.join(tenants_root, name))
        }
        for orphan in sorted(on_disk - set(self._registry)):
            if orphan in self._parked:
                continue
            self._park_locked(
                orphan,
                "orphan state dir: on disk but not in the registry "
                "(crash between state-dir creation and registry publish?)",
                by="reconcile",
            )
        for missing in sorted(set(self._registry) - on_disk):
            if missing in self._parked:
                continue
            self._park_locked(
                missing,
                "state dir missing: registered but nothing on disk "
                "(crash between registry publish and state move?)",
                by="reconcile",
            )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _state_dir(self, tenant_id: str) -> str:
        return os.path.join(self.root_dir, TENANTS_DIR, tenant_id)

    def _build_tenant(
        self, tenant_id: str, config: TenantConfig, created_unix: float
    ) -> Tenant:
        data_dir = self._state_dir(tenant_id)
        service = ProfilingService(
            data_dir,
            config=config.service_config(),
            sleep=self._sleep,
            tenant_id=tenant_id,
        )
        queue = IngestQueue(
            tenant_id=tenant_id,
            max_pending_batches=config.max_pending_batches,
            max_pending_bytes=config.max_pending_bytes,
        )
        # The worker and the query paths serialize on one per-tenant lock.
        lock = make_rlock("tenants.tenant")
        return Tenant(
            tenant_id=tenant_id,
            config=config,
            data_dir=data_dir,
            created_unix=created_unix,
            service=service,
            queue=queue,
            worker=TenantWorker(tenant_id, service, queue, lock),
            lock=lock,
        )

    @staticmethod
    def _start_service(
        service: ProfilingService, initial: Relation | None = None
    ) -> None:
        """Start a service; on *any* failure release its writer flock.

        A fault mid-``start`` (chaos injection, torn state) must not
        leak a half-started service holding the directory lock -- a
        later ``open()`` of the same tenant would then stall on lock
        contention inside the very same process.
        """
        try:
            service.start(initial=initial)
        except BaseException:
            try:
                service.simulate_crash()
            except Exception:  # noqa: BLE001 - best-effort teardown
                pass
            raise

    def create(
        self,
        tenant_id: str,
        config: TenantConfig,
        initial_rows: Sequence[Sequence[Hashable]] = (),
    ) -> Tenant:
        """Register a new tenant and bring its service up.

        The service boots (profiling ``initial_rows`` over the
        registered schema, possibly empty) *before* the registry is
        persisted: a tenant that cannot start must not be registered.
        """
        validate_tenant_id(tenant_id)
        with self._lock:
            self._check_open()
            if tenant_id in self._registry or tenant_id in self._tenants:
                raise TenantExistsError(tenant_id)
            if tenant_id in self._parked:
                raise TenantParkedError(
                    tenant_id, str(self._parked[tenant_id].get("reason", ""))
                )
            if os.path.isdir(self._state_dir(tenant_id)):
                # Never double-assign an id onto leftover state: an
                # unregistered dir is evidence of a crashed lifecycle
                # op, not free real estate.
                raise TenantExistsError(tenant_id)
            relation = Relation.from_rows(
                Schema(list(config.columns)),
                [tuple(row) for row in initial_rows],
            )
            tenant = self._build_tenant(tenant_id, config, time.time())
            self._start_service(tenant.service, initial=relation)
            try:
                self._registry[tenant_id] = {
                    "config": config.to_dict(),
                    "created_unix": tenant.created_unix,
                }
                self._persist_registry()
            except BaseException:
                self._registry.pop(tenant_id, None)
                tenant.service.stop()
                raise
            tenant.worker.start()
            self._tenants[tenant_id] = tenant
            return tenant

    def open(self, tenant_id: str) -> Tenant:
        """Bring a registered tenant back up from its durable state."""
        with self._lock:
            self._check_open()
            live = self._tenants.get(tenant_id)
            if live is not None:
                return live
            if tenant_id in self._parked:
                raise TenantParkedError(
                    tenant_id, str(self._parked[tenant_id].get("reason", ""))
                )
            entry = self._registry.get(tenant_id)
            if entry is None:
                raise UnknownTenantError(tenant_id)
            config = TenantConfig.from_dict(entry["config"])
            tenant = self._build_tenant(
                tenant_id, config, float(entry.get("created_unix", 0.0))
            )
            opened_at = time.monotonic()
            if tenant.service.has_state():
                self._start_service(tenant.service)
            else:
                # Registered but never sealed (e.g. a crash between
                # registry publish and the first snapshot): boot empty.
                self._start_service(
                    tenant.service,
                    initial=Relation.from_rows(
                        Schema(list(config.columns)), []
                    ),
                )
            runtime = self._runtime.setdefault(
                tenant_id,
                {"restarts_total": 0.0, "last_recovery_duration_seconds": 0.0},
            )
            runtime["last_recovery_duration_seconds"] = (
                time.monotonic() - opened_at
            )
            self._stamp_runtime_gauges(tenant_id, tenant.service)
            tenant.worker.start()
            self._tenants[tenant_id] = tenant
            return tenant

    def _stamp_runtime_gauges(
        self, tenant_id: str, service: ProfilingService
    ) -> None:
        """Copy manager-owned restart accounting into the service gauges.

        Every reopen builds a *fresh* ``ProfilingService`` (and metrics
        registry), so counters that must survive restarts -- the whole
        point of ``restarts_total`` -- live here and get stamped into
        each new registry.
        """
        runtime = self._runtime.get(tenant_id)
        if runtime is None:
            return
        service.metrics.gauge("restarts_total").set(runtime["restarts_total"])
        service.metrics.gauge("last_recovery_duration_seconds").set(
            runtime["last_recovery_duration_seconds"]
        )

    def open_all(self) -> list[Tenant]:
        """Open every registered, non-parked tenant (server boot)."""
        with self._lock:
            return [
                self.open(tenant_id)
                for tenant_id in sorted(self._registry)
                if tenant_id not in self._parked
            ]

    def close(self, tenant_id: str, drain: bool = True) -> None:
        """Stop one tenant's writer and service; keep it registered.

        With ``drain=True`` a queue that cannot drain raises
        :class:`~repro.errors.FlushTimeoutError` -- but the service is
        stopped regardless, so a stuck queue never leaks a running
        service behind an error.
        """
        with self._lock:
            tenant = self._tenants.pop(tenant_id, None)
        if tenant is None:
            if tenant_id not in self._registry:
                raise UnknownTenantError(tenant_id)
            return
        try:
            tenant.worker.stop(drain=drain)
        finally:
            tenant.service.stop()

    def close_all(self, drain: bool = True) -> None:
        """Shutdown: stop every tenant; drain failures are collected.

        Shutdown must not abort halfway because one tenant's queue is
        stuck, so instead of raising, failed drains are recorded on
        ``drain_failures`` for the caller (the CLI reports them).
        """
        with self._lock:
            self._closed = True
            # Pop under the lock: a concurrent get()/status poll must
            # never observe a half-removed tenant map.
            tenants = [
                self._tenants.pop(tenant_id)
                for tenant_id in list(self._tenants)
            ]
        for tenant in tenants:
            try:
                tenant.worker.stop(drain=drain)
            except FlushTimeoutError as exc:
                with self._lock:
                    self.drain_failures.append(exc)
            finally:
                tenant.service.stop()

    # ------------------------------------------------------------------
    # Park / recover / restart (the supervisor's levers)
    # ------------------------------------------------------------------
    def _park_locked(
        self,
        tenant_id: str,
        reason: str,
        by: str,
        restarts: Sequence[float] = (),
    ) -> dict[str, Any]:
        tenant = self._tenants.pop(tenant_id, None)
        if tenant is not None:
            try:
                tenant.worker.stop(drain=False, timeout=2.0)
            except Exception:  # noqa: BLE001 - parking a broken tenant
                pass
            try:
                tenant.service.health.mark_parked(reason)
                tenant.service.simulate_crash()
            except Exception:  # noqa: BLE001 - best-effort teardown
                pass
        record: dict[str, Any] = {
            "tenant": tenant_id,
            "reason": reason,
            "by": by,
            "parked_unix": time.time(),
            "registered": tenant_id in self._registry,
            "restarts": list(restarts),
        }
        # Park in memory *first*: losing the durable record to an I/O
        # fault must not leave the tenant serving.
        self._parked[tenant_id] = record
        self._breakers.pop(tenant_id, None)
        self._persist_parked_record(tenant_id, record)
        return record

    def park(
        self,
        tenant_id: str,
        reason: str,
        by: str = "operator",
        restarts: Sequence[float] = (),
    ) -> dict[str, Any]:
        """Take a tenant out of service with a persisted reason record."""
        with self._lock:
            if (
                tenant_id not in self._registry
                and tenant_id not in self._tenants
            ):
                raise UnknownTenantError(tenant_id)
            return self._park_locked(tenant_id, reason, by, restarts=restarts)

    def parked_ids(self) -> list[str]:
        with self._lock:
            return sorted(self._parked)

    def parked_record(self, tenant_id: str) -> dict[str, Any] | None:
        with self._lock:
            record = self._parked.get(tenant_id)
            return dict(record) if record is not None else None

    def recover(self, tenant_id: str) -> Tenant:
        """Operator/supervisor recovery: un-park and/or restart a tenant.

        * parked + registered: clear the record, reopen from durable
          state (snapshot + changelog replay).
        * parked orphan (state dir without a registry entry): refuse --
          there is no config to reopen it with; ``drop`` is the only
          exit, and it preserves the state dir for forensics.
        * live: tear down and reopen (a forced restart).
        * registered but closed: plain open.
        """
        with self._lock:
            self._check_open()
            record = self._parked.get(tenant_id)
            if record is not None:
                if tenant_id not in self._registry:
                    raise TenantError(
                        f"tenant {tenant_id!r} is an orphan state dir with no "
                        "registry entry; it cannot be recovered, only dropped"
                    )
                self._clear_parked_record(tenant_id)
                del self._parked[tenant_id]
                return self.open(tenant_id)
            if tenant_id in self._tenants:
                return self.restart_tenant(tenant_id)
            if tenant_id not in self._registry:
                raise UnknownTenantError(tenant_id)
            return self.open(tenant_id)

    def restart_tenant(self, tenant_id: str) -> Tenant:
        """Tear a live tenant down (as a crash would) and reopen it.

        The recovery path is the service's own snapshot+replay: the
        teardown deliberately skips the orderly final snapshot
        (``simulate_crash``), because the supervisor restarts tenants
        whose state -- READ_ONLY, FAILED, dead writer -- makes an
        orderly shutdown either impossible or untrustworthy.
        """
        with self._lock:
            self._check_open()
            tenant = self._tenants.pop(tenant_id, None)
            if tenant is None:
                return self.open(tenant_id)
            try:
                tenant.worker.stop(drain=False, timeout=5.0)
            except Exception:  # noqa: BLE001 - the writer may be dead
                pass
            tenant.service.simulate_crash()
            runtime = self._runtime.setdefault(
                tenant_id,
                {"restarts_total": 0.0, "last_recovery_duration_seconds": 0.0},
            )
            runtime["restarts_total"] += 1.0
            return self.open(tenant_id)

    # ------------------------------------------------------------------
    # Circuit breaker (sheds ingest while recovery is in flight)
    # ------------------------------------------------------------------
    def set_breaker(self, tenant_id: str, retry_after: float = 1.0) -> None:
        with self._lock:
            self._breakers[tenant_id] = retry_after

    def clear_breaker(self, tenant_id: str) -> None:
        with self._lock:
            self._breakers.pop(tenant_id, None)

    def breaker_open(self, tenant_id: str) -> bool:
        with self._lock:
            return tenant_id in self._breakers

    def drop(
        self,
        tenant_id: str,
        force: bool = False,
        drain_timeout: float = 30.0,
    ) -> str:
        """Unregister a tenant and move its state aside (never deleted).

        Returns the path the state directory was parked under. Drop is
        logical: the profile, changelog and dead letters survive under
        ``dropped/`` for forensics, mirroring the dead-letter philosophy
        of never destroying evidence.

        A live tenant is drained first; if the queue cannot empty
        within ``drain_timeout``, the drop *fails* with
        :class:`~repro.errors.FlushTimeoutError` (HTTP 504) and the
        tenant keeps running -- acknowledging a drop while silently
        discarding admitted batches is exactly the bug this guards
        against. ``force=True`` skips the drain (the explicit opt-in).
        """
        with self._lock:
            known = (
                tenant_id in self._registry or tenant_id in self._parked
            )
            if not known:
                raise UnknownTenantError(tenant_id)
            live = self._tenants.get(tenant_id)
        if live is not None and not force:
            if not live.worker.flush(timeout=drain_timeout):
                raise FlushTimeoutError(tenant_id, live.queue.depth())
        with self._lock:
            tenant = self._tenants.pop(tenant_id, None)
            if tenant is not None:
                try:
                    tenant.worker.stop(drain=False)
                finally:
                    tenant.service.stop()
            if tenant_id in self._parked:
                self._clear_parked_record(tenant_id)
                del self._parked[tenant_id]
            self._breakers.pop(tenant_id, None)
            if tenant_id in self._registry:
                del self._registry[tenant_id]
                self._persist_registry()
            state_dir = self._state_dir(tenant_id)
            parked = ""
            if os.path.isdir(state_dir):
                dropped_root = os.path.join(self.root_dir, DROPPED_DIR)
                os.makedirs(dropped_root, exist_ok=True)
                suffix = 0
                parked = os.path.join(dropped_root, tenant_id)
                while os.path.exists(parked):
                    suffix += 1
                    parked = os.path.join(dropped_root, f"{tenant_id}-{suffix}")
                fsops.replace(SITE_DROP_REPLACE, state_dir, parked)
            return parked

    def _check_open(self) -> None:
        if self._closed:
            raise TenantError("tenant manager is closed")

    def __enter__(self) -> "TenantManager":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close_all()

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def get(self, tenant_id: str) -> Tenant:
        with self._lock:
            tenant = self._tenants.get(tenant_id)
            if tenant is None and tenant_id in self._parked:
                raise TenantParkedError(
                    tenant_id, str(self._parked[tenant_id].get("reason", ""))
                )
        if tenant is None:
            raise UnknownTenantError(tenant_id)
        return tenant

    def tenant_ids(self) -> list[str]:
        """Every known tenant id (registered, open or parked), sorted."""
        with self._lock:
            return sorted(
                set(self._registry) | set(self._tenants) | set(self._parked)
            )

    def is_open(self, tenant_id: str) -> bool:
        with self._lock:
            return tenant_id in self._tenants

    def __iter__(self) -> Iterator[Tenant]:
        with self._lock:
            tenants = list(self._tenants.values())
        return iter(sorted(tenants, key=lambda t: t.tenant_id))

    def __len__(self) -> int:
        with self._lock:
            return len(self._tenants)

    # ------------------------------------------------------------------
    # Ingest (admission control happens here, on the producer thread)
    # ------------------------------------------------------------------
    def ingest(
        self,
        tenant_id: str,
        kind: str,
        rows: Sequence[Sequence[Hashable]] = (),
        tuple_ids: Sequence[int] = (),
        token: str | None = None,
        nbytes: int | None = None,
    ) -> dict[str, object]:
        """Admit one batch into a tenant's queue; returns a receipt.

        Raises :class:`UnknownTenantError`, :class:`TenantModeError`
        (delete on an insert-only tenant), :class:`ServiceHealthError`
        (health ladder gates writes) or :class:`QueueFullError`
        (backpressure). A token already committed, quarantined or
        pending is acknowledged as a duplicate without enqueueing.
        """
        with self._lock:
            retry_after = self._breakers.get(tenant_id)
        if retry_after is not None:
            # Circuit breaker: recovery is tearing this tenant down and
            # reopening it; shed ingest instead of racing the rebuild.
            raise TenantRecoveringError(tenant_id, retry_after=retry_after)
        tenant = self.get(tenant_id)
        if kind not in (INSERT, DELETE):
            raise WorkloadError(f"unknown batch kind {kind!r}")
        if kind == DELETE and tenant.config.insert_only:
            raise TenantModeError(
                f"tenant {tenant_id!r} is registered insert-only; "
                "delete batches are not accepted"
            )
        if not tenant.service.health.can_write:
            raise ServiceHealthError(
                f"tenant {tenant_id!r} is "
                f"{tenant.service.health.state.value}, refusing writes"
            )
        if kind == INSERT:
            batch = Batch(
                INSERT,
                rows=tuple(tuple(row) for row in rows),
                token=token,
            )
        else:
            batch = Batch(
                DELETE, tuple_ids=tuple(int(i) for i in tuple_ids), token=token
            )
        if token is not None and (
            tenant.service.is_token_known(token)
            or tenant.queue.is_token_pending(token)
        ):
            tenant.queue.note_duplicate()
            return {
                "tenant": tenant_id,
                "outcome": "duplicate",
                "token": token,
            }
        if nbytes is None:
            nbytes = len(json.dumps(self._batch_payload(batch)))
        try:
            item = tenant.queue.put(batch, nbytes=nbytes, now=time.time())
        except QueueFullError:
            tenant.service.metrics.counter("queue_rejections").inc()
            raise
        return {
            "tenant": tenant_id,
            "outcome": "enqueued",
            "batch_id": item.batch_id,
            "pending_batches": tenant.queue.depth(),
        }

    @staticmethod
    def _batch_payload(batch: Batch) -> dict[str, object]:
        if batch.kind == INSERT:
            return {"kind": INSERT, "rows": [list(row) for row in batch.rows]}
        return {"kind": DELETE, "ids": list(batch.tuple_ids)}

    def flush(self, tenant_id: str, timeout: float = 30.0) -> bool:
        """Block until a tenant's queue is fully applied (or timeout)."""
        return self.get(tenant_id).worker.flush(timeout=timeout)

    def flush_all(self, timeout: float = 30.0) -> bool:
        return all(
            tenant.worker.flush(timeout=timeout) for tenant in list(self)
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query_profile(
        self,
        tenant_id: str,
        kinds: Sequence[str] = ("mucs", "mnucs"),
        max_arity: int | None = None,
        contains: Sequence[str] = (),
    ) -> dict[str, object]:
        """The tenant's served MUCS/MNUCS with minimality filters.

        ``max_arity`` keeps only combinations of at most that many
        columns; ``contains`` keeps only combinations including every
        named column. Masks ride along so clients can check
        bit-identity against a local profiler run.

        Responses are served through a per-tenant seq-tagged LRU
        (:class:`ProfileQueryCache`): identical filters at an unchanged
        applied seq skip the snapshot and filtering entirely. Hit/miss
        totals surface as the ``query_cache_hits`` /
        ``query_cache_misses`` gauges.
        """
        tenant = self.get(tenant_id)
        for kind in kinds:
            if kind not in ("mucs", "mnucs"):
                raise WorkloadError(f"unknown profile kind {kind!r}")
        key: QueryKey = (
            tuple(kinds),
            None if max_arity is None else int(max_arity),
            tuple(str(column) for column in contains),
        )
        with tenant.lock:
            cache = tenant.query_cache
            seq = tenant.service.last_seq
            cached = cache.get(seq, key)
            metrics = tenant.service.metrics
            metrics.gauge("query_cache_hits").set(float(cache.hits))
            metrics.gauge("query_cache_misses").set(float(cache.misses))
            if cached is not None:
                # Top-level copy: a caller mutating the response must
                # not corrupt the cached document.
                return dict(cached)
            profile = tenant.service.profiler.snapshot()
            schema = tenant.service.profiler.relation.schema
            live_rows = len(tenant.service.profiler.relation)
            try:
                required = schema.mask(list(contains)) if contains else 0
            except Exception as exc:
                raise WorkloadError(f"bad 'contains' filter: {exc}") from exc
            document: dict[str, object] = {
                "tenant": tenant_id,
                "seq": seq,
                "live_rows": live_rows,
                "columns": list(schema.names),
            }
            for kind in kinds:
                masks = profile.mucs if kind == "mucs" else profile.mnucs
                kept = [
                    mask
                    for mask in masks
                    if (max_arity is None or popcount(mask) <= max_arity)
                    and (required & mask) == required
                ]
                document[kind] = [
                    {
                        "columns": list(schema.combination(mask).names),
                        "mask": mask,
                    }
                    for mask in kept
                ]
            cache.put(seq, key, document)
            return dict(document)

    def dead_letters(self, tenant_id: str) -> dict[str, object]:
        tenant = self.get(tenant_id)
        return {
            "tenant": tenant_id,
            "count": tenant.service.dead_letters.count(),
            "entries": tenant.service.dead_letters.entries(),
        }

    # ------------------------------------------------------------------
    # Status
    # ------------------------------------------------------------------
    def tenant_status(self, tenant_id: str) -> dict[str, object]:
        """One tenant's full status document (service stats + queue).

        A parked tenant has no live machinery, but "why is it down" is
        precisely what the status endpoint is for -- so parked tenants
        answer with their reason record instead of erroring.
        """
        with self._lock:
            record = self._parked.get(tenant_id)
        if record is not None:
            return {
                "tenant": tenant_id,
                "health": "parked",
                "parked": dict(record),
            }
        tenant = self.get(tenant_id)
        with tenant.lock:
            service_stats = tenant.service.stats()
        return {
            "tenant": tenant_id,
            "insert_only": tenant.config.insert_only,
            "created_unix": tenant.created_unix,
            "health": tenant.service.health.state.value,
            "breaker_open": self.breaker_open(tenant_id),
            "queue": tenant.queue.stats().to_dict(),
            "worker": {
                "alive": tenant.worker.alive,
                "paused": tenant.worker.paused,
                "drained_total": tenant.worker.drained_total,
                "death_reason": tenant.worker.death_reason,
            },
            "recent_batches": [
                outcome.to_dict() for outcome in list(tenant.worker.results)
            ],
            "service": service_stats,
        }

    def fleet_status(self) -> dict[str, object]:
        """Every open tenant's gauges plus queue depths, aggregated."""
        per_tenant: dict[str, dict[str, object]] = {}
        totals = {
            "tenants": 0,
            "live_rows": 0,
            "pending_batches": 0,
            "pending_bytes": 0,
            "dead_letters": 0,
            "serving": 0,
            "parked": 0,
            "restarts_total": 0,
        }
        for tenant in self:
            with tenant.lock:
                stats = tenant.service.stats()
            gauges = stats.get("gauges", {})
            queue_stats = tenant.queue.stats()
            health = tenant.service.health.state.value
            per_tenant[tenant.tenant_id] = {
                "health": health,
                "last_seq": stats.get("last_seq"),
                "dead_letters": stats.get("dead_letters", 0),
                "breaker_open": self.breaker_open(tenant.tenant_id),
                "gauges": gauges,
                "queue": queue_stats.to_dict(),
            }
            totals["tenants"] += 1
            totals["live_rows"] += int(gauges.get("live_rows", 0))
            totals["pending_batches"] += queue_stats.pending_batches
            totals["pending_bytes"] += queue_stats.pending_bytes
            totals["dead_letters"] += int(stats.get("dead_letters", 0))
            totals["serving"] += 1 if health == "serving" else 0
            totals["restarts_total"] += int(gauges.get("restarts_total", 0))
        with self._lock:
            parked = {tid: dict(rec) for tid, rec in self._parked.items()}
        totals["parked"] = len(parked)
        return {
            "registered": self.tenant_ids(),
            "totals": totals,
            "tenants": per_tenant,
            "parked": parked,
        }
