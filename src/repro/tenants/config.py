"""Per-tenant configuration and the registry document schema.

A :class:`TenantConfig` is the durable description of one tenant: its
schema, its workload mode, and the service/performance knobs threaded
through to the underlying :class:`~repro.service.server.ProfilingService`.
The manager persists one ``TenantConfig`` per tenant in the registry
file, so an ``open()`` after a restart reconstructs exactly the service
the tenant was created with.

``insert_only`` encodes the insert-only vs insert+delete dichotomy:
append-only tenants declare it at registration time and the manager
rejects delete batches at admission with
:class:`~repro.errors.TenantModeError` -- the contract under which
cheaper append-only maintenance strategies are legal.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.errors import TenantError
from repro.service.retry import RetryPolicy
from repro.service.server import ServiceConfig
from repro.storage.plicache import DEFAULT_BUDGET_BYTES

_TENANT_ID_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.-]{0,63}$")

DEFAULT_MAX_PENDING_BATCHES = 64
DEFAULT_MAX_PENDING_BYTES = 8 * 1024 * 1024


def validate_tenant_id(tenant_id: str) -> str:
    """A tenant id doubles as a directory name; keep it filesystem-safe."""
    if not isinstance(tenant_id, str) or not _TENANT_ID_RE.match(tenant_id):
        raise TenantError(
            f"invalid tenant id {tenant_id!r}: need 1-64 characters of "
            "[A-Za-z0-9_.-], starting with a letter or digit"
        )
    return tenant_id


@dataclass(frozen=True)
class TenantConfig:
    """Everything the manager must know to (re)build one tenant."""

    columns: tuple[str, ...]
    insert_only: bool = False
    algorithm: str = "ducc"
    watches: tuple[tuple[str, ...], ...] = ()
    # Service-loop knobs (mirror ServiceConfig defaults).
    snapshot_every: int = 16
    retain_snapshots: int = 3
    fsync: bool = True
    index_quota: int | None = None
    sentinel_every: int = 64
    health_reset_batches: int = 16
    # Performance knobs threaded through to the profiler.
    parallelism: int = 0
    execution_mode: str = "thread"
    cache_budget_bytes: int | None = DEFAULT_BUDGET_BYTES
    compact_live_fraction: float = 0.5
    compact_min_rows: int = 1024
    shards: int = 1
    shard_insert_only: bool = False
    # Ingest-queue admission control (backpressure limits).
    max_pending_batches: int = DEFAULT_MAX_PENDING_BATCHES
    max_pending_bytes: int = DEFAULT_MAX_PENDING_BYTES
    retry: RetryPolicy = field(default_factory=RetryPolicy)

    def __post_init__(self) -> None:
        if not self.columns:
            raise TenantError("a tenant needs at least one column")
        if len(set(self.columns)) != len(self.columns):
            raise TenantError(f"duplicate column names: {list(self.columns)}")
        for name in self.columns:
            if not isinstance(name, str) or not name:
                raise TenantError(f"column names must be non-empty strings, got {name!r}")
        if self.max_pending_batches < 1:
            raise TenantError(
                f"max_pending_batches must be >= 1, got {self.max_pending_batches}"
            )
        if self.max_pending_bytes < 1:
            raise TenantError(
                f"max_pending_bytes must be >= 1, got {self.max_pending_bytes}"
            )
        if self.parallelism < 0:
            raise TenantError(f"parallelism must be >= 0, got {self.parallelism}")
        if self.execution_mode not in ("thread", "process"):
            raise TenantError(
                "execution_mode must be 'thread' or 'process', "
                f"got {self.execution_mode!r}"
            )
        if self.shards < 1:
            raise TenantError(f"shards must be >= 1, got {self.shards}")
        if self.shard_insert_only and not self.insert_only:
            # The facade's delete path is gone entirely; admitting
            # deletes at the tenant layer would commit batches the
            # profiler can never apply.
            raise TenantError(
                "shard_insert_only requires insert_only=true: the sharded "
                "fast path drops the delete handler"
            )

    def service_config(self) -> ServiceConfig:
        """The ServiceConfig this tenant's ProfilingService runs with."""
        return ServiceConfig(
            snapshot_every=self.snapshot_every,
            retain_snapshots=self.retain_snapshots,
            fsync=self.fsync,
            index_quota=self.index_quota,
            algorithm=self.algorithm,
            watches=self.watches,
            retry=self.retry,
            sentinel_every=self.sentinel_every,
            health_reset_batches=self.health_reset_batches,
            parallelism=self.parallelism,
            execution_mode=self.execution_mode,
            cache_budget_bytes=self.cache_budget_bytes,
            compact_live_fraction=self.compact_live_fraction,
            compact_min_rows=self.compact_min_rows,
            shards=self.shards,
            shard_insert_only=self.shard_insert_only,
        )

    def to_dict(self) -> dict[str, Any]:
        """JSON-able registry form (RetryPolicy stays implicit/default)."""
        return {
            "columns": list(self.columns),
            "insert_only": self.insert_only,
            "algorithm": self.algorithm,
            "watches": [list(watch) for watch in self.watches],
            "snapshot_every": self.snapshot_every,
            "retain_snapshots": self.retain_snapshots,
            "fsync": self.fsync,
            "index_quota": self.index_quota,
            "sentinel_every": self.sentinel_every,
            "health_reset_batches": self.health_reset_batches,
            "parallelism": self.parallelism,
            "execution_mode": self.execution_mode,
            "cache_budget_bytes": self.cache_budget_bytes,
            "compact_live_fraction": self.compact_live_fraction,
            "compact_min_rows": self.compact_min_rows,
            "shards": self.shards,
            "shard_insert_only": self.shard_insert_only,
            "max_pending_batches": self.max_pending_batches,
            "max_pending_bytes": self.max_pending_bytes,
        }

    @classmethod
    def from_dict(cls, body: Mapping[str, Any]) -> "TenantConfig":
        """Parse a registry entry (or an HTTP create request) strictly.

        Unknown keys are rejected: a typo'd knob silently ignored is a
        tenant running with defaults its operator believes are tuned.
        """
        if not isinstance(body, Mapping):
            raise TenantError(
                f"tenant config must be an object, got {type(body).__name__}"
            )
        known = set(cls(columns=("_",)).to_dict())  # serialized field names
        unknown = set(body) - known
        if unknown:
            raise TenantError(
                f"unknown tenant config key(s): {sorted(unknown)} "
                f"(known: {sorted(known)})"
            )
        if "columns" not in body:
            raise TenantError("tenant config needs 'columns'")
        columns = body["columns"]
        if not isinstance(columns, (list, tuple)):
            raise TenantError(
                f"'columns' must be a list of names, got {type(columns).__name__}"
            )
        kwargs: dict[str, Any] = {"columns": tuple(columns)}
        for key in known - {"columns"}:
            if key in body:
                value = body[key]
                kwargs[key] = value
        if "watches" in kwargs:
            watches = kwargs["watches"]
            if not isinstance(watches, (list, tuple)):
                raise TenantError("'watches' must be a list of column lists")
            kwargs["watches"] = tuple(
                tuple(str(col) for col in watch) for watch in watches
            )
        try:
            return cls(**kwargs)
        except TypeError as exc:
            raise TenantError(f"bad tenant config: {exc}") from exc
