"""The per-tenant single-writer thread draining the ingest queue.

Each tenant keeps the service layer's cardinal invariant -- exactly one
writer per state directory -- by funnelling every admitted batch
through one :class:`TenantWorker` thread. HTTP threads only enqueue;
the worker alone calls :meth:`ProfilingService.apply_batch`, so the
changelog's log-then-apply protocol and the flock story are untouched
by the move to N tenants per process.

Outcomes are first-class: every drained batch ends as ``applied``,
``duplicate`` (its token is already in the changelog -- the existing
changelog dedup, now reachable over HTTP), ``dead_lettered`` (failed
validation; evidence quarantined with a reason record) or
``rejected_health`` (the tenant's health ladder gates writes). The last
``results_cap`` outcomes are kept for the status endpoint, so a client
that got its ``202`` can find out what became of the batch.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass

from repro.errors import FlushTimeoutError, ServiceHealthError, WorkloadError
from repro.faults import fsops
from repro.sanitize import make_lock, register_fork_owner
from repro.service.server import ProfilingService
from repro.tenants.queue import IngestQueue, QueuedBatch

# Thread-death injection: the chaos sweep kills a tenant's writer mid
# drain (the thread is the failure domain here, not a file), and the
# fleet supervisor must notice the dead worker and recover the tenant.
SITE_WORKER_APPLY = fsops.register_site(
    "tenants.worker.apply", "tenant writer thread about to apply a batch"
)

APPLIED = "applied"
DUPLICATE = "duplicate"
DEAD_LETTERED = "dead_lettered"
REJECTED_HEALTH = "rejected_health"
FAILED = "failed"

_POLL_SECONDS = 0.05


@dataclass(frozen=True)
class BatchOutcome:
    """What happened to one admitted batch, for the status endpoint."""

    batch_id: int
    kind: str
    n_rows: int
    outcome: str
    detail: str = ""
    seq: int | None = None

    def to_dict(self) -> dict[str, object]:
        return {
            "batch_id": self.batch_id,
            "kind": self.kind,
            "n_rows": self.n_rows,
            "outcome": self.outcome,
            "detail": self.detail,
            "seq": self.seq,
        }


class TenantWorker:
    """Drains one tenant's :class:`IngestQueue` into its service."""

    def __init__(
        self,
        tenant_id: str,
        service: ProfilingService,
        queue: IngestQueue,
        lock: threading.RLock,
        results_cap: int = 64,
    ) -> None:
        self.tenant_id = tenant_id
        self.service = service
        self.queue = queue
        self.lock = lock
        self.results: deque[BatchOutcome] = deque(maxlen=results_cap)
        self._stop = threading.Event()
        self._pause = threading.Event()
        self._state_lock = make_lock("tenants.worker.state")
        self._idle = threading.Condition(self._state_lock)
        self._in_flight = False
        self._drained_total = 0
        self.death_reason: str | None = None
        self._thread = threading.Thread(
            target=self._guarded_run,
            name=f"tenant-writer-{tenant_id}",
            daemon=True,
        )
        register_fork_owner(self)

    def _reset_locks_after_fork(self) -> None:
        # The shared tenant RLock (``self.lock``) is reset by its owner,
        # the Tenant record; here only the worker-private pair. Lock and
        # Condition are rebuilt together (the Condition wraps the lock).
        self._state_lock = make_lock("tenants.worker.state")
        self._idle = threading.Condition(self._state_lock)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "TenantWorker":
        self._thread.start()
        return self

    def stop(self, drain: bool = True, timeout: float = 30.0) -> None:
        """Stop the writer; by default finish the queued work first.

        With ``drain=True`` an expired deadline is an *error*: raising
        :class:`~repro.errors.FlushTimeoutError` instead of returning
        quietly keeps "stopped" from ever meaning "dropped queued
        batches on the floor". ``drain=False`` is the explicit opt-out
        (forced drops, crash simulation).
        """
        drained = self.flush(timeout=timeout) if drain else True
        self._stop.set()
        self.queue.close()
        if self._thread.is_alive():
            self._thread.join(timeout=timeout)
        if drain and not drained:
            raise FlushTimeoutError(self.tenant_id, self.queue.depth())

    def pause(self) -> None:
        """Suspend draining (operator drains, deterministic 429 tests).

        Holding the queue as well makes the pause immediate even when
        the writer thread is currently blocked inside ``take``.
        """
        self._pause.set()
        self.queue.hold(True)

    def resume(self) -> None:
        self.queue.hold(False)
        self._pause.clear()

    @property
    def paused(self) -> bool:
        return self._pause.is_set()

    @property
    def alive(self) -> bool:
        return self._thread.is_alive()

    @property
    def drained_total(self) -> int:
        with self._state_lock:
            return self._drained_total

    def flush(self, timeout: float = 30.0) -> bool:
        """Block until the queue is empty and nothing is in flight.

        Returns ``False`` on timeout (or when the worker is paused with
        work still pending -- a paused writer can never drain).
        """
        deadline = time.monotonic() + timeout
        with self._idle:
            while (
                self.queue.depth() > 0 or self._in_flight
            ) and not self._pause.is_set():
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._idle.wait(min(remaining, _POLL_SECONDS * 4))
            return self.queue.depth() == 0 and not self._in_flight

    # ------------------------------------------------------------------
    # The drain loop
    # ------------------------------------------------------------------
    def _guarded_run(self) -> None:
        """The thread body: record *why* the writer died, then die.

        A writer thread can be killed by injected chaos (``CrashPoint``
        is a BaseException precisely so nothing absorbs it) or by a bug
        this layer did not anticipate. Either way the thread must not
        vanish silently: the supervisor polls ``alive`` and reads
        ``death_reason`` to explain the recovery it triggers.
        """
        try:
            self._run()
        except BaseException as exc:  # noqa: BLE001 - the death IS the event
            with self._idle:
                # Written under the state lock: the supervisor reads
                # death_reason from its own thread right after seeing
                # ``alive`` go False.
                self.death_reason = f"{type(exc).__name__}: {exc}"
                self._in_flight = False
                self._idle.notify_all()

    def _run(self) -> None:
        while True:
            if self._pause.is_set():
                if self._stop.is_set():
                    return
                time.sleep(_POLL_SECONDS)
                continue
            item = self.queue.take(timeout=_POLL_SECONDS)
            if item is None:
                with self._idle:
                    self._idle.notify_all()
                if self._stop.is_set() and self.queue.depth() == 0:
                    return
                continue
            # Thread-death fault site: a CrashPoint here kills the
            # writer with the batch un-applied (the token never
            # committed, so a supervised re-ingest replays it exactly
            # once).
            fsops.check(SITE_WORKER_APPLY)
            with self._state_lock:
                self._in_flight = True
            outcome: BatchOutcome | None = None
            try:
                outcome = self._apply_one(item)
            finally:
                with self._idle:
                    # results is read by status handlers on HTTP
                    # threads; append under the same lock that guards
                    # the rest of the drain bookkeeping.
                    if outcome is not None:
                        self.results.append(outcome)
                    self._in_flight = False
                    self._drained_total += 1
                    self._idle.notify_all()

    def _apply_one(self, item: QueuedBatch) -> BatchOutcome:
        batch = item.batch
        token = batch.token if isinstance(batch.token, str) else None
        with self.lock:
            if token is not None and self.service.is_token_known(token):
                self.queue.note_duplicate()
                return self._outcome(item, DUPLICATE, f"token {token!r} already committed")
            try:
                self.service.apply_batch(batch)
            except WorkloadError as exc:
                self.service.quarantine_batch(batch, exc)
                return self._outcome(item, DEAD_LETTERED, str(exc))
            except ServiceHealthError as exc:
                return self._outcome(item, REJECTED_HEALTH, str(exc))
            except Exception as exc:  # keep the writer thread alive
                # apply_batch handles its own IO retries/health; anything
                # escaping here is unexpected -- record it and degrade
                # this tenant rather than silently killing its writer.
                self.service.health.mark_degraded(
                    f"worker: {type(exc).__name__}: {exc}"
                )
                return self._outcome(
                    item, FAILED, f"{type(exc).__name__}: {exc}"
                )
            self.service.metrics.histogram("ingest_to_applied_seconds").observe(
                max(0.0, time.time() - item.enqueued_unix)
            )
            return self._outcome(item, APPLIED, seq=self.service.last_seq)

    def _outcome(
        self,
        item: QueuedBatch,
        outcome: str,
        detail: str = "",
        seq: int | None = None,
    ) -> BatchOutcome:
        return BatchOutcome(
            batch_id=item.batch_id,
            kind=item.batch.kind,
            n_rows=item.batch.n_rows,
            outcome=outcome,
            detail=detail,
            seq=seq,
        )
