"""The fleet supervisor: automatic recovery with a bounded temper.

PR 2 made a single :class:`~repro.service.server.ProfilingService`
self-healing against filesystem faults *across restarts* -- but nothing
restarted it. In a fleet, "a human notices the FAILED gauge and bounces
the process" does not scale past one tenant, so the
:class:`FleetSupervisor` closes the loop: a background thread watches
every tenant's health ladder and writer-thread liveness and recovers
unhealthy tenants through the existing snapshot+replay recovery path
(:meth:`~repro.tenants.manager.TenantManager.restart_tenant`).

Recovery is deliberately bounded and observable:

* **Exponential backoff** between attempts on one tenant -- a failing
  restart must not busy-loop.
* **Restart budget** (:class:`~repro.service.health.RestartBudget`): at
  most K restarts per rolling window. A tenant that keeps crashing is
  hitting a *deterministic* fault (corrupt state, a recovery bug);
  restart K+1 would behave exactly like restart K, so the supervisor
  parks it instead -- health PARKED, traffic refused, and a reason
  record persisted under ``<root>/parked/`` with the restart history.
* **Circuit breaker**: while recovery is in flight the tenant's ingest
  is shed with a typed :class:`~repro.errors.TenantRecoveringError`
  (HTTP ``503`` + ``Retry-After``) instead of racing the rebuild.
* **Event log**: the last 256 supervisor decisions ride along in
  ``/fleet/status`` so "what did the supervisor do at 3am" has an
  answer.

The supervisor never *invents* recovery: everything it does is a
composition of manager operations an operator could issue by hand
(``restart_tenant``, ``park``), which is also why the chaos sweep can
assert its behavior end to end.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.sanitize import make_rlock, register_fork_owner
from repro.service.health import HealthState, RestartBudget

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.tenants.manager import Tenant, TenantManager

# Health states the supervisor recovers from. DEGRADED heals by itself
# (clean-batch streak) and is not worth a restart; READ_ONLY and FAILED
# are cleared *only* by a restart, which is exactly what we provide.
_RECOVERABLE = (HealthState.READ_ONLY, HealthState.FAILED)


@dataclass(frozen=True)
class SupervisorConfig:
    """Tuning for the recovery loop (defaults suit a real deployment;
    tests and chaos scenarios shrink every knob)."""

    poll_interval: float = 0.25
    backoff_base: float = 0.5
    backoff_multiplier: float = 2.0
    backoff_max: float = 30.0
    max_restarts: int = 5
    budget_window_seconds: float = 300.0
    breaker_retry_after: float = 1.0


@dataclass
class _RecoveryPlan:
    """In-flight recovery state for one unhealthy tenant."""

    reason: str
    attempts: int = 0
    next_attempt: float = 0.0


@dataclass(frozen=True)
class SupervisorEvent:
    """One supervisor decision, for the event log."""

    unix: float
    action: str  # unhealthy | restarted | restart-failed | recovered | parked | error
    tenant_id: str
    detail: str = ""

    def to_dict(self) -> dict[str, object]:
        return {
            "unix": self.unix,
            "action": self.action,
            "tenant": self.tenant_id,
            "detail": self.detail,
        }


class FleetSupervisor:
    """Watches a :class:`TenantManager`'s fleet and recovers tenants."""

    def __init__(
        self,
        manager: "TenantManager",
        config: SupervisorConfig | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.manager = manager
        self.config = config or SupervisorConfig()
        self._clock = clock
        self._plans: dict[str, _RecoveryPlan] = {}
        # Budgets outlive plans on purpose: a tenant that "recovers"
        # and promptly fails again is one crash loop, not N fresh
        # incidents -- clearing history with the plan would make the
        # budget unreachable.
        self._budgets: dict[str, RestartBudget] = {}
        self.events: deque[SupervisorEvent] = deque(maxlen=256)
        self._lock = make_rlock("tenants.supervisor")
        self._stop_event = threading.Event()
        self._thread: threading.Thread | None = None
        register_fork_owner(self)

    def _reset_locks_after_fork(self) -> None:
        self._lock = make_rlock("tenants.supervisor")

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "FleetSupervisor":
        with self._lock:
            if self._thread is not None and self._thread.is_alive():
                return self
            self._stop_event.clear()
            thread = threading.Thread(
                target=self._run, name="fleet-supervisor", daemon=True
            )
            self._thread = thread
        thread.start()
        return self

    def stop(self, timeout: float = 10.0) -> None:
        self._stop_event.set()
        if self._thread is not None and self._thread.is_alive():
            self._thread.join(timeout=timeout)

    @property
    def alive(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def _run(self) -> None:
        while not self._stop_event.wait(self.config.poll_interval):
            try:
                self.check_once()
            except Exception as exc:  # noqa: BLE001 - the loop must survive
                self._note("error", "", f"{type(exc).__name__}: {exc}")

    # ------------------------------------------------------------------
    # One supervision pass (also the test/chaos entry point)
    # ------------------------------------------------------------------
    def check_once(self) -> list[str]:
        """Inspect every tenant; attempt due recoveries. Returns the ids
        acted on (restarted or parked) this pass."""
        acted: list[str] = []
        with self._lock:
            now = self._clock()
            open_tenants = {
                tenant.tenant_id: tenant for tenant in list(self.manager)
            }
            parked = set(self.manager.parked_ids())
            # Tenants mid-recovery may be closed (a restart attempt
            # died between teardown and reopen) -- keep chasing them.
            for tenant_id in sorted(set(open_tenants) | set(self._plans)):
                if tenant_id in parked:
                    self._plans.pop(tenant_id, None)
                    self.manager.clear_breaker(tenant_id)
                    continue
                reason = self._unhealthy_reason(open_tenants.get(tenant_id))
                if reason is None:
                    plan = self._plans.pop(tenant_id, None)
                    if plan is not None:
                        self.manager.clear_breaker(tenant_id)
                        self._note(
                            "recovered",
                            tenant_id,
                            f"healthy after {plan.attempts} restart(s)",
                        )
                    continue
                if self._recover_one(tenant_id, reason, now):
                    acted.append(tenant_id)
        return acted

    def _unhealthy_reason(self, tenant: "Tenant | None") -> str | None:
        if tenant is None:
            return "tenant not open (previous recovery attempt failed?)"
        if not tenant.worker.alive:
            death = tenant.worker.death_reason or "no reason recorded"
            return f"writer thread dead: {death}"
        state = tenant.service.health.state
        if state in _RECOVERABLE:
            error = tenant.service.health.last_error or "no error recorded"
            return f"health {state.value}: {error}"
        return None

    def _recover_one(self, tenant_id: str, reason: str, now: float) -> bool:
        plan = self._plans.get(tenant_id)
        if plan is None:
            plan = _RecoveryPlan(reason=reason, next_attempt=now)
            self._plans[tenant_id] = plan
            self.manager.set_breaker(
                tenant_id, self.config.breaker_retry_after
            )
            self._note("unhealthy", tenant_id, reason)
        if now < plan.next_attempt:
            return False
        budget = self._budgets.setdefault(
            tenant_id,
            RestartBudget(
                max_restarts=self.config.max_restarts,
                window_seconds=self.config.budget_window_seconds,
            ),
        )
        if budget.exhausted(now):
            self._plans.pop(tenant_id, None)
            try:
                self.manager.park(
                    tenant_id,
                    f"restart budget exhausted "
                    f"({budget.max_restarts} restarts within "
                    f"{budget.window_seconds:g}s); last fault: {reason}",
                    by="supervisor",
                    restarts=budget.history(),
                )
            except Exception as exc:  # noqa: BLE001 - keep supervising others
                self._note(
                    "error", tenant_id, f"park failed: {exc}"
                )
                return False
            self.manager.clear_breaker(tenant_id)
            self._note("parked", tenant_id, reason)
            return True
        budget.record(now)
        plan.attempts += 1
        delay = min(
            self.config.backoff_max,
            self.config.backoff_base
            * (self.config.backoff_multiplier ** (plan.attempts - 1)),
        )
        try:
            self.manager.restart_tenant(tenant_id)
        except Exception as exc:  # noqa: BLE001 - retry with backoff
            plan.next_attempt = self._clock() + delay
            self._note(
                "restart-failed",
                tenant_id,
                f"attempt {plan.attempts}: {type(exc).__name__}: {exc}",
            )
            return False
        # Keep the plan (and breaker) until a later pass observes the
        # reopened tenant healthy -- a restart that lands straight back
        # in READ_ONLY must feed the same backoff series.
        plan.next_attempt = self._clock() + delay
        self._note(
            "restarted", tenant_id, f"attempt {plan.attempts} ({reason})"
        )
        return True

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def _note(self, action: str, tenant_id: str, detail: str) -> None:
        # Reentrant under check_once()'s lock; the _run loop's error
        # path calls it bare, and status() reads events concurrently.
        with self._lock:
            self.events.append(
                SupervisorEvent(
                    unix=time.time(),
                    action=action,
                    tenant_id=tenant_id,
                    detail=detail,
                )
            )

    def status(self) -> dict[str, object]:
        """Supervisor vitals for ``/fleet/status``."""
        with self._lock:
            return {
                "alive": self.alive,
                "recovering": sorted(self._plans),
                "restart_budgets": {
                    tenant_id: len(budget.history())
                    for tenant_id, budget in self._budgets.items()
                    if budget.history()
                },
                "events": [event.to_dict() for event in list(self.events)],
            }
