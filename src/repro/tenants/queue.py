"""The bounded per-tenant async ingest queue with admission control.

HTTP ingest is asynchronous: ``POST .../batches`` enqueues and returns
``202`` immediately, and the tenant's single writer thread drains the
queue through the service's log-then-apply-then-ack protocol. The queue
is the pressure point of that design, so it is **bounded twice over**:

* ``max_pending_batches`` -- cap on queued batch count;
* ``max_pending_bytes`` -- cap on the payload bytes those batches hold.

:meth:`IngestQueue.put` rejects with a typed
:class:`~repro.errors.QueueFullError` the moment either limit would be
exceeded, which the HTTP layer maps to ``429``. A slow tenant therefore
exerts backpressure on *its own* producers instead of growing process
memory without bound -- and without touching its siblings' queues.

The queue also owns **pending-token dedup**: a token that is already
enqueued (but not yet committed to the changelog) is reported as a
duplicate at admission, closing the race between "client retried" and
"worker has not applied yet". Committed/quarantined tokens are the
service's changelog dedup, checked by the worker.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field

from repro.errors import QueueFullError
from repro.sanitize import make_lock, register_fork_owner
from repro.service.server import Batch


@dataclass(frozen=True)
class QueuedBatch:
    """One admitted batch waiting for the tenant's writer thread."""

    batch_id: int
    batch: Batch
    nbytes: int
    enqueued_unix: float


@dataclass
class QueueStats:
    """Point-in-time depth plus lifetime admission totals."""

    pending_batches: int = 0
    pending_bytes: int = 0
    enqueued_total: int = 0
    rejected_total: int = 0
    duplicate_total: int = 0

    def to_dict(self) -> dict[str, int]:
        return {
            "pending_batches": self.pending_batches,
            "pending_bytes": self.pending_bytes,
            "enqueued_total": self.enqueued_total,
            "rejected_total": self.rejected_total,
            "duplicate_total": self.duplicate_total,
        }


@dataclass
class IngestQueue:
    """A bounded FIFO of :class:`QueuedBatch` with admission control."""

    tenant_id: str
    max_pending_batches: int
    max_pending_bytes: int
    _items: deque[QueuedBatch] = field(default_factory=deque)
    _pending_bytes: int = 0
    _pending_tokens: set[str] = field(default_factory=set)
    _next_batch_id: int = 1
    _closed: bool = False
    _enqueued_total: int = 0
    _rejected_total: int = 0
    _duplicate_total: int = 0
    _held: bool = False

    def __post_init__(self) -> None:
        self._lock = make_lock("tenants.queue")
        self._not_empty = threading.Condition(self._lock)
        register_fork_owner(self)

    def _reset_locks_after_fork(self) -> None:
        # The Condition wraps the lock, so both must be rebuilt
        # together or waiters would synchronize on a dead lock.
        self._lock = make_lock("tenants.queue")
        self._not_empty = threading.Condition(self._lock)

    # ------------------------------------------------------------------
    # Producer side (HTTP threads)
    # ------------------------------------------------------------------
    def put(self, batch: Batch, nbytes: int, now: float) -> QueuedBatch:
        """Admit one batch or raise :class:`QueueFullError`.

        ``nbytes`` is the producer's payload size (the HTTP request
        body); accounting it instead of a recomputed estimate keeps the
        limit meaningful to the client that must react to 429s.
        """
        with self._not_empty:
            if self._closed:
                raise QueueFullError(
                    self.tenant_id,
                    len(self._items),
                    self._pending_bytes,
                    0,
                    0,
                )
            if (
                len(self._items) >= self.max_pending_batches
                or self._pending_bytes + nbytes > self.max_pending_bytes
            ):
                self._rejected_total += 1
                raise QueueFullError(
                    self.tenant_id,
                    len(self._items),
                    self._pending_bytes,
                    self.max_pending_batches,
                    self.max_pending_bytes,
                )
            item = QueuedBatch(
                batch_id=self._next_batch_id,
                batch=batch,
                nbytes=nbytes,
                enqueued_unix=now,
            )
            self._next_batch_id += 1
            self._items.append(item)
            self._pending_bytes += nbytes
            self._enqueued_total += 1
            if isinstance(batch.token, str):
                self._pending_tokens.add(batch.token)
            self._not_empty.notify()
            return item

    def is_token_pending(self, token: str) -> bool:
        """Is a batch with this delivery token already enqueued?"""
        with self._lock:
            return token in self._pending_tokens

    def note_duplicate(self) -> None:
        with self._lock:
            self._duplicate_total += 1

    # ------------------------------------------------------------------
    # Consumer side (the tenant's single writer thread)
    # ------------------------------------------------------------------
    def take(self, timeout: float) -> QueuedBatch | None:
        """Pop the oldest batch, waiting up to ``timeout`` seconds.

        Returns ``None`` on timeout or once the queue is closed *and*
        drained -- the worker's signal to exit.
        """
        with self._not_empty:
            if (self._held or not self._items) and not self._closed:
                self._not_empty.wait(timeout)
            if self._held or not self._items:
                return None
            item = self._items.popleft()
            self._pending_bytes -= item.nbytes
            token = item.batch.token
            if isinstance(token, str):
                self._pending_tokens.discard(token)
            self._not_empty.notify_all()
            return item

    def hold(self, held: bool) -> None:
        """Gate the consumer side: while held, :meth:`take` yields nothing.

        The worker's ``pause()`` sets this so a pause is effective even
        when the writer thread is already blocked inside :meth:`take` --
        without it, the first batch enqueued after a pause would still
        be consumed (the pause flag is only checked between takes).
        """
        with self._not_empty:
            self._held = held
            self._not_empty.notify_all()

    def close(self) -> None:
        """Stop admitting; wake any waiting consumer."""
        with self._not_empty:
            self._closed = True
            self._not_empty.notify_all()

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def depth(self) -> int:
        with self._lock:
            return len(self._items)

    def stats(self) -> QueueStats:
        with self._lock:
            return QueueStats(
                pending_batches=len(self._items),
                pending_bytes=self._pending_bytes,
                enqueued_total=self._enqueued_total,
                rejected_total=self._rejected_total,
                duplicate_total=self._duplicate_total,
            )
