"""Multi-tenant hosting of profiling services (one process, N tenants).

The package behind the HTTP front-end (:mod:`repro.server`):

* :mod:`repro.tenants.config` -- :class:`TenantConfig`, the durable
  per-tenant description (schema, insert-only mode, service and
  performance knobs, queue limits).
* :mod:`repro.tenants.queue` -- :class:`IngestQueue`, the bounded
  async ingest queue with admission control and typed backpressure
  (:class:`~repro.errors.QueueFullError`).
* :mod:`repro.tenants.worker` -- :class:`TenantWorker`, the per-tenant
  single writer draining the queue through the commit protocol.
* :mod:`repro.tenants.manager` -- :class:`TenantManager`, tenant
  lifecycle (create/open/close/drop/park/recover), the atomically
  persisted registry, batch routing, and per-tenant/fleet status.
* :mod:`repro.tenants.supervisor` -- :class:`FleetSupervisor`, the
  background recovery loop: watches health and worker liveness,
  restarts unhealthy tenants with backoff under a restart budget, and
  parks crash-looping tenants with a persisted reason record.
"""

from repro.tenants.config import TenantConfig, validate_tenant_id
from repro.tenants.manager import Tenant, TenantManager
from repro.tenants.queue import IngestQueue, QueueStats, QueuedBatch
from repro.tenants.supervisor import (
    FleetSupervisor,
    SupervisorConfig,
    SupervisorEvent,
)
from repro.tenants.worker import BatchOutcome, TenantWorker

__all__ = [
    "BatchOutcome",
    "FleetSupervisor",
    "IngestQueue",
    "QueueStats",
    "QueuedBatch",
    "SupervisorConfig",
    "SupervisorEvent",
    "Tenant",
    "TenantConfig",
    "TenantManager",
    "TenantWorker",
    "validate_tenant_id",
]
