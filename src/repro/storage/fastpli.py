"""Array-backed position list indexes for bulk lattice traversal.

DUCC classifies tens of thousands of column combinations per run, each
via PLI intersection; the pointer-based
:class:`~repro.storage.pli.PositionListIndex` pays Python-level cost
per tuple, which dominates the whole benchmark suite. This module keeps
the same semantics in flat numpy arrays:

* ``ids``    -- the clustered tuple IDs (only tuples in groups >= 2),
* ``labels`` -- the cluster label of each entry of ``ids``,
* ``dense``  -- (built on demand) label per tuple ID, -1 when
  unclustered, enabling O(1) vectorized membership probes.

Intersection is a sort over combined (left label, right label) keys --
all C-speed. Equivalence with the reference PLI is property-tested
(``tests/properties/test_prop_fastpli.py``).

Only the *static* engines (DUCC, DUCC-INC) use this class; SWAN's
delete handler needs the reference PLI's incremental add/remove and
cluster bookkeeping.
"""

from __future__ import annotations

from typing import Hashable, Iterator

import numpy as np

from repro.storage.kernels import in_sorted
from repro.storage.relation import Relation


class ArrayPli:
    """An immutable PLI over a fixed tuple-ID space."""

    __slots__ = ("ids", "labels", "capacity", "_dense", "_span")

    def __init__(self, ids: np.ndarray, labels: np.ndarray, capacity: int) -> None:
        self.ids = ids
        self.labels = labels
        self.capacity = capacity
        self._dense: np.ndarray | None = None
        self._span = int(labels.max()) + 1 if labels.size else 1

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def for_column(cls, relation: Relation, column: int) -> "ArrayPli":
        """Build from one column's live values."""
        groups: dict[Hashable, list[int]] = {}
        for tuple_id, value in relation.column_values(column):
            groups.setdefault(value, []).append(tuple_id)
        ids: list[int] = []
        labels: list[int] = []
        label = 0
        for members in groups.values():
            if len(members) >= 2:
                ids.extend(members)
                labels.extend([label] * len(members))
                label += 1
        return cls(
            np.asarray(ids, dtype=np.int64),
            np.asarray(labels, dtype=np.int64),
            relation.next_tuple_id,
        )

    @classmethod
    def single_cluster(cls, tuple_ids: list[int], capacity: int) -> "ArrayPli":
        """The PLI of the empty combination (all tuples together)."""
        if len(tuple_ids) < 2:
            return cls(
                np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64), capacity
            )
        ids = np.asarray(tuple_ids, dtype=np.int64)
        return cls(ids, np.zeros(len(tuple_ids), dtype=np.int64), capacity)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def has_duplicates(self) -> bool:
        return self.ids.size > 0

    def n_entries(self) -> int:
        return int(self.ids.size)

    def n_clusters(self) -> int:
        return int(np.unique(self.labels).size) if self.labels.size else 0

    def resident_nbytes(self) -> int:
        """Bytes actually held by this partition *right now*.

        Includes the lazily-built dense map once materialized -- on a
        cached partition that is usually the dominant term (eight bytes
        per tuple of capacity), so budget accounting must see it.
        """
        total = int(self.ids.nbytes) + int(self.labels.nbytes)
        if self._dense is not None:
            total += int(self._dense.nbytes)
        return total

    @property
    def dense(self) -> np.ndarray:
        """Label per tuple ID (-1 = unclustered), built lazily.

        Callers that keep many derived PLIs alive should prefer keeping
        ``dense`` only on the (few, reused) single-column PLIs; see
        :meth:`intersect`.
        """
        if self._dense is None:
            dense = np.full(self.capacity, -1, dtype=np.int64)
            if self.ids.size:
                dense[self.ids] = self.labels
            self._dense = dense
        return self._dense

    def clusters(self) -> Iterator[frozenset[int]]:
        """Materialize the position lists (reporting / tests only)."""
        if not self.ids.size:
            return
        order = np.argsort(self.labels, kind="stable")
        ids = self.ids[order]
        labels = self.labels[order]
        boundaries = np.flatnonzero(np.r_[True, labels[1:] != labels[:-1], True])
        for start, stop in zip(boundaries[:-1], boundaries[1:]):
            yield frozenset(int(tuple_id) for tuple_id in ids[start:stop])

    def clusters_containing_ids(self, tuple_ids: np.ndarray) -> "ArrayPli":
        """The entries of clusters containing any of ``tuple_ids``.

        This is the *restricted* partition of Section IV-B: when
        checking whether a delete batch destroyed a non-unique, only
        position lists that contained deleted tuples matter. Labels are
        kept as-is (intersection only needs them distinct per cluster).
        """
        empty = np.empty(0, dtype=np.int64)
        if not self.ids.size or not tuple_ids.size:
            return ArrayPli(empty, empty, self.capacity)
        if self._dense is not None:
            hit = self._dense[tuple_ids]
            hit = hit[hit >= 0]
        else:
            # Dense-free probe: gallop the entries through the (small,
            # sorted) id set instead of materializing a capacity-sized
            # map just to answer one restriction.
            hit = self.labels[in_sorted(self.ids, np.sort(tuple_ids))]
        if not hit.size:
            return ArrayPli(empty, empty, self.capacity)
        wanted = np.zeros(self._span, dtype=bool)
        wanted[hit] = True
        keep = wanted[self.labels]
        return ArrayPli(self.ids[keep], self.labels[keep], self.capacity)

    def without_ids(self, doomed: np.ndarray) -> "ArrayPli":
        """The partition after deleting the flagged tuple IDs.

        ``doomed`` is a boolean array over the tuple-ID space
        (``capacity`` long). Deletes can only shrink position lists, so
        filtering a partition of the pre-delete state yields exactly
        the partition of the post-delete state: surviving members keep
        their cluster label and groups falling under two members are
        dropped. This is what lets the cross-batch partition cache
        serve last batch's partitions against this batch's deletes.
        """
        empty = np.empty(0, dtype=np.int64)
        if not self.ids.size:
            return ArrayPli(empty, empty, self.capacity)
        keep = ~doomed[self.ids]
        ids = self.ids[keep]
        labels = self.labels[keep]
        if ids.size:
            counts = np.bincount(labels, minlength=self._span)
            survivors = counts[labels] >= 2
            ids = ids[survivors]
            labels = labels[survivors]
        if not ids.size:
            return ArrayPli(empty, empty, self.capacity)
        return ArrayPli(ids, labels, self.capacity)

    # ------------------------------------------------------------------
    # Intersection
    # ------------------------------------------------------------------
    def intersect(self, other: "ArrayPli") -> "ArrayPli":
        """The PLI of the combined combination.

        Probes ``other``'s dense map with this PLI's entries, so call
        it as ``derived.intersect(column_pli)``: the dense map is then
        cached on the long-lived column PLI, never on throwaways.
        """
        if not self.ids.size or not other.ids.size:
            return ArrayPli(
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.int64),
                self.capacity,
            )
        partner = other.dense[self.ids]
        keep = partner >= 0
        ids = self.ids[keep]
        if ids.size < 2:
            return ArrayPli(
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.int64),
                self.capacity,
            )
        keys = self.labels[keep] * np.int64(other._span) + partner[keep]
        order = np.argsort(keys, kind="stable")
        keys = keys[order]
        ids = ids[order]
        new_group = np.empty(keys.size, dtype=bool)
        new_group[0] = True
        np.not_equal(keys[1:], keys[:-1], out=new_group[1:])
        labels = np.cumsum(new_group) - 1
        sizes = np.diff(np.flatnonzero(new_group), append=keys.size)
        in_real_group = np.repeat(sizes >= 2, sizes)
        return ArrayPli(ids[in_real_group], labels[in_real_group], self.capacity)

    def __repr__(self) -> str:
        return f"ArrayPli(entries={self.ids.size}, clusters={self.n_clusters()})"
