"""Single-column inverted indexes: value -> tuple IDs.

These are the indexes SWAN's insert path probes (paper Section III-B/C):
for a batch of inserted tuples and a minimal unique U, the IDs of old
tuples that *might* duplicate an insert on U are found by looking up the
inserts' values in the indexes covering U and intersecting the results.

Postings are keyed by the column's dictionary code
(:mod:`repro.storage.encoding`) and stored as sorted, read-only numpy
ID arrays, so batch maintenance is one vectorized pass per column and
per-MUC candidate intersection runs on integers at C speed. The
value-level ``add`` / ``remove`` / ``lookup`` API is unchanged;
``lookup`` returns a cached immutable view that is invalidated on
mutation, so hot-path probes never copy the posting.

The index stores every value (including currently-singleton ones),
because after future inserts a singleton value may gain partners.
Deletes are applied eagerly; empty postings are dropped.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator, Sequence

import numpy as np

from repro.storage.encoding import ColumnEncoding
from repro.storage.kernels import setdiff_sorted
from repro.storage.relation import Relation

_EMPTY = np.empty(0, dtype=np.int64)
_EMPTY.flags.writeable = False


def _frozen(array: np.ndarray) -> np.ndarray:
    array.flags.writeable = False
    return array


class ValueIndex:
    """Inverted index over one column of a relation.

    ``encoding`` is normally the relation's own
    :class:`~repro.storage.encoding.ColumnEncoding` for the column, so
    posting keys agree with the relation's code arrays and batch
    maintenance needs no value hashing; a standalone index interns into
    a private dictionary instead.
    """

    __slots__ = ("_column", "_encoding", "_postings", "_views")

    def __init__(self, column: int, encoding: ColumnEncoding | None = None) -> None:
        self._column = column
        self._encoding = encoding if encoding is not None else ColumnEncoding()
        self._postings: dict[int, np.ndarray] = {}
        self._views: dict[int, frozenset[int]] = {}

    @classmethod
    def build(cls, relation: Relation, column: int) -> "ValueIndex":
        """Index every live tuple of ``relation`` on ``column``."""
        index = cls(column, encoding=relation.encoding.column(column))
        ids = relation.live_ids_array()
        if ids.size:
            codes = relation.codes_for_ids(column, ids)
            index.add_batch(codes, ids)
        return index

    @property
    def column(self) -> int:
        """The indexed column's position in the schema."""
        return self._column

    @property
    def encoding(self) -> ColumnEncoding:
        """The dictionary the posting keys refer to."""
        return self._encoding

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def add(self, value: Hashable, tuple_id: int) -> None:
        """Register one (value, tuple ID) pair.

        Appending to an existing posting or creating a new key-value
        pair, exactly as the paper describes index maintenance after
        inserts (Section III-D).
        """
        code = self._encoding.encode(value)
        posting = self._postings.get(code)
        if posting is None:
            self._postings[code] = _frozen(np.asarray([tuple_id], dtype=np.int64))
        else:
            slot = int(np.searchsorted(posting, tuple_id))
            if slot < posting.size and posting[slot] == tuple_id:
                return  # already present; posting and view stay valid
            self._postings[code] = _frozen(
                np.insert(posting, slot, np.int64(tuple_id))
            )
        self._views.pop(code, None)

    def remove(self, value: Hashable, tuple_id: int) -> None:
        """Drop one (value, tuple ID) pair if present."""
        code = self._encoding.code_of(value)
        if code is None:
            return
        posting = self._postings.get(code)
        if posting is None:
            return
        slot = int(np.searchsorted(posting, tuple_id))
        if slot >= posting.size or posting[slot] != tuple_id:
            return
        if posting.size == 1:
            del self._postings[code]
        else:
            self._postings[code] = _frozen(np.delete(posting, slot))
        self._views.pop(code, None)

    def add_batch(self, codes: np.ndarray, tuple_ids: np.ndarray) -> None:
        """Register a batch of (code, tuple ID) pairs in one pass.

        ``codes[i]`` is the dictionary code of ``tuple_ids[i]``'s value.
        Fresh inserts carry IDs above every indexed one, so the common
        case is a pure concatenation per touched posting; out-of-order
        IDs fall back to a sorted merge.
        """
        ids = np.asarray(tuple_ids, dtype=np.int64)
        codes = np.asarray(codes, dtype=np.int64)
        if not ids.size:
            return
        order = np.argsort(codes, kind="stable")
        sorted_codes = codes[order]
        sorted_ids = ids[order]
        boundaries = np.flatnonzero(
            np.r_[True, sorted_codes[1:] != sorted_codes[:-1], True]
        )
        for start, stop in zip(boundaries[:-1], boundaries[1:]):
            code = int(sorted_codes[start])
            fresh = sorted_ids[start:stop]
            if fresh.size > 1 and np.any(fresh[1:] <= fresh[:-1]):
                fresh = np.unique(fresh)
            posting = self._postings.get(code)
            if posting is None:
                merged = fresh.copy()
            elif posting[-1] < fresh[0]:
                merged = np.concatenate([posting, fresh])
            else:
                merged = np.union1d(posting, fresh)
            self._postings[code] = _frozen(merged)
            self._views.pop(code, None)

    def remove_batch(self, codes: np.ndarray, tuple_ids: np.ndarray) -> None:
        """Unregister a batch of (code, tuple ID) pairs in one pass."""
        ids = np.asarray(tuple_ids, dtype=np.int64)
        codes = np.asarray(codes, dtype=np.int64)
        if not ids.size:
            return
        order = np.argsort(codes, kind="stable")
        sorted_codes = codes[order]
        sorted_ids = ids[order]
        boundaries = np.flatnonzero(
            np.r_[True, sorted_codes[1:] != sorted_codes[:-1], True]
        )
        for start, stop in zip(boundaries[:-1], boundaries[1:]):
            code = int(sorted_codes[start])
            posting = self._postings.get(code)
            if posting is None:
                continue
            # The stable argsort orders by code only, so the group's ids
            # arrive in input order; sort them once to unlock the
            # searchsorted membership kernel.
            doomed = np.sort(sorted_ids[start:stop])
            keep = setdiff_sorted(posting, doomed)
            if keep.size:
                self._postings[code] = _frozen(keep)
            else:
                del self._postings[code]
            self._views.pop(code, None)

    # ------------------------------------------------------------------
    # Probing
    # ------------------------------------------------------------------
    def lookup(self, value: Hashable) -> frozenset[int]:
        """Tuple IDs whose column value equals ``value``.

        Returns a cached immutable view; the cache entry is dropped
        whenever the posting changes, so callers can hold the result
        without copying and without observing later mutations.
        """
        code = self._encoding.code_of(value)
        if code is None:
            return frozenset()
        view = self._views.get(code)
        if view is None:
            posting = self._postings.get(code)
            if posting is None:
                return frozenset()
            view = frozenset(posting.tolist())
            self._views[code] = view
        return view

    def lookup_array(self, value: Hashable) -> np.ndarray:
        """The sorted posting array for ``value`` (read-only, no copy)."""
        code = self._encoding.code_of(value)
        if code is None:
            return _EMPTY
        return self._postings.get(code, _EMPTY)

    def lookup_batch(self, values: Sequence[Hashable]) -> list[np.ndarray]:
        """Postings for a batch of values, aligned with ``values``.

        One dictionary probe per value; unseen values map to the shared
        empty array. Arrays are the live read-only postings -- no copy.
        """
        code_of = self._encoding.code_of
        postings = self._postings
        return [
            postings.get(code, _EMPTY) if (code := code_of(value)) is not None
            else _EMPTY
            for value in values
        ]

    def lookup_many(self, values: Iterable[Hashable]) -> set[int]:
        """Union of postings over distinct ``values`` (one pass)."""
        result: set[int] = set()
        # dict.fromkeys: dedup with deterministic (first-seen) order.
        for posting in self.lookup_batch(list(dict.fromkeys(values))):
            if posting.size:
                result.update(posting.tolist())
        return result

    def __contains__(self, value: Hashable) -> bool:
        code = self._encoding.code_of(value)
        return code is not None and code in self._postings

    def __len__(self) -> int:
        """Number of distinct indexed values."""
        return len(self._postings)

    def n_entries(self) -> int:
        """Total number of (value, tuple ID) pairs."""
        return sum(int(posting.size) for posting in self._postings.values())

    def iter_values(self) -> Iterator[Hashable]:
        decode = self._encoding.decode
        return (decode(code) for code in self._postings)

    def __repr__(self) -> str:
        return f"ValueIndex(column={self._column}, values={len(self._postings)})"


class IndexPool:
    """The set of value indexes SWAN maintains, keyed by column.

    Provides the bulk-maintenance entry points the handlers call after
    each accepted batch.
    """

    __slots__ = ("_indexes",)

    def __init__(self, indexes: Iterable[ValueIndex] = ()) -> None:
        self._indexes: dict[int, ValueIndex] = {}
        for index in indexes:
            self._indexes[index.column] = index

    @classmethod
    def build(cls, relation: Relation, columns: Iterable[int]) -> "IndexPool":
        return cls(ValueIndex.build(relation, column) for column in sorted(set(columns)))

    @property
    def columns(self) -> frozenset[int]:
        """The indexed columns."""
        return frozenset(self._indexes)

    def __contains__(self, column: int) -> bool:
        return column in self._indexes

    def __len__(self) -> int:
        return len(self._indexes)

    def get(self, column: int) -> ValueIndex:
        # The pool's contract *is* shared ownership of the maintained
        # index; callers go through the index's read API.
        return self._indexes[column]  # reprolint: disable=R3

    def add_index(self, index: ValueIndex) -> None:
        self._indexes[index.column] = index

    def ensure(self, relation: Relation, column: int) -> ValueIndex:
        """Return the index on ``column``, building it if absent."""
        if column not in self._indexes:
            self._indexes[column] = ValueIndex.build(relation, column)
        # Shared-ownership contract, as in :meth:`get`.
        return self._indexes[column]  # reprolint: disable=R3

    def register_inserts(self, relation: Relation, tuple_ids: Iterable[int]) -> None:
        """Index a batch of freshly inserted tuples: one pass per column.

        When an index shares the relation's dictionary (the normal
        case), the batch's codes are gathered straight from the code
        arrays -- no per-tuple value access, no hashing.
        """
        ids = np.fromiter((int(t) for t in tuple_ids), dtype=np.int64)
        if not ids.size:
            return
        for column, index in self._indexes.items():
            if index.encoding is relation.encoding.column(column):
                index.add_batch(relation.codes_for_ids(column, ids), ids)
            else:  # foreign index: fall back to value-level maintenance
                for tuple_id in ids:
                    index.add(relation.value(int(tuple_id), column), int(tuple_id))

    def register_deletes(
        self, rows_by_id: dict[int, tuple], relation: Relation | None = None
    ) -> None:
        """Unindex deleted tuples, given their pre-delete rows.

        With ``relation`` supplied (whose storage still holds the
        tombstoned rows), codes are gathered from the code arrays; the
        value-level fallback covers standalone pools.
        """
        if not rows_by_id:
            return
        ids = np.fromiter((int(t) for t in rows_by_id), dtype=np.int64)
        for column, index in self._indexes.items():
            if (
                relation is not None
                and index.encoding is relation.encoding.column(column)
            ):
                index.remove_batch(relation.codes_for_ids(column, ids), ids)
            else:
                for tuple_id, row in rows_by_id.items():
                    index.remove(row[column], tuple_id)

    def __repr__(self) -> str:
        return f"IndexPool(columns={sorted(self._indexes)})"
