"""Single-column inverted indexes: value -> tuple IDs.

These are the indexes SWAN's insert path probes (paper Section III-B/C):
for a batch of inserted tuples and a minimal unique U, the IDs of old
tuples that *might* duplicate an insert on U are found by looking up the
inserts' values in the indexes covering U and intersecting the results.

The index stores every value (including currently-singleton ones),
because after future inserts a singleton value may gain partners.
Deletes are applied eagerly; empty postings are dropped.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator

from repro.storage.relation import Relation


class ValueIndex:
    """Inverted index over one column of a relation."""

    __slots__ = ("_column", "_postings")

    def __init__(self, column: int) -> None:
        self._column = column
        self._postings: dict[Hashable, set[int]] = {}

    @classmethod
    def build(cls, relation: Relation, column: int) -> "ValueIndex":
        """Index every live tuple of ``relation`` on ``column``."""
        index = cls(column)
        for tuple_id, value in relation.column_values(column):
            index.add(value, tuple_id)
        return index

    @property
    def column(self) -> int:
        """The indexed column's position in the schema."""
        return self._column

    def add(self, value: Hashable, tuple_id: int) -> None:
        """Register one (value, tuple ID) pair.

        Appending to an existing posting or creating a new key-value
        pair, exactly as the paper describes index maintenance after
        inserts (Section III-D).
        """
        self._postings.setdefault(value, set()).add(tuple_id)

    def remove(self, value: Hashable, tuple_id: int) -> None:
        """Drop one (value, tuple ID) pair if present."""
        posting = self._postings.get(value)
        if posting is None:
            return
        posting.discard(tuple_id)
        if not posting:
            del self._postings[value]

    def lookup(self, value: Hashable) -> frozenset[int]:
        """Tuple IDs whose column value equals ``value``."""
        posting = self._postings.get(value)
        return frozenset(posting) if posting else frozenset()

    def lookup_many(self, values: Iterable[Hashable]) -> set[int]:
        """Union of postings over distinct ``values`` (one pass)."""
        result: set[int] = set()
        for value in set(values):
            posting = self._postings.get(value)
            if posting:
                result |= posting
        return result

    def __contains__(self, value: Hashable) -> bool:
        return value in self._postings

    def __len__(self) -> int:
        """Number of distinct indexed values."""
        return len(self._postings)

    def n_entries(self) -> int:
        """Total number of (value, tuple ID) pairs."""
        return sum(len(posting) for posting in self._postings.values())

    def iter_values(self) -> Iterator[Hashable]:
        return iter(self._postings)

    def __repr__(self) -> str:
        return f"ValueIndex(column={self._column}, values={len(self._postings)})"


class IndexPool:
    """The set of value indexes SWAN maintains, keyed by column.

    Provides the bulk-maintenance entry points the handlers call after
    each accepted batch.
    """

    __slots__ = ("_indexes",)

    def __init__(self, indexes: Iterable[ValueIndex] = ()) -> None:
        self._indexes: dict[int, ValueIndex] = {}
        for index in indexes:
            self._indexes[index.column] = index

    @classmethod
    def build(cls, relation: Relation, columns: Iterable[int]) -> "IndexPool":
        return cls(ValueIndex.build(relation, column) for column in sorted(set(columns)))

    @property
    def columns(self) -> frozenset[int]:
        """The indexed columns."""
        return frozenset(self._indexes)

    def __contains__(self, column: int) -> bool:
        return column in self._indexes

    def __len__(self) -> int:
        return len(self._indexes)

    def get(self, column: int) -> ValueIndex:
        return self._indexes[column]

    def add_index(self, index: ValueIndex) -> None:
        self._indexes[index.column] = index

    def ensure(self, relation: Relation, column: int) -> ValueIndex:
        """Return the index on ``column``, building it if absent."""
        if column not in self._indexes:
            self._indexes[column] = ValueIndex.build(relation, column)
        return self._indexes[column]

    def register_inserts(self, relation: Relation, tuple_ids: Iterable[int]) -> None:
        """Index a batch of freshly inserted tuples."""
        ids = list(tuple_ids)
        for column, index in self._indexes.items():
            for tuple_id in ids:
                index.add(relation.value(tuple_id, column), tuple_id)

    def register_deletes(self, rows_by_id: dict[int, tuple]) -> None:
        """Unindex deleted tuples, given their pre-delete rows."""
        for column, index in self._indexes.items():
            for tuple_id, row in rows_by_id.items():
                index.remove(row[column], tuple_id)

    def __repr__(self) -> str:
        return f"IndexPool(columns={sorted(self._indexes)})"
