"""Schemas: ordered, named columns of a relation."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from repro.errors import SchemaError, UnknownColumnError
from repro.lattice.combination import ColumnCombination, mask_of


@dataclass(frozen=True)
class Column:
    """Metadata for one column.

    ``dtype`` is informational (generators tag columns ``str`` / ``int``
    / ``float`` / ``date``); the storage layer treats all values as
    opaque hashables.
    """

    name: str
    dtype: str = "str"

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("column name must be non-empty")


class Schema:
    """An ordered list of uniquely named columns."""

    __slots__ = ("_columns", "_positions")

    def __init__(self, columns: Iterable[Column | str]) -> None:
        resolved = [
            column if isinstance(column, Column) else Column(column)
            for column in columns
        ]
        names = [column.name for column in resolved]
        if len(set(names)) != len(names):
            duplicates = sorted({name for name in names if names.count(name) > 1})
            raise SchemaError(f"duplicate column names: {duplicates}")
        self._columns: tuple[Column, ...] = tuple(resolved)
        self._positions: dict[str, int] = {
            column.name: index for index, column in enumerate(resolved)
        }

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(column.name for column in self._columns)

    @property
    def columns(self) -> tuple[Column, ...]:
        return self._columns

    def __len__(self) -> int:
        return len(self._columns)

    def __iter__(self) -> Iterator[Column]:
        return iter(self._columns)

    def __getitem__(self, index: int) -> Column:
        return self._columns[index]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Schema):
            return self._columns == other._columns
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._columns)

    def index_of(self, column: str | int) -> int:
        """Resolve a column name or index to an index."""
        if isinstance(column, int):
            if not 0 <= column < len(self._columns):
                raise UnknownColumnError(column, len(self._columns))
            return column
        try:
            return self._positions[column]
        except KeyError:
            raise UnknownColumnError(column, list(self.names)) from None

    def mask(self, columns: Iterable[str | int]) -> int:
        """Bitmask of a collection of column names/indices."""
        return mask_of(self.index_of(column) for column in columns)

    def combination(self, mask_or_columns: int | Iterable[str | int]) -> ColumnCombination:
        """Wrap a mask (or collection of columns) with this schema's names."""
        if isinstance(mask_or_columns, int):
            return ColumnCombination(mask_or_columns, self.names)
        return ColumnCombination(self.mask(mask_or_columns), self.names)

    def project(self, names: Sequence[str]) -> "Schema":
        """A new schema containing only ``names``, in the given order."""
        return Schema([self._columns[self.index_of(name)] for name in names])

    def prefix(self, n_columns: int) -> "Schema":
        """A new schema with only the first ``n_columns`` columns."""
        if not 0 < n_columns <= len(self._columns):
            raise SchemaError(
                f"cannot take {n_columns}-column prefix of {len(self._columns)}-column schema"
            )
        return Schema(self._columns[:n_columns])

    def __repr__(self) -> str:
        return f"Schema({list(self.names)!r})"


def schema_of(names: Sequence[str]) -> Schema:
    """Convenience constructor used throughout tests and examples."""
    return Schema([Column(name) for name in names])


@dataclass
class SchemaStats:
    """Per-column statistics computed by :mod:`repro.profiling.stats`."""

    cardinalities: list[int] = field(default_factory=list)
    row_count: int = 0

    def selectivity(self, column: int) -> float:
        """Distinct-value fraction of a column (paper Section III-D)."""
        if self.row_count == 0:
            return 0.0
        return self.cardinalities[column] / self.row_count
