"""Position list indexes (PLIs).

A PLI for a column combination K is the list of *position lists*: groups
of tuple IDs sharing the same value combination on K, keeping only
groups of size >= 2 (paper Section IV-B, following TANE / DUCC). A
combination is non-unique exactly when its PLI is non-empty.

The PLI of K1 ∪ K2 is the *intersection* of the PLIs of K1 and K2,
computed with the standard probe-table method: tuples clustered together
in both inputs stay together.

Single-column PLIs built with ``track_values=True`` are fully dynamic:
inserts and deletes maintain them incrementally (SWAN keeps one per
column so the delete handler never rescans the relation). Derived
(intersected) PLIs are throwaway values and do not track values.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator

from repro.lattice.combination import iter_bits
from repro.storage.relation import Relation


class PositionListIndex:
    """Groups of tuple IDs with equal projections, groups of size >= 2."""

    __slots__ = ("_clusters", "_membership", "_next_cluster", "_cluster_by_value", "_singletons")

    def __init__(self, track_values: bool = False) -> None:
        self._clusters: dict[int, set[int]] = {}
        self._membership: dict[int, int] = {}
        self._next_cluster = 0
        self._cluster_by_value: dict[Hashable, int] | None = (
            {} if track_values else None
        )
        self._singletons: dict[Hashable, int] | None = {} if track_values else None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def for_column(
        cls, relation: Relation, column: int, track_values: bool = True
    ) -> "PositionListIndex":
        """Build the PLI of one column over the live tuples."""
        pli = cls(track_values=track_values)
        if track_values:
            for tuple_id, value in relation.column_values(column):
                pli.add(value, tuple_id)
        else:
            groups: dict[Hashable, list[int]] = {}
            for tuple_id, value in relation.column_values(column):
                groups.setdefault(value, []).append(tuple_id)
            for ids in groups.values():
                if len(ids) >= 2:
                    pli._new_cluster(ids)
        return pli

    @classmethod
    def for_mask(cls, relation: Relation, mask: int) -> "PositionListIndex":
        """Build the PLI of a column combination by direct grouping."""
        pli = cls()
        for ids in relation.group_duplicates(mask).values():
            pli._new_cluster(ids)
        return pli

    @classmethod
    def from_clusters(cls, clusters: Iterable[Iterable[int]]) -> "PositionListIndex":
        pli = cls()
        for ids in clusters:
            materialized = list(ids)
            if len(materialized) >= 2:
                pli._new_cluster(materialized)
        return pli

    def _new_cluster(self, ids: Iterable[int]) -> int:
        cluster_id = self._next_cluster
        self._next_cluster += 1
        members = set(ids)
        self._clusters[cluster_id] = members
        for tuple_id in members:
            self._membership[tuple_id] = cluster_id
        return cluster_id

    # ------------------------------------------------------------------
    # Dynamic maintenance (value-tracking PLIs only)
    # ------------------------------------------------------------------
    def add(self, value: Hashable, tuple_id: int) -> None:
        """Register an inserted tuple's value (track_values mode)."""
        if self._cluster_by_value is None or self._singletons is None:
            raise ValueError("this PLI does not track values; rebuild instead")
        cluster_id = self._cluster_by_value.get(value)
        if cluster_id is not None:
            self._clusters[cluster_id].add(tuple_id)
            self._membership[tuple_id] = cluster_id
            return
        partner = self._singletons.pop(value, None)
        if partner is None:
            self._singletons[value] = tuple_id
            return
        new_cluster = self._new_cluster((partner, tuple_id))
        self._cluster_by_value[value] = new_cluster

    def remove(self, value: Hashable, tuple_id: int) -> None:
        """Unregister a deleted tuple's value (track_values mode).

        When a position list shrinks to one member it is dropped (the
        paper: "if the removal of an ID from a PL changes its
        cardinality to 1, the PL can be omitted") -- but the surviving
        member is remembered as a singleton so later inserts of the same
        value re-create the list.
        """
        if self._cluster_by_value is None or self._singletons is None:
            raise ValueError("this PLI does not track values; rebuild instead")
        cluster_id = self._membership.pop(tuple_id, None)
        if cluster_id is None:
            if self._singletons.get(value) == tuple_id:
                del self._singletons[value]
            return
        cluster = self._clusters[cluster_id]
        cluster.discard(tuple_id)
        if len(cluster) == 1:
            survivor = next(iter(cluster))
            del self._membership[survivor]
            del self._clusters[cluster_id]
            del self._cluster_by_value[value]
            self._singletons[value] = survivor

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def has_duplicates(self) -> bool:
        """Non-empty PLI <=> the combination is non-unique."""
        return bool(self._clusters)

    def n_clusters(self) -> int:
        return len(self._clusters)

    def n_entries(self) -> int:
        """Total IDs across all position lists."""
        return len(self._membership)

    def cluster_of(self, tuple_id: int) -> int | None:
        """The cluster ID containing ``tuple_id``, or None if unclustered."""
        return self._membership.get(tuple_id)

    def __contains__(self, tuple_id: int) -> bool:
        return tuple_id in self._membership

    def clusters(self) -> Iterator[frozenset[int]]:
        for members in self._clusters.values():
            yield frozenset(members)

    def clusters_containing(self, tuple_ids: Iterable[int]) -> list[frozenset[int]]:
        """The distinct position lists touching any of ``tuple_ids``."""
        seen: set[int] = set()
        result: list[frozenset[int]] = []
        for tuple_id in tuple_ids:
            cluster_id = self._membership.get(tuple_id)
            if cluster_id is not None and cluster_id not in seen:
                seen.add(cluster_id)
                result.append(frozenset(self._clusters[cluster_id]))
        return result

    # ------------------------------------------------------------------
    # Intersection
    # ------------------------------------------------------------------
    def intersect(self, other: "PositionListIndex") -> "PositionListIndex":
        """The PLI of the union of both combinations (probe method)."""
        smaller, larger = (
            (self, other) if self.n_entries() <= other.n_entries() else (other, self)
        )
        result = PositionListIndex()
        for members in smaller._clusters.values():
            subgroups: dict[int, list[int]] = {}
            for tuple_id in members:
                partner = larger._membership.get(tuple_id)
                if partner is not None:
                    subgroups.setdefault(partner, []).append(tuple_id)
            for ids in subgroups.values():
                if len(ids) >= 2:
                    result._new_cluster(ids)
        return result

    def intersect_restricted(
        self, other: "PositionListIndex", tuple_ids: Iterable[int]
    ) -> "PositionListIndex":
        """Intersection restricted to clusters touching ``tuple_ids``.

        The short-circuit of Section IV-B: when checking whether a batch
        of deletes destroyed a non-unique, only position lists that
        contained deleted tuples matter.
        """
        relevant = self.clusters_containing(tuple_ids)
        result = PositionListIndex()
        for members in relevant:
            subgroups: dict[int, list[int]] = {}
            for tuple_id in members:
                partner = other._membership.get(tuple_id)
                if partner is not None:
                    subgroups.setdefault(partner, []).append(tuple_id)
            for ids in subgroups.values():
                if len(ids) >= 2:
                    result._new_cluster(ids)
        return result

    def remove_ids(self, tuple_ids: Iterable[int]) -> None:
        """Drop IDs (derived PLIs; value-tracking ones use :meth:`remove`)."""
        for tuple_id in tuple_ids:
            cluster_id = self._membership.pop(tuple_id, None)
            if cluster_id is None:
                continue
            cluster = self._clusters[cluster_id]
            cluster.discard(tuple_id)
            if len(cluster) <= 1:
                for survivor in cluster:
                    del self._membership[survivor]
                del self._clusters[cluster_id]

    def copy(self) -> "PositionListIndex":
        clone = PositionListIndex()
        for members in self._clusters.values():
            clone._new_cluster(members)
        return clone

    def __repr__(self) -> str:
        return (
            f"PositionListIndex(clusters={len(self._clusters)}, "
            f"entries={len(self._membership)})"
        )


def pli_for_combination(
    relation: Relation,
    mask: int,
    column_plis: dict[int, PositionListIndex],
    cache: "object | None" = None,
    generation: int = 0,
) -> PositionListIndex:
    """Cross-intersect per-column PLIs to obtain the PLI of ``mask``.

    Intersections are ordered smallest-first, which keeps intermediate
    results small; an intermediate empty PLI short-circuits.

    The returned PLI is always the caller's to mutate: whenever the
    computation would alias a maintained column PLI -- one column, or
    an early break before the first intersection because the cheapest
    column has no duplicates -- a copy is returned instead. (An aliased
    return used to hand callers the live value-tracking index, where a
    ``remove_ids`` or later column ``add`` silently corrupted it.)

    ``cache`` is an optional
    :class:`~repro.storage.plicache.PartitionCache`; hits and stored
    results are keyed on the relation's applied-batch ``generation`` so
    a stale partition is never served. Cached objects stay internal --
    the caller always receives a private copy.
    """
    columns = sorted(iter_bits(mask), key=lambda c: column_plis[c].n_entries())
    if not columns:
        # The empty combination clusters every pair of live tuples.
        ids = list(relation.iter_ids())
        return PositionListIndex.from_clusters([ids] if len(ids) >= 2 else [])
    if cache is not None:
        hit = cache.get(mask, generation, kind="pli")
        if hit is not None:
            return hit.copy()
    derived = False
    current = column_plis[columns[0]]
    remaining = columns[1:]
    if cache is not None and remaining:
        found = cache.best_ancestor(mask, generation, kind="pli")
        if found is not None:
            seed_mask, seed = found
            current = seed
            remaining = sorted(
                iter_bits(mask & ~seed_mask),
                key=lambda c: column_plis[c].n_entries(),
            )
    for column in remaining:
        if not current.has_duplicates:
            break
        current = current.intersect(column_plis[column])
        derived = True
    result = current if derived else current.copy()
    if cache is not None:
        cache.put(mask, generation, result, kind="pli")
        return result.copy()
    return result
