"""Sparse index: tuple ID -> byte offset, with mixed-mode retrieval.

SWAN's insert workflow collects the union of all candidate tuple IDs and
then "retrieves in one run all relevant tuples by a mix of random
accesses and sequential scans of the initial dataset" (paper Section
III-A, Alg. 1 line 6). This module implements that retrieval policy over
any storage that can (a) seek to a tuple by offset and (b) scan tuples
sequentially from an offset.

The policy: sort the requested IDs; whenever the gap between two
consecutive requested tuples is at most ``scan_gap`` tuples, keep
scanning sequentially instead of issuing a new random seek. The
:class:`RetrievalStats` it returns make the random/sequential mix
observable (used by the index-analysis benchmarks).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Hashable, Iterable, Sequence

Row = tuple[Hashable, ...]


@dataclass
class RetrievalStats:
    """Bookkeeping of one :meth:`SparseIndex.retrieve_tuples` run."""

    requested: int = 0
    random_seeks: int = 0
    tuples_scanned: int = 0

    def merge(self, other: "RetrievalStats") -> None:
        self.requested += other.requested
        self.random_seeks += other.random_seeks
        self.tuples_scanned += other.tuples_scanned


@dataclass
class SparseIndex:
    """Maps tuple IDs to byte offsets in an underlying tuple store.

    ``seek_read`` returns the (tuple ID, row) found at a byte offset and
    the offset of the *next* tuple, so the index can continue reading
    sequentially. The in-memory and CSV-backed stores both provide it
    (:mod:`repro.storage.table_file`).
    """

    seek_read: Callable[[int], tuple[int, Row, int]]
    offsets: dict[int, int] = field(default_factory=dict)
    scan_gap: int = 16

    def register(self, tuple_id: int, offset: int) -> None:
        self.offsets[tuple_id] = offset

    def forget(self, tuple_ids: Iterable[int]) -> None:
        for tuple_id in tuple_ids:
            self.offsets.pop(tuple_id, None)

    def __len__(self) -> int:
        return len(self.offsets)

    def retrieve_tuples(
        self, tuple_ids: Iterable[int]
    ) -> tuple[dict[int, Row], RetrievalStats]:
        """Fetch the rows for ``tuple_ids`` with the mixed-mode policy."""
        wanted = sorted(set(tuple_ids))
        stats = RetrievalStats(requested=len(wanted))
        rows: dict[int, Row] = {}
        position = -1  # tuple ID the cursor is about to read, -1 = nowhere
        next_offset = -1
        for target in wanted:
            gap = target - position
            if position < 0 or gap < 0 or gap > self.scan_gap:
                next_offset = self.offsets[target]
                stats.random_seeks += 1
                position = target
            # Scan forward (possibly over unrequested tuples) to target.
            while True:
                found_id, row, next_offset = self.seek_read(next_offset)
                stats.tuples_scanned += 1
                position = found_id + 1
                if found_id == target:
                    rows[target] = row
                    break
                if found_id > target:  # pragma: no cover - defensive
                    raise KeyError(f"tuple {target} missing from store")
        return rows, stats


def build_in_memory_store(
    rows: Sequence[Row],
) -> tuple[Callable[[int], tuple[int, Row, int]], dict[int, int]]:
    """An in-memory 'file' of tuples: offset == tuple ID.

    Returns the ``seek_read`` callable and the offsets map, ready to
    construct a :class:`SparseIndex`. Used when the initial dataset is
    kept in memory but SWAN's retrieval accounting should still apply.
    """
    store = list(rows)

    def seek_read(offset: int) -> tuple[int, Row, int]:
        return offset, store[offset], offset + 1

    offsets = {tuple_id: tuple_id for tuple_id in range(len(store))}
    return seek_read, offsets


def sparse_index_for_relation(relation) -> SparseIndex:
    """A sparse index over a live :class:`~repro.storage.relation.Relation`.

    The relation acts as the tuple store; the 'offset' is the tuple ID
    itself and tombstoned IDs are skipped during sequential scans. This
    is the default store used by :class:`~repro.core.swan.SwanProfiler`
    unless a file-backed table is supplied.
    """

    def seek_read(offset: int) -> tuple[int, Row, int]:
        position = offset
        while not relation.is_live(position):
            position += 1
        row = relation.row(position)
        return position, row, position + 1

    index = SparseIndex(seek_read=seek_read)
    for tuple_id in relation.iter_ids():
        index.register(tuple_id, tuple_id)
    return index
