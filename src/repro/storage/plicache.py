"""Cross-batch partition cache for intersected PLIs.

SWAN's dynamic cost is dominated by PLI intersections: every delete
batch used to rebuild its derived partitions from the maintained
per-column PLIs and throw them away when the batch committed. This
module keeps those partitions alive *across* batches:

* Entries are tagged with the relation's **applied-batch generation**.
  Every committed insert/delete batch bumps the generation, so an entry
  can only ever be served against the exact relation state it was
  computed for -- a stale partition is evicted on sight, never
  returned.
* Lookup is **subset-aware**: a miss on mask K can still be seeded from
  the cached entry whose column set is the largest subset of K at the
  current generation (:meth:`PartitionCache.best_ancestor`). This
  generalizes the single-parent probe the delete handler's per-batch
  cache performed (``post_pli`` checking ``mask & ~bit``) to arbitrary
  cached ancestors from *previous* batches.
* Eviction is a **byte-budgeted LRU**: every ``put`` accounts an
  estimated footprint and evicts least-recently-used entries until the
  cache fits the budget again. Entries larger than the whole budget are
  simply not stored.

The cache stores both partition representations used in the codebase --
:class:`~repro.storage.fastpli.ArrayPli` (vectorized delete-path
descent) and :class:`~repro.storage.pli.PositionListIndex`
(``pli_for_combination`` / ``approximation_degree``). Cached objects
are treated as immutable: callers that may mutate a partition must copy
it first (``pli_for_combination`` does).

All operations take the cache lock, so the parallel fan-out executor
(:mod:`repro.core.parallel`) can share one cache across worker threads.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Mapping

from repro.sanitize import make_lock, register_fork_owner

DEFAULT_BUDGET_BYTES = 64 * 1024 * 1024

# Rough per-entry overhead (object headers, dict slot, key).
_ENTRY_OVERHEAD = 128
# Estimated bytes per clustered tuple ID in a pointer-based PLI (the
# set/dict entries dominate; numpy-backed partitions report exactly).
_POINTER_ENTRY_COST = 96


def partition_nbytes(partition: object) -> int:
    """Estimated resident footprint of one cached partition.

    Array partitions report their *current* resident size, including
    the lazily-built dense probe map once it materializes -- an entry
    measured before its first ``intersect`` probe would otherwise be
    charged a fraction of what it really holds (the dense map is eight
    bytes per tuple of capacity, usually the dominant term), letting
    the cache silently exceed its byte budget.
    """
    resident = getattr(partition, "resident_nbytes", None)
    if resident is not None:  # ArrayPli: exact array sizes
        return int(resident()) + _ENTRY_OVERHEAD
    ids = getattr(partition, "ids", None)
    if ids is not None:  # array-shaped duck type without the method
        labels = getattr(partition, "labels", ids)
        return int(ids.nbytes) + int(labels.nbytes) + _ENTRY_OVERHEAD
    n_entries = partition.n_entries()
    n_clusters = partition.n_clusters()
    return _POINTER_ENTRY_COST * (n_entries + n_clusters) + _ENTRY_OVERHEAD


@dataclass
class CacheStats:
    """Observable cache behaviour, published via ``stats()``."""

    hits: int = 0
    misses: int = 0
    stale_misses: int = 0  # right mask, wrong generation (never served)
    ancestor_seeds: int = 0  # misses rescued by a cached subset
    stores: int = 0
    evictions: int = 0

    def to_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stale_misses": self.stale_misses,
            "ancestor_seeds": self.ancestor_seeds,
            "stores": self.stores,
            "evictions": self.evictions,
        }


@dataclass(frozen=True)
class _Entry:
    generation: int
    partition: object
    nbytes: int


class PartitionCache:
    """Generation-tagged, byte-budgeted LRU cache of derived partitions."""

    def __init__(self, budget_bytes: int | None = DEFAULT_BUDGET_BYTES) -> None:
        """``budget_bytes=None`` means unbounded; ``0`` stores nothing.

        Entries are keyed by ``(kind, mask)`` -- the vectorized delete
        descent caches :class:`~repro.storage.fastpli.ArrayPli` objects
        under ``kind="array"`` while ``pli_for_combination`` caches
        pointer-based PLIs under ``kind="pli"``; the two never collide
        even though both speak column masks.
        """
        self._budget = budget_bytes
        self._entries: "OrderedDict[tuple[str, int], _Entry]" = OrderedDict()
        self._bytes = 0
        self._lock = make_lock("storage.plicache")
        self.stats = CacheStats()
        # Process-mode fan-out forks workers while the parent may be
        # running service threads; a lock captured mid-acquire would
        # deadlock the child on its first cache probe. Children get
        # fresh (unlocked) locks via the shared at-fork registry.
        register_fork_owner(self)

    def _reset_locks_after_fork(self) -> None:
        self._lock = make_lock("storage.plicache")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def budget_bytes(self) -> int | None:
        return self._budget

    @property
    def current_bytes(self) -> int:
        return self._bytes

    def __len__(self) -> int:
        return len(self._entries)

    def stats_dict(self) -> dict[str, int]:
        with self._lock:
            return {
                **self.stats.to_dict(),
                "entries": len(self._entries),
                "bytes": self._bytes,
            }

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def get(
        self, mask: int, generation: int, kind: str = "array"
    ) -> object | None:
        """The cached partition of ``mask`` at exactly ``generation``.

        An entry tagged with any other generation describes a different
        relation state; it is dropped on the spot and the lookup misses.
        """
        key = (kind, mask)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return None
            if entry.generation != generation:
                self._drop(key, entry)
                self.stats.misses += 1
                self.stats.stale_misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            entry = self._remeasure_locked(key, entry)
            # Documented cache contract: hits are live; callers copy
            # before mutating (pli_for_combination does hit.copy()).
            return entry.partition  # reprolint: disable=R3

    def best_ancestor(
        self, mask: int, generation: int, kind: str = "array"
    ) -> tuple[int, object] | None:
        """The cached entry whose mask is the largest proper subset of
        ``mask`` at ``generation`` (the seed for a partial intersection).

        The empty mask is never an ancestor: seeding from the
        all-tuples partition is the same as starting from scratch.
        """
        best_mask = 0
        best: object | None = None
        with self._lock:
            for (entry_kind, key), entry in self._entries.items():
                if entry_kind != kind or entry.generation != generation:
                    continue
                if key and key != mask and key | mask == mask:
                    if best is None or key.bit_count() > best_mask.bit_count():
                        best_mask, best = key, entry.partition
            if best is None:
                return None
            best_key = (kind, best_mask)
            self._entries.move_to_end(best_key)
            self.stats.ancestor_seeds += 1
            self._remeasure_locked(best_key, self._entries[best_key])
            return best_mask, best

    # ------------------------------------------------------------------
    # Insertion / invalidation
    # ------------------------------------------------------------------
    def put(
        self, mask: int, generation: int, partition: object, kind: str = "array"
    ) -> None:
        """Store (or refresh) one partition, evicting LRU entries past
        the byte budget."""
        nbytes = partition_nbytes(partition)
        if self._budget is not None and nbytes > self._budget:
            return
        key = (kind, mask)
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= old.nbytes
            self._entries[key] = _Entry(generation, partition, nbytes)
            self._bytes += nbytes
            self.stats.stores += 1
            self._evict_over_budget_locked(protect=key)

    def _remeasure_locked(self, key: tuple[str, int], entry: _Entry) -> _Entry:
        """Refresh one entry's byte accounting against its live size.

        A partition can *grow* after it was stored (ArrayPli builds its
        dense probe map on the first intersection), so every touch
        re-measures the entry and re-enforces the budget -- protecting
        the touched key, exactly as ``put`` protects a just-stored one.
        """
        nbytes = partition_nbytes(entry.partition)
        if nbytes == entry.nbytes:
            return entry
        self._bytes += nbytes - entry.nbytes
        refreshed = _Entry(entry.generation, entry.partition, nbytes)
        self._entries[key] = refreshed
        self._evict_over_budget_locked(protect=key)
        return refreshed

    def _evict_over_budget_locked(self, protect: tuple[str, int]) -> None:
        if self._budget is None:
            return
        while self._bytes > self._budget and len(self._entries) > 1:
            victim, entry = self._entries.popitem(last=False)
            if victim == protect:  # never evict the protected key
                self._entries[victim] = entry
                self._entries.move_to_end(victim, last=False)
                break
            self._bytes -= entry.nbytes
            self.stats.evictions += 1

    def put_many(
        self,
        partitions: Mapping[int, object],
        generation: int,
        kind: str = "array",
    ) -> None:
        """Publish a batch of partitions (e.g. a delete descent's cache)."""
        for mask, partition in partitions.items():
            self.put(mask, generation, partition, kind=kind)

    def _drop(self, key: tuple[str, int], entry: _Entry) -> None:
        del self._entries[key]
        self._bytes -= entry.nbytes
        self.stats.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._bytes = 0

    def __repr__(self) -> str:
        return (
            f"PartitionCache(entries={len(self._entries)}, "
            f"bytes={self._bytes}, budget={self._budget})"
        )
