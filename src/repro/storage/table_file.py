"""CSV-backed tuple store with byte offsets for the sparse index.

The paper keeps the initial dataset on disk and fetches only the few
candidate tuples the value indexes point at, via a sparse index mapping
tuple ID -> byte offset (Section III-A). :class:`TableFile` provides
that store: one tuple per line, prefixed with its tuple ID, written once
when the initial dataset is sealed and appended to after each accepted
insert batch.
"""

from __future__ import annotations

import csv
import io
import os
from typing import Hashable, Iterable, Sequence

from repro.errors import TupleIdError
from repro.faults import fsops
from repro.storage.relation import Relation
from repro.storage.sparse_index import SparseIndex

SITE_OPEN = fsops.register_site(
    "table.open", "open the on-disk tuple store"
)
SITE_APPEND_WRITE = fsops.register_site(
    "table.append.write", "append one serialized tuple"
)
SITE_SYNC_FSYNC = fsops.register_site(
    "table.sync.fsync", "fsync the tuple store after sealing/appending"
)
SITE_SEEK_READ = fsops.register_site(
    "table.seek_read", "random-access read of one tuple by byte offset"
)
SITE_REMOVE = fsops.register_site(
    "table.remove", "remove a stale tuple store before re-creating it"
)

Row = tuple[Hashable, ...]


class TableFile:
    """An append-only on-disk tuple store addressed by byte offset.

    Values are serialized with ``csv`` (all cells become strings). A
    relation whose cells are not all strings will round-trip through
    ``str``; the provided dataset generators emit string cells for
    exactly this reason.
    """

    def __init__(self, path: str) -> None:
        self._path = path
        self._handle = fsops.open_(SITE_OPEN, path, "a+", newline="")
        self._offsets: dict[int, int] = {}

    @classmethod
    def create(cls, path: str, relation: Relation) -> "TableFile":
        """Write all live tuples of ``relation`` to a fresh file.

        The initial dataset is fsynced once sealed, so a crash right
        after profiling cannot lose the tuple store the sparse index
        points into. If sealing fails partway, the handle is closed
        rather than leaked.
        """
        if os.path.exists(path):
            fsops.remove(SITE_REMOVE, path)
        table = cls(path)
        try:
            table.append_batch(relation.iter_items())
            table.sync()
        except BaseException:
            table.close()
            raise
        return table

    @property
    def path(self) -> str:
        return self._path

    def append_batch(self, items: Iterable[tuple[int, Sequence[Hashable]]]) -> None:
        """Append (tuple ID, row) pairs, recording their offsets."""
        self._handle.seek(0, os.SEEK_END)
        for tuple_id, row in items:
            offset = self._handle.tell()
            buffer = io.StringIO()
            writer = csv.writer(buffer)
            writer.writerow([tuple_id, *row])
            fsops.write(SITE_APPEND_WRITE, self._handle, buffer.getvalue())
            self._offsets[tuple_id] = offset
        self._handle.flush()

    def seek_read(self, offset: int) -> tuple[int, Row, int]:
        """Read the tuple at ``offset``; also return the next offset."""
        fsops.check(SITE_SEEK_READ)
        self._handle.seek(offset)
        line = self._handle.readline()
        if not line:
            raise TupleIdError(f"no tuple at offset {offset} in {self._path}")
        next_offset = self._handle.tell()
        cells = next(csv.reader([line]))
        return int(cells[0]), tuple(cells[1:]), next_offset

    def sparse_index(self, scan_gap: int = 16, shared: bool = False) -> SparseIndex:
        """A sparse index over this file's recorded offsets.

        With ``shared=True`` the index aliases this table's offset map,
        so offsets recorded by later :meth:`append_batch` calls are
        visible without re-building -- the mode
        :class:`~repro.core.swan.SwanProfiler` uses when it owns the
        table.
        """
        offsets = self._offsets if shared else dict(self._offsets)
        return SparseIndex(
            seek_read=self.seek_read,
            offsets=offsets,
            scan_gap=scan_gap,
        )

    def sync(self) -> None:
        """Flush and fsync the underlying file."""
        self._handle.flush()
        fsops.fsync(SITE_SYNC_FSYNC, self._handle)

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "TableFile":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"TableFile({self._path!r}, tuples={len(self._offsets)})"
