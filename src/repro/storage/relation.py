"""In-memory columnar relation with stable tuple IDs.

The relation is the shared substrate of every algorithm in this
repository (SWAN, GORDIAN, DUCC, brute force, the DBMS-X simulation),
so all systems pay the same storage costs and runtime comparisons stay
meaningful.

Storage model
-------------
* Column-major: each column holds its values in storage-position order,
  together with an incrementally maintained dictionary encoding
  (:mod:`repro.storage.encoding`): a value -> int code mapping plus a
  flat numpy code array. Vectorized consumers (value indexes, the
  duplicate manager, the delete handler's partitions) work on the code
  arrays; the value-level API below is unchanged.
* A tuple ID is assigned at insert, is append-only, and is never
  reused. Storage positions initially equal tuple IDs; after
  :meth:`compact_in_place` an id -> position indirection keeps every
  ID stable while tombstoned storage is reclaimed.
* Deletes are tombstones (``_live[pos] = False``); under delete-heavy
  workloads a caller reclaims the dead storage with
  :meth:`compact_in_place` (IDs survive) or rebuilds a fresh relation
  with :meth:`compact` (IDs renumbered).
"""

from __future__ import annotations

import csv
from typing import Callable, Hashable, Iterable, Iterator, Sequence

import numpy as np

from repro.errors import ArityError, TupleIdError
from repro.faults import fsops
from repro.lattice.combination import columns_of
from repro.storage.encoding import RelationEncoding
from repro.storage.schema import Schema

SITE_CSV_READ_OPEN = fsops.register_site(
    "relation.csv.read.open", "open a CSV dataset for loading"
)
SITE_CSV_WRITE_OPEN = fsops.register_site(
    "relation.csv.write.open", "open a CSV export for writing"
)

Row = tuple[Hashable, ...]


class Relation:
    """A mutable relational instance over a fixed :class:`Schema`."""

    __slots__ = (
        "_schema",
        "_columns",
        "_live",
        "_live_count",
        "_encoding",
        "_ids",
        "_pos",
        "_next_id",
    )

    def __init__(self, schema: Schema) -> None:
        self._schema = schema
        self._columns: list[list[Hashable]] = [[] for _ in range(len(schema))]
        self._live: list[bool] = []
        self._live_count = 0
        self._encoding = RelationEncoding(len(schema))
        # Position == tuple ID until the first in-place compaction;
        # afterwards _ids maps position -> ID and _pos maps ID -> position.
        self._ids: list[int] | None = None
        self._pos: dict[int, int] | None = None
        self._next_id = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_rows(cls, schema: Schema, rows: Iterable[Sequence[Hashable]]) -> "Relation":
        relation = cls(schema)
        relation.insert_many(rows)
        return relation

    @classmethod
    def from_csv(
        cls,
        path: str,
        schema: Schema | None = None,
        delimiter: str = ",",
    ) -> "Relation":
        """Load a relation from a CSV file with a header row.

        When ``schema`` is given, the header must match its names; when
        omitted, the header defines a fresh all-string schema.
        """
        with fsops.open_(SITE_CSV_READ_OPEN, path, newline="") as handle:
            reader = csv.reader(handle, delimiter=delimiter)
            header = next(reader)
            if schema is None:
                schema = Schema(header)
            elif list(schema.names) != header:
                raise ArityError(
                    f"CSV header {header!r} does not match schema {list(schema.names)!r}"
                )
            return cls.from_rows(schema, (tuple(row) for row in reader))

    def to_csv(self, path: str, delimiter: str = ",") -> None:
        """Write the live rows (with a header) to ``path``."""
        with fsops.open_(SITE_CSV_WRITE_OPEN, path, "w", newline="") as handle:
            writer = csv.writer(handle, delimiter=delimiter)
            writer.writerow(self._schema.names)
            for tuple_id in self.iter_ids():
                writer.writerow(self.row(tuple_id))

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert(self, row: Sequence[Hashable]) -> int:
        """Append one tuple; returns its tuple ID."""
        if len(row) != len(self._schema):
            raise ArityError(
                f"row has {len(row)} values, schema has {len(self._schema)} columns"
            )
        for column_store, value in zip(self._columns, row):
            column_store.append(value)
        self._encoding.append_row(row)
        tuple_id = self._next_id
        if self._pos is not None:
            self._pos[tuple_id] = len(self._live)
            self._ids.append(tuple_id)  # type: ignore[union-attr]
        self._live.append(True)
        self._live_count += 1
        self._next_id += 1
        return tuple_id

    def insert_many(self, rows: Iterable[Sequence[Hashable]]) -> list[int]:
        """Append a batch of tuples; returns their tuple IDs.

        One pass per column (values and dictionary codes) instead of
        one pass per cell.
        """
        batch = [tuple(row) for row in rows]
        if not batch:
            return []
        n_columns = len(self._schema)
        for row in batch:
            if len(row) != n_columns:
                raise ArityError(
                    f"row has {len(row)} values, schema has "
                    f"{n_columns} columns"
                )
        first_position = len(self._live)
        for column, column_store in enumerate(self._columns):
            values = [row[column] for row in batch]
            column_store.extend(values)
            self._encoding.column(column).append_batch(values)
        tuple_ids = list(range(self._next_id, self._next_id + len(batch)))
        if self._pos is not None:
            for offset, tuple_id in enumerate(tuple_ids):
                self._pos[tuple_id] = first_position + offset
            self._ids.extend(tuple_ids)  # type: ignore[union-attr]
        self._live.extend([True] * len(batch))
        self._live_count += len(batch)
        self._next_id += len(batch)
        return tuple_ids

    def delete(self, tuple_id: int) -> Row:
        """Tombstone one tuple; returns the removed row."""
        position = self._check_live(tuple_id)
        self._live[position] = False
        self._live_count -= 1
        return tuple(column[position] for column in self._columns)

    def delete_many(self, tuple_ids: Iterable[int]) -> list[Row]:
        """Tombstone a batch of tuples; returns the removed rows."""
        return [self.delete(tuple_id) for tuple_id in tuple_ids]

    def compact(self) -> "Relation":
        """A fresh relation containing only the live rows (new IDs)."""
        return Relation.from_rows(self._schema, self.iter_rows())

    def compact_in_place(self) -> int:
        """Reclaim tombstoned storage; every live tuple keeps its ID.

        Rewrites the value columns and code arrays down to the live
        positions and installs the id -> position indirection. The code
        dictionaries are untouched (codes are stable identities), so
        value indexes, PLIs, sparse-index offsets and cached partitions
        -- all keyed by tuple ID or code -- stay valid. Returns the
        number of tombstones reclaimed.
        """
        reclaimed = len(self._live) - self._live_count
        if reclaimed == 0:
            return 0
        keep = np.flatnonzero(np.asarray(self._live, dtype=bool))
        ids = self._ids
        self._columns = [
            [column[position] for position in keep] for column in self._columns
        ]
        self._encoding.compact(keep)
        if ids is None:
            surviving = [int(position) for position in keep]
        else:
            surviving = [ids[position] for position in keep]
        self._ids = surviving
        self._pos = {tuple_id: index for index, tuple_id in enumerate(surviving)}
        self._live = [True] * len(surviving)
        return reclaimed

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def n_columns(self) -> int:
        return len(self._schema)

    @property
    def next_tuple_id(self) -> int:
        """The ID the next inserted tuple will receive."""
        return self._next_id

    @property
    def encoding(self) -> RelationEncoding:
        """The per-column dictionary encodings (see module docstring)."""
        return self._encoding

    @property
    def storage_rows(self) -> int:
        """Occupied storage positions (live rows + tombstones)."""
        return len(self._live)

    @property
    def tombstone_count(self) -> int:
        return len(self._live) - self._live_count

    @property
    def live_fraction(self) -> float:
        """Live rows over occupied storage; 1.0 when storage is empty."""
        return self._live_count / len(self._live) if self._live else 1.0

    def __len__(self) -> int:
        """Number of *live* tuples."""
        return self._live_count

    def _position(self, tuple_id: int) -> int:
        """The storage position of a tuple ID, -1 when absent."""
        if self._pos is None:
            return tuple_id if 0 <= tuple_id < len(self._live) else -1
        return self._pos.get(tuple_id, -1)

    def is_live(self, tuple_id: int) -> bool:
        position = self._position(tuple_id)
        return position >= 0 and self._live[position]

    def _check_live(self, tuple_id: int) -> int:
        if not 0 <= tuple_id < self._next_id:
            raise TupleIdError(f"tuple ID {tuple_id} does not exist")
        position = self._position(tuple_id)
        if position < 0 or not self._live[position]:
            raise TupleIdError(f"tuple ID {tuple_id} was deleted")
        return position

    def row(self, tuple_id: int) -> Row:
        """The full live tuple with the given ID."""
        position = self._check_live(tuple_id)
        return tuple([column[position] for column in self._columns])

    def value(self, tuple_id: int, column: int) -> Hashable:
        """One cell of a live tuple."""
        return self._columns[column][self._check_live(tuple_id)]

    def project(self, tuple_id: int, mask: int) -> Row:
        """The live tuple's values on the masked columns (schema order)."""
        position = self._check_live(tuple_id)
        return tuple(self._columns[index][position] for index in columns_of(mask))

    def project_row(self, row: Sequence[Hashable], mask: int) -> Row:
        """Project an out-of-relation row (e.g. a pending insert)."""
        return tuple(row[index] for index in columns_of(mask))

    def codes_for_ids(self, column: int, tuple_ids: np.ndarray) -> np.ndarray:
        """The dictionary codes of the given (live) tuple IDs, gathered.

        The vectorized index-maintenance entry point: the batch's codes
        come straight out of the column's code array, no value hashing.
        """
        ids = np.asarray(tuple_ids, dtype=np.int64)
        if self._pos is None:
            positions = ids
        else:
            pos = self._pos
            positions = np.fromiter(
                (pos[int(tuple_id)] for tuple_id in ids),
                dtype=np.int64,
                count=len(ids),
            )
        return self._encoding.column(column).codes_at(positions)

    def live_ids_array(self) -> np.ndarray:
        """The live tuple IDs, ascending, as an int64 array."""
        live = np.asarray(self._live, dtype=bool)
        positions = np.flatnonzero(live)
        if self._ids is None:
            return positions.astype(np.int64)
        ids = np.asarray(self._ids, dtype=np.int64)
        return ids[positions]

    def iter_ids(self) -> Iterator[int]:
        """Live tuple IDs in insertion order."""
        if self._ids is None:
            for tuple_id, live in enumerate(self._live):
                if live:
                    yield tuple_id
        else:
            for tuple_id, live in zip(self._ids, self._live):
                if live:
                    yield tuple_id

    def _iter_live_positions(self) -> Iterator[tuple[int, int]]:
        """(tuple ID, storage position) pairs for live tuples, in order."""
        if self._ids is None:
            for position, live in enumerate(self._live):
                if live:
                    yield position, position
        else:
            for position, (tuple_id, live) in enumerate(zip(self._ids, self._live)):
                if live:
                    yield tuple_id, position

    def iter_rows(self) -> Iterator[Row]:
        """Live tuples in insertion order."""
        for _, position in self._iter_live_positions():
            yield tuple(column[position] for column in self._columns)

    def iter_items(self) -> Iterator[tuple[int, Row]]:
        """(tuple ID, row) pairs for live tuples."""
        for tuple_id, position in self._iter_live_positions():
            yield tuple_id, tuple(column[position] for column in self._columns)

    def column_values(self, column: int) -> Iterator[tuple[int, Hashable]]:
        """(tuple ID, value) pairs of one column over live tuples."""
        store = self._columns[column]
        for tuple_id, position in self._iter_live_positions():
            yield tuple_id, store[position]

    def cardinality(self, column: int) -> int:
        """Number of distinct live values in one column."""
        codes = self._encoding.column(column).codes
        live = np.asarray(self._live, dtype=bool)
        if not live.size:
            return 0
        return int(np.unique(codes[live]).size)

    def duplicate_exists(self, mask: int) -> bool:
        """True iff two live tuples agree on the masked projection.

        This is the definitional (hash-based, single-scan) uniqueness
        test; algorithms use their own indexes, tests use this.
        """
        seen: set[Row] = set()
        indices = columns_of(mask)
        for _, position in self._iter_live_positions():
            key = tuple(self._columns[index][position] for index in indices)
            if key in seen:
                return True
            seen.add(key)
        return False

    def group_duplicates(self, mask: int) -> dict[Row, list[int]]:
        """Projection value -> tuple IDs, keeping only groups of size >= 2."""
        groups: dict[Row, list[int]] = {}
        indices = columns_of(mask)
        for tuple_id, position in self._iter_live_positions():
            key = tuple(self._columns[index][position] for index in indices)
            groups.setdefault(key, []).append(tuple_id)
        return {key: ids for key, ids in groups.items() if len(ids) >= 2}

    def restrict_columns(self, n_columns: int) -> "Relation":
        """A copy with only the first ``n_columns`` columns (fresh IDs).

        Used by the column-scaling experiments (paper Figs. 3, 6, 8).
        """
        projected = Relation(self._schema.prefix(n_columns))
        for _, position in self._iter_live_positions():
            projected.insert(
                tuple(self._columns[c][position] for c in range(n_columns))
            )
        return projected

    def copy(self) -> "Relation":
        """A deep copy preserving tuple IDs and tombstones."""
        clone = Relation(self._schema)
        clone._columns = [list(column) for column in self._columns]
        clone._live = list(self._live)
        clone._live_count = self._live_count
        clone._encoding = self._encoding.copy()
        clone._ids = list(self._ids) if self._ids is not None else None
        clone._pos = dict(self._pos) if self._pos is not None else None
        clone._next_id = self._next_id
        return clone

    def __repr__(self) -> str:
        return (
            f"Relation({len(self._schema)} columns, {self._live_count} live rows, "
            f"{len(self._live) - self._live_count} tombstones)"
        )


def transform_rows(
    relation: Relation,
    transform: Callable[[Row], Row],
) -> Relation:
    """A fresh relation with ``transform`` applied to each live row."""
    return Relation.from_rows(
        relation.schema, (transform(row) for row in relation.iter_rows())
    )
