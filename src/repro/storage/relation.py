"""In-memory columnar relation with stable tuple IDs.

The relation is the shared substrate of every algorithm in this
repository (SWAN, GORDIAN, DUCC, brute force, the DBMS-X simulation),
so all systems pay the same storage costs and runtime comparisons stay
meaningful.

Storage model
-------------
* Column-major: ``_columns[c][p]`` is the value of column ``c`` at row
  position ``p``.
* A tuple ID equals its row position; IDs are append-only and never
  reused.
* Deletes are tombstones (``_live[p] = False``); periodically a caller
  can :meth:`compact` into a fresh relation if desired.
"""

from __future__ import annotations

import csv
from typing import Callable, Hashable, Iterable, Iterator, Sequence

from repro.errors import ArityError, TupleIdError
from repro.lattice.combination import columns_of
from repro.storage.schema import Schema

Row = tuple[Hashable, ...]


class Relation:
    """A mutable relational instance over a fixed :class:`Schema`."""

    __slots__ = ("_schema", "_columns", "_live", "_live_count")

    def __init__(self, schema: Schema) -> None:
        self._schema = schema
        self._columns: list[list[Hashable]] = [[] for _ in range(len(schema))]
        self._live: list[bool] = []
        self._live_count = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_rows(cls, schema: Schema, rows: Iterable[Sequence[Hashable]]) -> "Relation":
        relation = cls(schema)
        relation.insert_many(rows)
        return relation

    @classmethod
    def from_csv(
        cls,
        path: str,
        schema: Schema | None = None,
        delimiter: str = ",",
    ) -> "Relation":
        """Load a relation from a CSV file with a header row.

        When ``schema`` is given, the header must match its names; when
        omitted, the header defines a fresh all-string schema.
        """
        with open(path, newline="") as handle:
            reader = csv.reader(handle, delimiter=delimiter)
            header = next(reader)
            if schema is None:
                schema = Schema(header)
            elif list(schema.names) != header:
                raise ArityError(
                    f"CSV header {header!r} does not match schema {list(schema.names)!r}"
                )
            return cls.from_rows(schema, (tuple(row) for row in reader))

    def to_csv(self, path: str, delimiter: str = ",") -> None:
        """Write the live rows (with a header) to ``path``."""
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle, delimiter=delimiter)
            writer.writerow(self._schema.names)
            for tuple_id in self.iter_ids():
                writer.writerow(self.row(tuple_id))

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert(self, row: Sequence[Hashable]) -> int:
        """Append one tuple; returns its tuple ID."""
        if len(row) != len(self._schema):
            raise ArityError(
                f"row has {len(row)} values, schema has {len(self._schema)} columns"
            )
        for column_store, value in zip(self._columns, row):
            column_store.append(value)
        self._live.append(True)
        self._live_count += 1
        return len(self._live) - 1

    def insert_many(self, rows: Iterable[Sequence[Hashable]]) -> list[int]:
        """Append a batch of tuples; returns their tuple IDs."""
        return [self.insert(row) for row in rows]

    def delete(self, tuple_id: int) -> Row:
        """Tombstone one tuple; returns the removed row."""
        self._check_live(tuple_id)
        self._live[tuple_id] = False
        self._live_count -= 1
        return tuple(column[tuple_id] for column in self._columns)

    def delete_many(self, tuple_ids: Iterable[int]) -> list[Row]:
        """Tombstone a batch of tuples; returns the removed rows."""
        return [self.delete(tuple_id) for tuple_id in tuple_ids]

    def compact(self) -> "Relation":
        """A fresh relation containing only the live rows (new IDs)."""
        return Relation.from_rows(self._schema, self.iter_rows())

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def n_columns(self) -> int:
        return len(self._schema)

    @property
    def next_tuple_id(self) -> int:
        """The ID the next inserted tuple will receive."""
        return len(self._live)

    def __len__(self) -> int:
        """Number of *live* tuples."""
        return self._live_count

    def is_live(self, tuple_id: int) -> bool:
        return 0 <= tuple_id < len(self._live) and self._live[tuple_id]

    def _check_live(self, tuple_id: int) -> None:
        if not 0 <= tuple_id < len(self._live):
            raise TupleIdError(f"tuple ID {tuple_id} does not exist")
        if not self._live[tuple_id]:
            raise TupleIdError(f"tuple ID {tuple_id} was deleted")

    def row(self, tuple_id: int) -> Row:
        """The full live tuple with the given ID."""
        self._check_live(tuple_id)
        return tuple(column[tuple_id] for column in self._columns)

    def value(self, tuple_id: int, column: int) -> Hashable:
        """One cell of a live tuple."""
        self._check_live(tuple_id)
        return self._columns[column][tuple_id]

    def project(self, tuple_id: int, mask: int) -> Row:
        """The live tuple's values on the masked columns (schema order)."""
        self._check_live(tuple_id)
        return tuple(self._columns[index][tuple_id] for index in columns_of(mask))

    def project_row(self, row: Sequence[Hashable], mask: int) -> Row:
        """Project an out-of-relation row (e.g. a pending insert)."""
        return tuple(row[index] for index in columns_of(mask))

    def iter_ids(self) -> Iterator[int]:
        """Live tuple IDs in insertion order."""
        for tuple_id, live in enumerate(self._live):
            if live:
                yield tuple_id

    def iter_rows(self) -> Iterator[Row]:
        """Live tuples in insertion order."""
        for tuple_id in self.iter_ids():
            yield tuple(column[tuple_id] for column in self._columns)

    def iter_items(self) -> Iterator[tuple[int, Row]]:
        """(tuple ID, row) pairs for live tuples."""
        for tuple_id in self.iter_ids():
            yield tuple_id, tuple(column[tuple_id] for column in self._columns)

    def column_values(self, column: int) -> Iterator[tuple[int, Hashable]]:
        """(tuple ID, value) pairs of one column over live tuples."""
        store = self._columns[column]
        for tuple_id, live in enumerate(self._live):
            if live:
                yield tuple_id, store[tuple_id]

    def cardinality(self, column: int) -> int:
        """Number of distinct live values in one column."""
        return len({value for _, value in self.column_values(column)})

    def duplicate_exists(self, mask: int) -> bool:
        """True iff two live tuples agree on the masked projection.

        This is the definitional (hash-based, single-scan) uniqueness
        test; algorithms use their own indexes, tests use this.
        """
        seen: set[Row] = set()
        indices = columns_of(mask)
        for tuple_id in self.iter_ids():
            key = tuple(self._columns[index][tuple_id] for index in indices)
            if key in seen:
                return True
            seen.add(key)
        return False

    def group_duplicates(self, mask: int) -> dict[Row, list[int]]:
        """Projection value -> tuple IDs, keeping only groups of size >= 2."""
        groups: dict[Row, list[int]] = {}
        indices = columns_of(mask)
        for tuple_id in self.iter_ids():
            key = tuple(self._columns[index][tuple_id] for index in indices)
            groups.setdefault(key, []).append(tuple_id)
        return {key: ids for key, ids in groups.items() if len(ids) >= 2}

    def restrict_columns(self, n_columns: int) -> "Relation":
        """A copy with only the first ``n_columns`` columns (fresh IDs).

        Used by the column-scaling experiments (paper Figs. 3, 6, 8).
        """
        projected = Relation(self._schema.prefix(n_columns))
        for tuple_id in self.iter_ids():
            projected.insert(tuple(self._columns[c][tuple_id] for c in range(n_columns)))
        return projected

    def copy(self) -> "Relation":
        """A deep copy preserving tuple IDs and tombstones."""
        clone = Relation(self._schema)
        clone._columns = [list(column) for column in self._columns]
        clone._live = list(self._live)
        clone._live_count = self._live_count
        return clone

    def __repr__(self) -> str:
        return (
            f"Relation({len(self._schema)} columns, {self._live_count} live rows, "
            f"{len(self._live) - self._live_count} tombstones)"
        )


def transform_rows(
    relation: Relation,
    transform: Callable[[Row], Row],
) -> Relation:
    """A fresh relation with ``transform`` applied to each live row."""
    return Relation.from_rows(
        relation.schema, (transform(row) for row in relation.iter_rows())
    )
