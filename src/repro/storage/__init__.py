"""Storage substrate: relations, indexes, and position list indexes.

This package is the "database" underneath the profiler:

* :mod:`repro.storage.schema` -- column metadata and name resolution.
* :mod:`repro.storage.relation` -- an in-memory columnar relation with
  stable tuple IDs, batch inserts, and tombstone deletes.
* :mod:`repro.storage.encoding` -- incremental dictionary encoding
  (value -> int code) backing the relation's vectorized code arrays.
* :mod:`repro.storage.value_index` -- single-column inverted indexes
  (value -> tuple IDs), the structure SWAN's insert path probes.
* :mod:`repro.storage.pli` -- position list indexes (PLIs), the
  structure SWAN's delete path and DUCC intersect.
* :mod:`repro.storage.sparse_index` -- tuple ID -> byte offset map with
  mixed random/sequential retrieval.
* :mod:`repro.storage.table_file` -- CSV-backed tables for the
  disk-resident initial dataset.
"""

from repro.storage.encoding import ColumnEncoding, RelationEncoding
from repro.storage.pli import PositionListIndex
from repro.storage.relation import Relation
from repro.storage.schema import Column, Schema
from repro.storage.sparse_index import SparseIndex
from repro.storage.value_index import ValueIndex

__all__ = [
    "Column",
    "ColumnEncoding",
    "PositionListIndex",
    "Relation",
    "RelationEncoding",
    "Schema",
    "SparseIndex",
    "ValueIndex",
]
