"""Sorted-array set kernels shared by the PLI and posting-list hot paths.

The per-MUC candidate cascade (Algorithm 2) and the posting-list
maintenance in :mod:`repro.storage.value_index` both reduce to set
algebra over *sorted* ``int64`` id arrays.  ``np.intersect1d`` and
``np.isin`` solve the general problem and pay for it: both sort (or
hash) their inputs on every call even when the caller already holds
sorted, duplicate-free arrays.  The kernels here exploit that
invariant with a single ``searchsorted`` probe of the smaller array
into the larger one — the classic galloping intersection — so each
verification step stays a constant number of vectorised passes.

Every function is a pure function of its arguments and never mutates
its inputs; callers may therefore hand in the frozen read-only
postings published by the value index (lint rule R2).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "intersect_sorted",
    "in_sorted",
    "setdiff_sorted",
]

_EMPTY = np.empty(0, dtype=np.int64)
_EMPTY.setflags(write=False)


def _probe(needles: np.ndarray, haystack: np.ndarray) -> np.ndarray:
    """Boolean mask over ``needles`` marking members of ``haystack``.

    Both arrays must be sorted ascending; ``haystack`` must be
    duplicate-free for the cost claim (correctness only needs sorted).
    """
    positions = np.searchsorted(haystack, needles)
    hit = positions < haystack.size
    hit[hit] = haystack[positions[hit]] == needles[hit]
    return hit


def intersect_sorted(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Intersection of two sorted, duplicate-free int64 arrays.

    Returns a sorted array.  The smaller side is galloped through the
    larger via one ``searchsorted``, so the cost is
    ``O(min(n, m) * log(max(n, m)))`` with no re-sort of either input.
    """
    if a.size == 0 or b.size == 0:
        return _EMPTY
    if a.size > b.size:
        a, b = b, a
    return a[_probe(a, b)]


def in_sorted(needles: np.ndarray, haystack: np.ndarray) -> np.ndarray:
    """Membership mask of ``needles`` within a sorted ``haystack``.

    ``needles`` need not be sorted; the mask preserves its order.  A
    drop-in replacement for ``np.isin(needles, haystack)`` when the
    haystack is already sorted and duplicate-free.
    """
    if needles.size == 0:
        return np.zeros(0, dtype=bool)
    if haystack.size == 0:
        return np.zeros(needles.size, dtype=bool)
    return _probe(needles, haystack)


def setdiff_sorted(a: np.ndarray, doomed: np.ndarray) -> np.ndarray:
    """Elements of ``a`` not present in sorted ``doomed``, order kept."""
    if a.size == 0 or doomed.size == 0:
        return a
    return a[~_probe(a, doomed)]
