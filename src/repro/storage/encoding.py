"""Dictionary encoding for the columnar storage core.

Every column of a :class:`~repro.storage.relation.Relation` maintains,
next to its value store, a *dictionary encoding*: a value -> int code
mapping plus a flat numpy array holding the code of every storage
position. Equality-heavy work (index probing, candidate intersection,
duplicate grouping) then runs on small integers at C speed, while the
value-level ``Relation`` API stays exactly as before.

Design notes
------------
* Codes are assigned in first-seen order and are never reused; the
  dictionary only grows. A value that later disappears from the
  relation keeps its code (postings for it simply become empty), so
  codes handed out to indexes and caches stay valid forever.
* Code identity follows Python equality, exactly like the ``dict`` /
  ``set`` keyed structures the encoding replaces: two values receive
  the same code iff they are equal (``==`` + ``hash``). ``decode``
  returns the first-seen representative of the equality class; the
  relation keeps the actual inserted objects for value-level access,
  so round-trips through the *relation* are always exact.
* The code array is a growable int64 buffer (capacity doubling), so
  per-insert maintenance is amortized O(1) and batch reads are plain
  numpy slices.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Sequence

import numpy as np

_INITIAL_CAPACITY = 16


class ColumnEncoding:
    """Value <-> code dictionary plus the per-position code array."""

    __slots__ = ("_code_of", "_values", "_codes", "_size")

    def __init__(self) -> None:
        self._code_of: dict[Hashable, int] = {}
        self._values: list[Hashable] = []
        self._codes = np.empty(_INITIAL_CAPACITY, dtype=np.int64)
        self._size = 0

    # ------------------------------------------------------------------
    # Dictionary
    # ------------------------------------------------------------------
    @property
    def n_codes(self) -> int:
        """Number of distinct values ever seen (codes never shrink)."""
        return len(self._values)

    def encode(self, value: Hashable) -> int:
        """The code for ``value``, interning it if unseen."""
        code = self._code_of.get(value)
        if code is None:
            code = len(self._values)
            self._code_of[value] = code
            self._values.append(value)
        return code

    def code_of(self, value: Hashable) -> int | None:
        """The code for ``value`` if it was ever seen, else ``None``."""
        return self._code_of.get(value)

    def decode(self, code: int) -> Hashable:
        """The first-seen representative of the code's equality class."""
        return self._values[code]

    def __contains__(self, value: Hashable) -> bool:
        return value in self._code_of

    def __len__(self) -> int:
        return self.n_codes

    # ------------------------------------------------------------------
    # The position -> code array
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of storage positions covered by the code array."""
        return self._size

    @property
    def codes(self) -> np.ndarray:
        """The code of every storage position (a live view, do not mutate)."""
        return self._codes[: self._size]

    def append(self, value: Hashable) -> int:
        """Intern ``value`` and record its code at the next position."""
        code = self.encode(value)
        if self._size == len(self._codes):
            self._grow(self._size + 1)
        self._codes[self._size] = code
        self._size += 1
        return code

    def append_batch(self, values: Sequence[Hashable]) -> np.ndarray:
        """Intern a batch of values; returns their codes (one pass)."""
        count = len(values)
        if self._size + count > len(self._codes):
            self._grow(self._size + count)
        encode = self.encode
        out = self._codes[self._size : self._size + count]
        for offset, value in enumerate(values):
            out[offset] = encode(value)
        self._size += count
        return out.copy()

    def codes_at(self, positions: np.ndarray) -> np.ndarray:
        """Gather the codes of the given storage positions (read-only).

        Advanced indexing already materializes a fresh array, so the
        freeze costs nothing and keeps accidental writers honest.
        """
        gathered = self._codes[: self._size][positions]
        gathered.flags.writeable = False
        return gathered

    def compact(self, keep_positions: np.ndarray) -> None:
        """Rewrite the code array to the surviving positions (in order).

        The dictionary is left untouched: codes are stable identities,
        so postings and caches keyed by code stay valid across storage
        compaction.
        """
        kept = self._codes[: self._size][keep_positions]
        self._codes = kept.copy()
        self._size = len(kept)

    def copy(self) -> "ColumnEncoding":
        clone = ColumnEncoding.__new__(ColumnEncoding)
        clone._code_of = dict(self._code_of)
        clone._values = list(self._values)
        clone._codes = self._codes[: self._size].copy()
        clone._size = self._size
        return clone

    def _grow(self, needed: int) -> None:
        capacity = max(len(self._codes) * 2, needed, _INITIAL_CAPACITY)
        grown = np.empty(capacity, dtype=np.int64)
        grown[: self._size] = self._codes[: self._size]
        self._codes = grown

    def __repr__(self) -> str:
        return f"ColumnEncoding(codes={self.n_codes}, positions={self._size})"


class RelationEncoding:
    """The per-column dictionary encodings of one relation."""

    __slots__ = ("_columns",)

    def __init__(self, n_columns: int) -> None:
        self._columns = [ColumnEncoding() for _ in range(n_columns)]

    def column(self, column: int) -> ColumnEncoding:
        return self._columns[column]

    def __len__(self) -> int:
        return len(self._columns)

    def append_row(self, row: Sequence[Hashable]) -> None:
        for encoding, value in zip(self._columns, row):
            encoding.append(value)

    def compact(self, keep_positions: np.ndarray) -> None:
        for encoding in self._columns:
            encoding.compact(keep_positions)

    def copy(self) -> "RelationEncoding":
        clone = RelationEncoding.__new__(RelationEncoding)
        clone._columns = [encoding.copy() for encoding in self._columns]
        return clone

    def stats_dict(self) -> dict[str, int]:
        """Aggregate dictionary sizes, for service observability."""
        distinct = sum(encoding.n_codes for encoding in self._columns)
        positions = sum(encoding.size for encoding in self._columns)
        return {
            "columns": len(self._columns),
            "distinct_values": distinct,
            "encoded_cells": positions,
            "code_bytes": positions * 8,
        }


def encode_rows_local(
    rows: Sequence[Sequence[Hashable]], column: int
) -> np.ndarray:
    """Codes for one column of out-of-relation rows, batch-local.

    Used where rows are not (yet) stored in a relation -- e.g. grouping
    a pending insert batch together with fetched old tuples. Codes are
    local to the call: equal values get equal codes, nothing is
    interned anywhere.
    """
    code_of: dict[Hashable, int] = {}
    out = np.empty(len(rows), dtype=np.int64)
    for position, row in enumerate(rows):
        value = row[column]
        code = code_of.get(value)
        if code is None:
            code = len(code_of)
            code_of[value] = code
        out[position] = code
    return out


def union_sorted(arrays: Iterable[np.ndarray]) -> np.ndarray:
    """The sorted union of several sorted unique int64 arrays."""
    stacked = [array for array in arrays if array.size]
    if not stacked:
        return np.empty(0, dtype=np.int64)
    if len(stacked) == 1:
        return stacked[0]
    return np.unique(np.concatenate(stacked))
