"""Inclusion dependency discovery.

The paper's related work ([20], [21]) ties unique discovery to
inclusion dependency (IND) discovery: a foreign-key relationship is an
IND whose right-hand side is unique. This package implements:

* :mod:`repro.ind.unary` -- all unary INDs (value-set containment)
  via a single inverted pass over distinct values;
* :func:`repro.ind.unary.foreign_key_candidates` -- INDs whose RHS is
  a (discovered) unique column: the classic key/FK pairing -- plus
  :func:`repro.ind.unary.rank_foreign_keys` coverage ranking to push
  accidental small-domain INDs to the bottom;
* :mod:`repro.ind.nary` -- n-ary INDs lifted levelwise from the unary
  ones (de Marchi's MIND apriori property).
"""

from repro.ind.nary import (
    NaryInclusionDependency,
    discover_nary_inds,
    holds_nary,
)
from repro.ind.unary import (
    InclusionDependency,
    discover_unary_inds,
    foreign_key_candidates,
)

__all__ = [
    "InclusionDependency",
    "NaryInclusionDependency",
    "discover_nary_inds",
    "discover_unary_inds",
    "foreign_key_candidates",
    "holds_nary",
]
