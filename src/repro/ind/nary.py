"""N-ary inclusion dependency discovery (MIND-style levelwise).

An n-ary IND ``R[A1..An] ⊆ S[B1..Bn]`` holds when every tuple's
projection on (A1..An) occurs as some tuple's projection on (B1..Bn).
De Marchi's MIND algorithm ([20]) lifts unary INDs levelwise: an n-ary
candidate can only hold if **every** (n-1)-ary sub-IND (dropping the
same position on both sides) holds -- the apriori property that prunes
the quadratic-in-columns, exponential-in-arity candidate space down to
what the data supports.

Conventions (standard in the IND literature):

* positions pair off: A_i maps to B_i;
* no repeated columns within one side;
* i-th left column may equal i-th right column only across relations
  (within one relation such positions would make the IND partially
  trivial, so candidates with A_i == B_i are excluded there).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ind.unary import discover_unary_inds
from repro.storage.relation import Relation
from repro.storage.schema import Schema


@dataclass(frozen=True)
class NaryInclusionDependency:
    """``lhs_relation[lhs] ⊆ rhs_relation[rhs]``, positionally paired."""

    lhs_relation: str
    lhs: tuple[int, ...]
    rhs_relation: str
    rhs: tuple[int, ...]

    @property
    def arity(self) -> int:
        return len(self.lhs)

    def named(self, lhs_schema: Schema, rhs_schema: Schema | None = None) -> str:
        rhs_schema = rhs_schema or lhs_schema
        left = ", ".join(lhs_schema.names[column] for column in self.lhs)
        right = ", ".join(rhs_schema.names[column] for column in self.rhs)
        return f"{self.lhs_relation}[{left}] ⊆ {self.rhs_relation}[{right}]"

    def sub_inds(self):
        """The (n-1)-ary INDs obtained by dropping one position."""
        for drop in range(self.arity):
            yield NaryInclusionDependency(
                self.lhs_relation,
                self.lhs[:drop] + self.lhs[drop + 1 :],
                self.rhs_relation,
                self.rhs[:drop] + self.rhs[drop + 1 :],
            )


def _projections(relation: Relation, columns: tuple[int, ...]) -> set:
    return {
        tuple(row[column] for column in columns)
        for row in relation.iter_rows()
    }


def holds_nary(
    lhs_relation: Relation,
    lhs: tuple[int, ...],
    rhs_relation: Relation,
    rhs: tuple[int, ...],
) -> bool:
    """Definitional containment check of one n-ary IND."""
    if len(lhs_relation) == 0:
        return True
    return _projections(lhs_relation, lhs) <= _projections(rhs_relation, rhs)


def discover_nary_inds(
    relation: Relation,
    other: Relation | None = None,
    max_arity: int = 3,
    name: str = "R",
    other_name: str = "S",
) -> list[NaryInclusionDependency]:
    """All valid INDs up to ``max_arity``, levelwise from the unary ones.

    Within one relation, candidates with any position mapping a column
    to itself are excluded (partially trivial). Results are *maximal
    sets of facts*, not maximal INDs: every valid IND up to the arity
    cap is reported (the standard MIND output), sorted by arity.
    """
    target = other if other is not None else relation
    target_name = other_name if other is not None else name
    same_relation = other is None

    unary = [
        NaryInclusionDependency(name, (ind.lhs,), target_name, (ind.rhs,))
        for ind in discover_unary_inds(relation, other, name, other_name)
    ]
    results: list[NaryInclusionDependency] = list(unary)
    current = set(unary)
    arity = 2
    while current and arity <= max_arity:
        candidates: set[NaryInclusionDependency] = set()
        ordered = sorted(
            current, key=lambda ind: (ind.lhs, ind.rhs)
        )
        for left in ordered:
            for right in ordered:
                # Join: extend `left` by `right`'s last position; for
                # arity 2 this pairs any two unary INDs, beyond that
                # the shared prefix must match (apriori join).
                if left.lhs[:-1] != right.lhs[:-1] or left.rhs[:-1] != right.rhs[:-1]:
                    continue
                new_lhs_col = right.lhs[-1]
                new_rhs_col = right.rhs[-1]
                if left.lhs[-1] >= new_lhs_col:
                    continue  # canonical order on LHS avoids duplicates
                if new_lhs_col in left.lhs or new_rhs_col in left.rhs:
                    continue  # no repeated columns on either side
                candidate = NaryInclusionDependency(
                    name,
                    left.lhs + (new_lhs_col,),
                    target_name,
                    left.rhs + (new_rhs_col,),
                )
                if same_relation and any(
                    l == r for l, r in zip(candidate.lhs, candidate.rhs)
                ):
                    continue
                if all(sub in current or sub.arity == 0 for sub in candidate.sub_inds()):
                    candidates.add(candidate)
        validated = {
            candidate
            for candidate in candidates
            if holds_nary(relation, candidate.lhs, target, candidate.rhs)
        }
        results.extend(sorted(validated, key=lambda ind: (ind.lhs, ind.rhs)))
        current = validated
        arity += 1
    return results
