"""Unary inclusion dependency discovery (de Marchi-style).

A unary IND ``R.A ⊆ S.B`` holds when every value appearing in column A
also appears in column B. Enumerating all unary INDs by pairwise
containment tests is O(columns²) scans; the standard trick ([20])
inverts the data once: for every distinct *value*, collect the set of
columns containing it; A ⊆ B can only hold if B appears in every such
column set that contains A -- so each IND candidate set shrinks by
intersection while streaming values, one pass total.

Foreign-key candidates then follow the paper's observation that uniques
resemble keys: an IND whose right-hand side is a unique column pairs a
would-be foreign key with a would-be primary key.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.storage.relation import Relation
from repro.storage.schema import Schema


@dataclass(frozen=True)
class InclusionDependency:
    """A unary IND: every value of ``lhs`` occurs in ``rhs``.

    Column references carry a relation tag so INDs across two relations
    render unambiguously.
    """

    lhs_relation: str
    lhs: int
    rhs_relation: str
    rhs: int

    def named(self, lhs_schema: Schema, rhs_schema: Schema | None = None) -> str:
        rhs_schema = rhs_schema or lhs_schema
        return (
            f"{self.lhs_relation}.{lhs_schema.names[self.lhs]} ⊆ "
            f"{self.rhs_relation}.{rhs_schema.names[self.rhs]}"
        )

    def __lt__(self, other: "InclusionDependency") -> bool:
        return (self.lhs_relation, self.lhs, other.rhs_relation, self.rhs) < (
            other.lhs_relation,
            other.lhs,
            other.rhs_relation,
            other.rhs,
        )


def _distinct_values(relation: Relation, column: int) -> set:
    return {value for _, value in relation.column_values(column)}


def discover_unary_inds(
    relation: Relation,
    other: Relation | None = None,
    name: str = "R",
    other_name: str = "S",
) -> list[InclusionDependency]:
    """All unary INDs within ``relation`` (or from it into ``other``).

    Empty columns are excluded as LHS (an empty column is vacuously
    included everywhere, which drowns the result in noise); trivial
    self-inclusions A ⊆ A are excluded too.
    """
    target = other if other is not None else relation
    target_name = other_name if other is not None else name

    # Invert: value -> set of target columns containing it.
    containing: dict[object, set[int]] = {}
    for column in range(target.n_columns):
        for value in _distinct_values(target, column):
            containing.setdefault(value, set()).add(column)

    results: list[InclusionDependency] = []
    all_targets = frozenset(range(target.n_columns))
    for column in range(relation.n_columns):
        values = _distinct_values(relation, column)
        if not values:
            continue
        candidates = set(all_targets)
        for value in values:
            candidates &= containing.get(value, frozenset())
            if not candidates:
                break
        for rhs in sorted(candidates):
            if other is None and rhs == column:
                continue
            results.append(
                InclusionDependency(name, column, target_name, rhs)
            )
    results.sort()
    return results


def foreign_key_candidates(
    fact: Relation,
    dimension: Relation | None = None,
    unique_columns: set[int] | None = None,
    fact_name: str = "R",
    dimension_name: str = "S",
) -> list[InclusionDependency]:
    """INDs into unique columns: the key / foreign-key pairing.

    ``unique_columns`` restricts the right-hand sides; by default the
    dimension's single-column uniques are computed on the fly (the
    "uniques resemble candidate keys" bridge of the paper's
    introduction).
    """
    target = dimension if dimension is not None else fact
    if unique_columns is None:
        unique_columns = {
            column
            for column in range(target.n_columns)
            if target.cardinality(column) == len(target)
        }
    inds = discover_unary_inds(
        fact, dimension, name=fact_name, other_name=dimension_name
    )
    return [ind for ind in inds if ind.rhs in unique_columns]


def rank_foreign_keys(
    fact: Relation,
    dimension: Relation,
    candidates: list[InclusionDependency],
) -> list[tuple[InclusionDependency, float]]:
    """Order FK candidates by *coverage* of the referenced key.

    Small integer domains produce accidental INDs (a line-number column
    is "included" in any dense key); a genuine foreign key references a
    large share of the key's values. Coverage = |distinct LHS values| /
    |distinct RHS values|, descending.
    """
    scored = []
    for ind in candidates:
        lhs_distinct = fact.cardinality(ind.lhs)
        rhs_distinct = dimension.cardinality(ind.rhs)
        coverage = lhs_distinct / rhs_distinct if rhs_distinct else 0.0
        scored.append((ind, coverage))
    scored.sort(key=lambda item: -item[1])
    return scored
