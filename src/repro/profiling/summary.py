"""One-stop dataset profiling: everything this library can discover.

``summarize(relation)`` bundles the individual engines into the report
a data-profiling user actually wants: per-column statistics, candidate
keys (minimal uniques), maximal non-uniques, and optionally minimal
functional dependencies and unary inclusion dependencies. The result
renders as a readable text report and serializes to a plain dict.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lattice.combination import columns_of, popcount
from repro.profiling.discovery import discover
from repro.profiling.stats import ColumnStatistics, column_statistics
from repro.storage.relation import Relation
from repro.storage.schema import Schema


@dataclass
class ProfileSummary:
    """The combined metadata of one relation."""

    schema: Schema
    n_rows: int
    stats: ColumnStatistics
    mucs: list[int]
    mnucs: list[int]
    fds: list = field(default_factory=list)
    inds: list = field(default_factory=list)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def candidate_keys(self, max_size: int | None = None) -> list[tuple[str, ...]]:
        """Minimal uniques as name tuples, smallest first."""
        masks = self.mucs
        if max_size is not None:
            masks = [mask for mask in masks if popcount(mask) <= max_size]
        return [
            tuple(self.schema.names[column] for column in columns_of(mask))
            for mask in masks
        ]

    def key_like_columns(self, threshold: float = 0.95) -> list[str]:
        """Columns whose selectivity reaches ``threshold``."""
        return [
            self.schema.names[column]
            for column in range(len(self.schema))
            if self.stats.selectivity(column) >= threshold
        ]

    def to_dict(self) -> dict:
        """JSON-ready representation."""
        names = self.schema.names
        return {
            "rows": self.n_rows,
            "columns": [
                {
                    "name": names[column],
                    "distinct": self.stats.cardinalities[column],
                    "selectivity": round(self.stats.selectivity(column), 6),
                }
                for column in range(len(names))
            ],
            "minimal_uniques": [
                [names[c] for c in columns_of(mask)] for mask in self.mucs
            ],
            "maximal_non_uniques": [
                [names[c] for c in columns_of(mask)] for mask in self.mnucs
            ],
            "functional_dependencies": [fd.named(self.schema) for fd in self.fds],
            "inclusion_dependencies": [
                ind.named(self.schema) for ind in self.inds
            ],
        }

    def render(self, max_items: int = 15) -> str:
        """A terminal-friendly report."""
        names = self.schema.names
        lines = [
            f"profile of {self.n_rows} rows x {len(names)} columns",
            "",
            "columns (distinct / selectivity):",
        ]
        for column, name in enumerate(names):
            lines.append(
                f"  {name:<24} {self.stats.cardinalities[column]:>8}  "
                f"{self.stats.selectivity(column):6.3f}"
            )
        lines.append("")
        lines.append(f"candidate keys ({len(self.mucs)} minimal uniques):")
        for key in self.candidate_keys()[:max_items]:
            lines.append("  {" + ", ".join(key) + "}")
        if len(self.mucs) > max_items:
            lines.append(f"  ... and {len(self.mucs) - max_items} more")
        lines.append("")
        lines.append(f"maximal non-uniques: {len(self.mnucs)}")
        if self.fds:
            lines.append("")
            lines.append(f"minimal functional dependencies ({len(self.fds)}):")
            for fd in self.fds[:max_items]:
                lines.append(f"  {fd.named(self.schema)}")
            if len(self.fds) > max_items:
                lines.append(f"  ... and {len(self.fds) - max_items} more")
        if self.inds:
            lines.append("")
            lines.append(f"unary inclusion dependencies ({len(self.inds)}):")
            for ind in self.inds[:max_items]:
                lines.append(f"  {ind.named(self.schema)}")
            if len(self.inds) > max_items:
                lines.append(f"  ... and {len(self.inds) - max_items} more")
        return "\n".join(lines)


def summarize(
    relation: Relation,
    algorithm: str = "ducc",
    with_fds: int | None = None,
    with_inds: bool = False,
) -> ProfileSummary:
    """Profile ``relation`` end to end.

    ``with_fds`` enables FD discovery with the given LHS-size cap;
    ``with_inds`` enables unary IND discovery within the relation.
    """
    mucs, mnucs = discover(relation, algorithm)
    summary = ProfileSummary(
        schema=relation.schema,
        n_rows=len(relation),
        stats=column_statistics(relation),
        mucs=mucs,
        mnucs=mnucs,
    )
    if with_fds is not None:
        from repro.fd import discover_fds

        summary.fds = discover_fds(relation, max_lhs=with_fds)
    if with_inds:
        from repro.ind import discover_unary_inds

        summary.inds = discover_unary_inds(relation)
    return summary
