"""Profile diffs: what changed between two (MUCS, MNUCS) snapshots.

Monitoring and auditing both boil down to "what did this batch do to
my keys?"; :func:`diff_profiles` answers it structurally:

* which minimal uniques appeared / vanished,
* which of the vanished ones were *weakened* (a superset is now the
  minimal unique -- the old key gained duplicates) vs *strengthened*
  (a subset suffices now),
* the same for maximal non-uniques.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.repository import Profile
from repro.lattice.combination import is_subset
from repro.storage.schema import Schema


@dataclass(frozen=True)
class ProfileDiff:
    """Structured difference between two profiles."""

    gained_mucs: tuple[int, ...]
    lost_mucs: tuple[int, ...]
    weakened: tuple[tuple[int, int], ...] = field(default=())
    """(old MUC, new superset MUC) pairs: the old key broke."""
    strengthened: tuple[tuple[int, int], ...] = field(default=())
    """(old MUC, new subset MUC) pairs: a smaller key now suffices."""
    gained_mnucs: tuple[int, ...] = field(default=())
    lost_mnucs: tuple[int, ...] = field(default=())

    @property
    def unchanged(self) -> bool:
        return not (self.gained_mucs or self.lost_mucs)

    def render(self, schema: Schema) -> str:
        """A human-readable change report."""
        if self.unchanged:
            return "profile unchanged"
        lines: list[str] = []
        weakened_old = {old for old, _ in self.weakened}
        strengthened_old = {old for old, _ in self.strengthened}
        for old, new in self.weakened:
            lines.append(
                f"key weakened: {schema.combination(old)} -> "
                f"{schema.combination(new)}"
            )
        for old, new in self.strengthened:
            lines.append(
                f"key strengthened: {schema.combination(old)} -> "
                f"{schema.combination(new)}"
            )
        explained_new = {new for _, new in self.weakened} | {
            new for _, new in self.strengthened
        }
        for mask in self.gained_mucs:
            if mask not in explained_new:
                lines.append(f"new key: {schema.combination(mask)}")
        for mask in self.lost_mucs:
            if mask not in weakened_old and mask not in strengthened_old:
                lines.append(f"lost key: {schema.combination(mask)}")
        return "\n".join(lines)


def diff_profiles(before: Profile, after: Profile) -> ProfileDiff:
    """Structural diff of two profiles of the same schema."""
    before_mucs = set(before.mucs)
    after_mucs = set(after.mucs)
    gained = tuple(sorted(after_mucs - before_mucs))
    lost = tuple(sorted(before_mucs - after_mucs))
    weakened: list[tuple[int, int]] = []
    strengthened: list[tuple[int, int]] = []
    for old in lost:
        supersets = [new for new in gained if is_subset(old, new)]
        if supersets:
            weakened.append((old, min(supersets, key=lambda m: (bin(m).count("1"), m))))
            continue
        subsets = [new for new in gained if is_subset(new, old)]
        if subsets:
            strengthened.append(
                (old, min(subsets, key=lambda m: (bin(m).count("1"), m)))
            )
    return ProfileDiff(
        gained_mucs=gained,
        lost_mucs=lost,
        weakened=tuple(weakened),
        strengthened=tuple(strengthened),
        gained_mnucs=tuple(sorted(set(after.mnucs) - set(before.mnucs))),
        lost_mnucs=tuple(sorted(set(before.mnucs) - set(after.mnucs))),
    )
