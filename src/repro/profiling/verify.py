"""Definitional uniqueness verification and agree sets.

These are the ground-truth operations (Definitions 1-4 of the paper)
that algorithms must agree with. They scan the relation, so they are
used for initial profiling bootstraps, test oracles, and the final
verification pass -- never inside SWAN's incremental hot paths.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Sequence

from repro.errors import InconsistentProfileError
from repro.lattice.combination import (
    full_mask,
    immediate_subsets,
    immediate_supersets,
    popcount,
)
from repro.storage.relation import Relation

Row = tuple[Hashable, ...]


def is_unique(relation: Relation, mask: int) -> bool:
    """Definition 1: no two live tuples agree on the masked projection."""
    return not relation.duplicate_exists(mask)


def is_non_unique(relation: Relation, mask: int) -> bool:
    """Definition 2: at least one duplicate value combination exists."""
    return relation.duplicate_exists(mask)


def agree_set(left: Sequence[Hashable], right: Sequence[Hashable]) -> int:
    """Bitmask of the columns on which two rows agree.

    A pair of tuples is a duplicate on K exactly when K is a subset of
    their agree set -- the pivot fact behind SWAN's insert handling
    (DESIGN.md section 2).
    """
    mask = 0
    bit = 1
    for left_value, right_value in zip(left, right):
        if left_value == right_value:
            mask |= bit
        bit <<= 1
    return mask


def pairwise_agree_sets(rows: Iterable[Sequence[Hashable]]) -> set[int]:
    """Agree sets of all row pairs (quadratic; oracle/small inputs only)."""
    materialized = [tuple(row) for row in rows]
    result: set[int] = set()
    for left_index, left in enumerate(materialized):
        for right in materialized[left_index + 1 :]:
            result.add(agree_set(left, right))
    return result


def is_minimal_unique(relation: Relation, mask: int) -> bool:
    """Definition 3: unique, and every immediate subset is non-unique."""
    if not is_unique(relation, mask):
        return False
    return all(
        relation.duplicate_exists(subset) for subset in immediate_subsets(mask)
    )


def is_maximal_non_unique(relation: Relation, mask: int) -> bool:
    """Definition 4: non-unique, and every immediate superset is unique."""
    if not relation.duplicate_exists(mask):
        return False
    universe = full_mask(relation.n_columns)
    return all(
        not relation.duplicate_exists(superset)
        for superset in immediate_supersets(mask, universe)
    )


def verify_profile(
    relation: Relation,
    mucs: Iterable[int],
    mnucs: Iterable[int],
    exhaustive: bool = False,
) -> None:
    """Assert that (mucs, mnucs) is a correct profile of ``relation``.

    Checks Definitions 3 and 4 for every reported combination. With
    ``exhaustive=True`` additionally cross-checks completeness through
    the transversal duality (DESIGN.md invariant 4), which catches
    *missing* combinations as well. Raises
    :class:`~repro.errors.InconsistentProfileError` on any violation.
    """
    muc_list = sorted(set(mucs))
    mnuc_list = sorted(set(mnucs))
    for mask in muc_list:
        if not is_minimal_unique(relation, mask):
            raise InconsistentProfileError(
                f"reported MUC {mask:#x} is not a minimal unique"
            )
    for mask in mnuc_list:
        if not is_maximal_non_unique(relation, mask):
            raise InconsistentProfileError(
                f"reported MNUC {mask:#x} is not a maximal non-unique"
            )
    if exhaustive:
        from repro.lattice.transversal import mnucs_from_mucs

        expected_mnucs = mnucs_from_mucs(muc_list, relation.n_columns)
        if sorted(expected_mnucs) != mnuc_list:
            raise InconsistentProfileError(
                "MUCS and MNUCS are not duals: the profile is incomplete "
                f"({len(mnuc_list)} MNUCS reported, {len(expected_mnucs)} implied)"
            )


def sort_profile(masks: Iterable[int]) -> list[int]:
    """Canonical (size, value) report order used across the library."""
    return sorted(set(masks), key=lambda mask: (popcount(mask), mask))
