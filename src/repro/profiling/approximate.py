"""Approximate unique column combinations (near-keys).

A combination K is *k-approximately unique* when deleting at most ``k``
tuples makes it unique; equivalently, when its position list index
satisfies ``sum(len(cluster) - 1) <= k`` (remove all but one member of
every duplicate group). Near-keys are a data-quality staple -- a column
that is unique except for three legacy rows is usually a dirty key, not
a non-key -- and the paper's monitoring motivation ("recognize and
rectify potential problems as soon as possible") is exactly about
spotting them.

Approximate uniqueness is upward-closed in K (intersecting partitions
never increases the removal count), so the generic border search of
:mod:`repro.lattice.border` applies unchanged: we discover the
*minimal k-approximate uniques* and *maximal non-k-approximate*
combinations exactly.
"""

from __future__ import annotations

from repro.lattice.border import discover_border
from repro.lattice.combination import iter_bits
from repro.storage.fastpli import ArrayPli
from repro.storage.relation import Relation


def removal_count(pli: ArrayPli) -> int:
    """Tuples that must be removed to make the partition duplicate-free."""
    return pli.n_entries() - pli.n_clusters()


class ApproximateUniqueFinder:
    """Discovery of minimal k-approximate uniques over one relation."""

    def __init__(self, relation: Relation) -> None:
        self._relation = relation
        self._columns = [
            ArrayPli.for_column(relation, column)
            for column in range(relation.n_columns)
        ]
        self._cache: dict[int, ArrayPli] = {
            1 << column: pli for column, pli in enumerate(self._columns)
        }

    def _pli(self, mask: int) -> ArrayPli:
        cached = self._cache.get(mask)
        if cached is not None:
            return cached
        current = None
        for column in iter_bits(mask):
            parent = self._cache.get(mask & ~(1 << column))
            if parent is not None:
                current = parent.intersect(self._columns[column])
                break
        if current is None:
            columns = sorted(
                iter_bits(mask), key=lambda c: self._columns[c].n_entries()
            )
            current = self._columns[columns[0]]
            for column in columns[1:]:
                current = current.intersect(self._columns[column])
        self._cache[mask] = current
        return current

    def degree(self, mask: int) -> int:
        """Removals needed to make ``mask`` unique (0 = already unique)."""
        if mask == 0:
            return max(0, len(self._relation) - 1)
        return removal_count(self._pli(mask))

    def discover(self, budget: int) -> tuple[list[int], list[int]]:
        """(minimal k-approximate uniques, maximal violators) for
        ``k = budget``; ``budget=0`` degenerates to exact discovery."""
        if budget < 0:
            raise ValueError("budget must be non-negative")
        if len(self._relation) < 2:
            return [0], []
        return discover_border(
            self._relation.n_columns,
            lambda mask: self.degree(mask) <= budget,
        )


def discover_approximate_uniques(
    relation: Relation, budget: int
) -> tuple[list[int], list[int]]:
    """Convenience wrapper around :class:`ApproximateUniqueFinder`."""
    return ApproximateUniqueFinder(relation).discover(budget)
