"""Column statistics: cardinalities and the paper's selectivity model.

Section III-D defines the selectivity of an index column as
``s(C) = cardinality(C) / |r|`` and combines several columns with the
union-probability formula

``s(C1..Ck) = 1 - (1 - s(C1)) * (1 - s(C2)) * ... * (1 - s(Ck))``

These drive Algorithm 4's choice among candidate index extensions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.lattice.combination import iter_bits
from repro.storage.relation import Relation


@dataclass(frozen=True)
class ColumnStatistics:
    """Immutable snapshot of per-column statistics of one relation."""

    row_count: int
    cardinalities: tuple[int, ...]

    def selectivity(self, column: int) -> float:
        """Distinct-value fraction of one column; key columns give 1.0."""
        if self.row_count == 0:
            return 0.0
        return self.cardinalities[column] / self.row_count

    def combined_selectivity(self, columns: Iterable[int]) -> float:
        """Union-probability selectivity of a set of columns."""
        miss_probability = 1.0
        for column in columns:
            miss_probability *= 1.0 - self.selectivity(column)
        return 1.0 - miss_probability

    def combined_selectivity_mask(self, mask: int) -> float:
        return self.combined_selectivity(iter_bits(mask))

    def frequency_order(self) -> list[int]:
        """Columns ordered by descending cardinality (ties by index)."""
        return sorted(
            range(len(self.cardinalities)),
            key=lambda column: (-self.cardinalities[column], column),
        )


def column_statistics(relation: Relation, columns: Sequence[int] | None = None) -> ColumnStatistics:
    """Compute cardinalities in one pass per column.

    ``columns`` restricts the computation; unrequested columns report
    cardinality 0 (they never participate in index selection then).
    """
    wanted = range(relation.n_columns) if columns is None else columns
    cardinalities = [0] * relation.n_columns
    for column in wanted:
        cardinalities[column] = relation.cardinality(column)
    return ColumnStatistics(
        row_count=len(relation), cardinalities=tuple(cardinalities)
    )


def muc_column_frequencies(mucs: Iterable[int], n_columns: int) -> list[int]:
    """How many of the given MUCS contain each column.

    The paper observes this frequency correlates with selectivity
    ("columns with many distinct values occur in many minimal uniques")
    and uses it to drive the greedy index choice of Algorithm 3.
    """
    frequencies = [0] * n_columns
    for mask in mucs:
        for column in iter_bits(mask):
            frequencies[column] += 1
    return frequencies
