"""Profiling primitives shared by SWAN and the baseline systems.

* :mod:`repro.profiling.verify` -- definitional uniqueness checks and
  agree-set computation.
* :mod:`repro.profiling.stats` -- column cardinalities and selectivities
  (drives the paper's index-selection formulas).
* :mod:`repro.profiling.discovery` -- the unified static-discovery entry
  point ``discover(relation, algorithm=...)``.
"""

from repro.profiling.approximate import discover_approximate_uniques
from repro.profiling.diff import diff_profiles
from repro.profiling.discovery import discover
from repro.profiling.persistence import dump_profile, load_profile
from repro.profiling.stats import column_statistics
from repro.profiling.summary import summarize
from repro.profiling.verify import agree_set, is_unique, verify_profile

__all__ = [
    "agree_set",
    "column_statistics",
    "diff_profiles",
    "discover",
    "discover_approximate_uniques",
    "dump_profile",
    "is_unique",
    "load_profile",
    "summarize",
    "verify_profile",
]
