"""Unified static discovery entry point.

``discover(relation, "ducc")`` runs any registered holistic algorithm
and returns ``(mucs, mnucs)`` as bitmask lists in canonical order. The
registry is the single place benchmarks and the CLI resolve algorithm
names.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import AlgorithmError
from repro.profiling.verify import sort_profile
from repro.storage.relation import Relation

Discovery = Callable[[Relation], tuple[list[int], list[int]]]


def _registry() -> dict[str, Discovery]:
    from repro.baselines.bruteforce import discover_bruteforce
    from repro.baselines.ducc import discover_ducc
    from repro.baselines.gordian import discover_gordian
    from repro.baselines.hca import discover_hca

    return {
        "bruteforce": discover_bruteforce,
        "ducc": discover_ducc,
        "gordian": discover_gordian,
        "hca": discover_hca,
    }


def available_algorithms() -> list[str]:
    """Names accepted by :func:`discover`."""
    return sorted(_registry())


def discover(relation: Relation, algorithm: str = "ducc") -> tuple[list[int], list[int]]:
    """Run a holistic discovery; returns (MUCS, MNUCS) masks."""
    registry = _registry()
    try:
        runner = registry[algorithm]
    except KeyError:
        raise AlgorithmError(
            f"unknown algorithm {algorithm!r}; available: {sorted(registry)}"
        ) from None
    mucs, mnucs = runner(relation)
    return sort_profile(mucs), sort_profile(mnucs)
